//! The paper's second domain: image-classification models (the CIFAR
//! CNN, 6,882 parameters) managed with the Provenance approach —
//! demonstrating that recovery by deterministic retraining reproduces
//! not just the bits but the behaviour (accuracy) of the saved models.
//!
//! ```sh
//! cargo run --release -p mmm --example image_classification
//! ```

use mmm::core::approach::{ModelSetSaver, ProvenanceSaver};
use mmm::core::env::ManagementEnv;
use mmm::data::{generate_cifar, Targets};
use mmm::dnn::metrics::accuracy;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn main() {
    let dir = TempDir::new("mmm-cifar").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::server()).expect("open env");

    // A small fleet of CNN classifiers (e.g. one per camera/site).
    let n = 24;
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: n,
        seed: 3,
        arch: Architectures::cifar_cnn(),
    });
    println!(
        "fleet: {n} CIFAR CNNs ({} parameters each)\n",
        fleet.arch().param_count()
    );

    let mut saver = ProvenanceSaver::new();
    let id0 = saver
        .save_initial(&env, &fleet.to_model_set())
        .expect("save U1");

    // One update cycle on synthetic CIFAR batches.
    let mut policy = UpdatePolicy::paper_default(DataSource::Cifar { n_samples: 80 });
    policy.train = mmm::dnn::TrainConfig {
        epochs: 2,
        ..mmm::dnn::TrainConfig::classification_default(0)
    };
    policy.partial_layers = vec![1]; // partial updates retrain conv2
    policy = policy.with_update_rate(0.25);

    let record = fleet
        .run_update_cycle(env.registry(), &policy)
        .expect("update cycle");
    let set = fleet.to_model_set();
    let (id1, m) = env.measure(|| {
        saver
            .save_set(&env, &set, Some(&record.derivation(id0)))
            .expect("save U3-1")
    });
    println!(
        "U3-1: {} CNNs retrained; provenance record = {:.1} KB (full snapshot would be {:.1} MB)",
        record.updates.len(),
        m.bytes_written() as f64 / 1e3,
        (4 * set.total_params()) as f64 / 1e6
    );

    // Recover by retraining and verify both bits and behaviour.
    let (recovered, m) = env.measure(|| saver.recover_set(&env, &id1).expect("recover"));
    println!(
        "recovered by deterministic retraining in {:.2}s; bit-exact = {}",
        m.duration.as_secs_f64(),
        recovered == set
    );
    assert_eq!(recovered, set);

    // Evaluate one retrained model before/after recovery on held-out data.
    let updated_idx = record.updates[0].model_idx;
    let test = generate_cifar(100, 0xE7A1);
    let labels = match &test.targets {
        Targets::Labels(l) => l.clone(),
        _ => unreachable!("cifar is classification"),
    };
    let evaluate = |params: &mmm::dnn::ParamDict| {
        let mut model = set.arch.build(0);
        model.import_param_dict(params);
        accuracy(&model.forward(&test.inputs, false), &labels)
    };
    let acc_saved = evaluate(&set.models()[updated_idx]);
    let acc_recovered = evaluate(&recovered.models()[updated_idx]);
    println!(
        "model {updated_idx}: accuracy saved = {acc_saved:.3}, recovered = {acc_recovered:.3} (identical: {})",
        (acc_saved - acc_recovered).abs() < f32::EPSILON
    );
    println!("\nProvenance stored references instead of 6,882 parameters per model —");
    println!("and retraining reproduced the exact same classifier.");
}
