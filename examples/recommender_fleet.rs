//! The paper's third deployment scenario: per-user recommendation models
//! whose preferences drift with usage. Divergence-driven maintenance
//! finds the users whose taste moved, retrains only those, and the
//! Provenance approach archives each generation at near-zero storage.
//!
//! ```sh
//! cargo run --release -p mmm --example recommender_fleet
//! ```

use mmm::core::approach::{ModelSetSaver, ProvenanceSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::tags;
use mmm::data::recommender::generate_recommender;
use mmm::data::Targets;
use mmm::dnn::metrics::rmse;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn main() {
    let dir = TempDir::new("mmm-recommender").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::server()).expect("open env");

    // One small MLP per user.
    let n_users = 150;
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: n_users,
        seed: 77,
        arch: Architectures::recommender_mlp(),
    });
    println!(
        "fleet: {n_users} per-user recommenders ({} params each)\n",
        fleet.arch().param_count()
    );

    let mut saver = ProvenanceSaver::new();
    let mut ids = vec![saver
        .save_initial(&env, &fleet.to_model_set())
        .expect("save U1")];

    // Preference drift between cycles makes some users' models stale;
    // probe-driven selection retrains exactly those.
    let mut policy = UpdatePolicy::paper_default(DataSource::Recommender { n_samples: 256 })
        .with_divergence_selection(64);
    policy.train.epochs = 20;
    policy.train.optimizer = mmm::dnn::optim::OptimizerKind::adam(0.01);
    policy.train.lr_schedule = mmm::dnn::optim::LrSchedule::Cosine { min_factor: 0.1 };
    policy.partial_layers = vec![1, 2];

    let mut evaluated_user = 0usize;
    for cycle in 1..=3 {
        let record = fleet
            .run_update_cycle(env.registry(), &policy)
            .expect("update cycle");
        evaluated_user = record.updates[0].model_idx;
        let set = fleet.to_model_set();
        let deriv = record.derivation(ids.last().unwrap().clone());
        let (id, m) = env.measure(|| saver.save_set(&env, &set, Some(&deriv)).expect("save"));
        println!(
            "cycle {cycle}: {} drifted users retrained; provenance record {:.1} KB (full set would be {:.2} MB)",
            record.updates.len(),
            m.bytes_written() as f64 / 1e3,
            (4 * set.total_params()) as f64 / 1e6,
        );
        ids.push(id);
    }
    tags::tag_set(&env, ids.last().unwrap(), "production").expect("tag");

    // Quality check: a retrained user's model predicts current-cycle
    // ratings far better than its stale pre-update version would.
    let (recovered, m) = env.measure(|| {
        saver
            .recover_set(&env, ids.last().unwrap())
            .expect("recover")
    });
    println!(
        "\nrecovered the 'production' generation by replaying training in {:.2}s",
        m.duration.as_secs_f64()
    );
    assert_eq!(recovered, fleet.to_model_set());

    // Evaluate a freshly retrained user's model on its *current*
    // preferences, against its stale pre-update generation.
    let test = generate_recommender(evaluated_user as u64, fleet.update_cycle(), 200, 77);
    let target = match &test.targets {
        Targets::Regression(t) => t,
        _ => unreachable!("recommender data is regression"),
    };
    let eval = |params: &mmm::dnn::ParamDict| {
        let mut model = recovered.arch.build(0);
        model.import_param_dict(params);
        rmse(&model.forward(&test.inputs, false), target)
    };
    let fresh = eval(&recovered.models()[evaluated_user]);
    let stale_set = saver.recover_set(&env, &ids[0]).expect("recover U1");
    let stale = eval(&stale_set.models()[evaluated_user]);
    println!(
        "user {evaluated_user}: rating RMSE {:.3} after retraining vs {:.3} with the stale U1 model",
        fresh, stale
    );
    assert!(fresh < stale);
    println!("\nPer-user models, drift detection, near-zero archive cost — the paper's");
    println!("recommendation scenario end-to-end.");
}
