//! Quickstart: save and recover a fleet of models with all four
//! approaches, and compare what each one costs.
//!
//! ```sh
//! cargo run --release -p mmm --example quickstart
//! ```

use mmm::core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn main() {
    // A management environment: document store + file store + dataset
    // registry under one directory, with the paper's "M1" latency model.
    let dir = TempDir::new("mmm-quickstart").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::m1()).expect("open env");

    // A fleet of 200 battery-cell models sharing the FFNN-48 architecture
    // (the paper's default model: 4,993 parameters).
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: 200,
        seed: 42,
        arch: Architectures::ffnn48(),
    });
    println!(
        "fleet: {} models × {} parameters ({:.1} MB of raw parameters)\n",
        fleet.len(),
        fleet.arch().param_count(),
        (4 * fleet.len() * fleet.arch().param_count()) as f64 / 1e6
    );

    // ---- U1: save the initial set with every approach. ----
    let initial = fleet.to_model_set();
    let mut savers: Vec<Box<dyn ModelSetSaver>> = vec![
        Box::new(MmlibBaseSaver::new()),
        Box::new(BaselineSaver::new()),
        Box::new(UpdateSaver::new()),
        Box::new(ProvenanceSaver::new()),
    ];

    println!("== U1: initial save ==");
    println!("{:<12}{:>12}{:>12}{:>12}", "approach", "MB", "TTS (s)", "store ops");
    let mut ids = Vec::new();
    for saver in &mut savers {
        let (id, m) = env.measure(|| saver.save_initial(&env, &initial).expect("save"));
        println!(
            "{:<12}{:>12.3}{:>12.3}{:>12}",
            saver.name(),
            m.bytes_written() as f64 / 1e6,
            m.duration.as_secs_f64(),
            m.stats.total_ops()
        );
        ids.push(id);
    }

    // ---- One update cycle: 10 % of models diverge and are retrained. ----
    let policy = UpdatePolicy::paper_default(DataSource::battery_small());
    let record = fleet
        .run_update_cycle(env.registry(), &policy)
        .expect("update cycle");
    let derived = fleet.to_model_set();
    println!(
        "\nupdate cycle 1: {} of {} models retrained on fresh ECM data",
        record.updates.len(),
        fleet.len()
    );

    println!("\n== U3-1: derived save ==");
    println!("{:<12}{:>12}{:>12}{:>12}", "approach", "MB", "TTS (s)", "store ops");
    let mut derived_ids = Vec::new();
    for (saver, base) in savers.iter_mut().zip(&ids) {
        let deriv = record.derivation(base.clone());
        let (id, m) = env.measure(|| saver.save_set(&env, &derived, Some(&deriv)).expect("save"));
        println!(
            "{:<12}{:>12.3}{:>12.3}{:>12}",
            saver.name(),
            m.bytes_written() as f64 / 1e6,
            m.duration.as_secs_f64(),
            m.stats.total_ops()
        );
        derived_ids.push(id);
    }

    // ---- Recover the derived set with every approach and verify. ----
    println!("\n== recover U3-1 ==");
    println!("{:<12}{:>12}{:>10}", "approach", "TTR (s)", "exact");
    for (saver, id) in savers.iter().zip(&derived_ids) {
        let (recovered, m) = env.measure(|| saver.recover_set(&env, id).expect("recover"));
        println!(
            "{:<12}{:>12.3}{:>10}",
            saver.name(),
            m.duration.as_secs_f64(),
            recovered == derived
        );
        assert_eq!(recovered, derived, "{} must recover bit-exactly", saver.name());
    }

    println!("\nAll four approaches recovered the set bit-exactly.");
    println!("Note the trade-off: Provenance wrote ~1000× less but took longest to recover.");
}
