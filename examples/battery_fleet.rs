//! The paper's running example end-to-end: an electric-car battery with
//! one DL model per cell, aging over update cycles, managed with the
//! Update approach, and recovered "after an accident" for analysis.
//!
//! ```sh
//! cargo run --release -p mmm --example battery_fleet
//! ```

use mmm::battery::{CellParams, EcmCell};
use mmm::core::approach::{ModelSetSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::lineage;
use mmm::dnn::metrics::rmse;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::tensor::Tensor;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn main() {
    let dir = TempDir::new("mmm-battery-fleet").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::server()).expect("open env");

    // A (scaled-down) battery: 300 cells, each with its own FFNN-48.
    let n_cells = 300;
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: n_cells,
        seed: 7,
        arch: Architectures::ffnn48(),
    });
    println!("battery pack: {n_cells} cells, one FFNN-48 voltage model per cell\n");

    // Manage the fleet with the Update approach, snapshotting fully every
    // 4 saves to bound recovery depth (the paper's suggested mitigation).
    let mut saver = UpdateSaver::with_full_snapshot_every(4);
    let mut ids = vec![saver
        .save_initial(&env, &fleet.to_model_set())
        .expect("save U1")];
    println!("U1 saved as {}", ids[0]);

    // Drive 5 update cycles: cells age, 10 % of models get retrained on
    // fresh ECM data each cycle.
    let mut policy = UpdatePolicy::paper_default(DataSource::battery_small());
    policy.train.epochs = 6; // train updated cells to a usable accuracy
    let mut analyzed_cell = 0usize;
    for cycle in 1..=5 {
        let record = fleet
            .run_update_cycle(env.registry(), &policy)
            .expect("update cycle");
        if cycle == 3 {
            // Remember a cell whose model was fully retrained at U3-3 —
            // that's the model worth analyzing after the "accident".
            analyzed_cell = record
                .updates
                .iter()
                .find(|u| matches!(u.kind, mmm::core::UpdateKind::Full))
                .map(|u| u.model_idx)
                .unwrap_or(0);
        }
        let set = fleet.to_model_set();
        let deriv = record.derivation(ids.last().unwrap().clone());
        let (id, m) = env.measure(|| saver.save_set(&env, &set, Some(&deriv)).expect("save U3"));
        println!(
            "U3-{cycle}: {} models updated, saved {:.3} MB in {:.3}s -> {}",
            record.updates.len(),
            m.bytes_written() as f64 / 1e6,
            m.duration.as_secs_f64(),
            id
        );
        ids.push(id);
    }

    // Inspect the lineage of the last save.
    println!("\nlineage of {}:", ids.last().unwrap());
    for node in lineage::lineage(&env, ids.last().unwrap()).expect("lineage") {
        println!(
            "  {} kind={} models={} changes={}",
            node.id, node.kind, node.n_models, node.n_changes
        );
    }

    // "After an accident": recover the archived fleet state of U3-3 and
    // analyze one cell model against a fresh ECM simulation.
    let (recovered, m) = env.measure(|| saver.recover_set(&env, &ids[3]).expect("recover"));
    println!(
        "\nrecovered U3-3 ({} models) in {:.3}s",
        recovered.len(),
        m.duration.as_secs_f64()
    );

    // Rebuild the retrained cell's model and compare its predictions
    // against the ECM.
    let mut model = recovered.arch.build(0);
    model.import_param_dict(&recovered.models()[analyzed_cell]);

    let mut cell = EcmCell::new(CellParams::default());
    cell.age(0.06); // roughly the aging state at U3-3
    let mut features = Vec::new();
    let mut voltages = Vec::new();
    for t in 0..200 {
        let current = 2.0 + (t as f32 * 0.15).sin();
        let v = cell.step(current, 1.0);
        let s = cell.state();
        // Same normalization the training pipeline uses.
        features.extend_from_slice(&[
            (current - 2.0) / 4.0,
            (s.temperature_c - 25.0) / 10.0,
            (s.discharged_ah - 1.5) / 1.5,
            (s.soc - 0.5) / 0.5,
        ]);
        voltages.push((v - 3.7) / 0.6);
    }
    let x = Tensor::from_vec([200, 4], features);
    let y = Tensor::from_vec([200, 1], voltages);
    let pred = model.forward(&x, false);
    let err = rmse(&pred, &y);
    println!(
        "cell {analyzed_cell} model vs fresh ECM trace: normalized RMSE = {err:.3} (~{:.0} mV)",
        err * 600.0
    );
    println!("\nDone: archived every fleet state, recovered one for post-accident analysis.");
}
