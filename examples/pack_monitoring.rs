//! Spatially resolved pack monitoring: the full story the paper's
//! introduction tells. A battery pack is a series string of
//! *inhomogeneous* cells (manufacturing spread, hotter center, uneven
//! aging); one DL model per cell gives spatial resolution; models whose
//! cells drifted are detected by probing and retrained; every fleet
//! version is archived with the Update approach.
//!
//! ```sh
//! cargo run --release -p mmm --example pack_monitoring
//! ```

use mmm::battery::{Pack, PackConfig};
use mmm::core::approach::{ModelSetSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::verify;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn main() {
    // ---- The physical pack: 96 series cells with inhomogeneities. ----
    let pack_cfg = PackConfig { n_cells: 96, ..PackConfig::default() };
    let mut pack = Pack::new(&pack_cfg, 2024);
    println!("pack: {} series cells", pack.len());

    // Drive it hard for 20 minutes and look at the spatial temperature
    // profile — the reason per-cell models exist at all.
    for _ in 0..1200 {
        pack.step(7.0, 1.0);
    }
    let states = pack.states();
    let (edge, center) = (states[0].temperature_c, states[pack.len() / 2].temperature_c);
    println!(
        "after a 20-min high-load drive: edge cell {:.1} °C, center cell {:.1} °C",
        edge, center
    );

    // Uneven aging opens a SoH spread across the pack.
    for _ in 0..8 {
        pack.age_cycle(0.01);
    }
    let (lo, hi) = pack.soh_range();
    println!("after 8 aging cycles: SoH spread {:.3} – {:.3}\n", lo, hi);

    // ---- One model per cell, managed with the Update approach. ----
    let dir = TempDir::new("mmm-pack").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::server()).expect("open env");
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: pack.len(),
        seed: 11,
        arch: Architectures::ffnn48(),
    });
    let mut saver = UpdateSaver::with_full_snapshot_every(4);
    let mut id = saver
        .save_initial(&env, &fleet.to_model_set())
        .expect("save U1");
    println!("U1 archived as {id}");

    // Divergence-driven maintenance: probe every cell model on fresh
    // data, retrain only the worst 10 % (the paper's motivating setting:
    // "only a subset of models has diverged significantly").
    let policy = UpdatePolicy::paper_default(DataSource::battery_small())
        .with_divergence_selection(48);
    for cycle in 1..=3 {
        let record = fleet
            .run_update_cycle(env.registry(), &policy)
            .expect("update cycle");
        let worst: Vec<usize> = record.updates.iter().map(|u| u.model_idx).collect();
        let deriv = record.derivation(id.clone());
        let (new_id, m) = env.measure(|| {
            saver
                .save_set(&env, &fleet.to_model_set(), Some(&deriv))
                .expect("save U3")
        });
        id = new_id;
        println!(
            "cycle {cycle}: probed {} cells, retrained the {} most diverged {:?}…; archived {:.2} MB as {id}",
            fleet.len(),
            worst.len(),
            &worst[..3.min(worst.len())],
            m.bytes_written() as f64 / 1e6,
        );
    }

    // ---- Audit and recover. ----
    let report = verify::verify_set(&env, &id).expect("verify");
    println!(
        "\nintegrity audit: {} docs, {} blobs, hashes checked = {}, healthy = {}",
        report.docs_checked,
        report.blobs_checked,
        report.hashes_checked,
        report.is_healthy()
    );
    assert!(report.is_healthy());
    let (recovered, m) = env.measure(|| saver.recover_set(&env, &id).expect("recover"));
    println!(
        "recovered all {} cell models in {:.3}s — spatial fleet state preserved exactly: {}",
        recovered.len(),
        m.duration.as_secs_f64(),
        recovered == fleet.to_model_set()
    );
}
