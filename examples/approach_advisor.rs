//! The paper's future-work heuristic in action (§4.5): given a scenario
//! and priorities, pick the management approach automatically — then
//! sanity-check the advice against actual measurements.
//!
//! ```sh
//! cargo run --release -p mmm --example approach_advisor
//! ```

use mmm::core::advisor::{estimate, recommend, Approach, Priorities, Scenario};
use mmm::core::approach::{BaselineSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn show(title: &str, s: &Scenario, p: &Priorities) {
    let rec = recommend(s, p);
    println!("{title}");
    for (a, score) in &rec.ranking {
        let c = estimate(*a, s);
        println!(
            "  {:<12} score {:>7.2} | est. {:>9.2} MB/save, TTS {:>7.3}s, TTR {:>9.1}s",
            a.name(),
            score,
            c.storage_bytes / 1e6,
            c.tts_seconds,
            c.ttr_seconds
        );
    }
    println!("  -> use the {} approach\n", rec.best().name());
}

fn main() {
    let base = Scenario::default();

    show(
        "== archival battery fleet (storage first, recoveries rare) ==",
        &base,
        &Priorities::storage_first(),
    );
    show(
        "== analytics team recovering sets daily (TTR first) ==",
        &Scenario { saves_per_recovery: 2.0, ..base },
        &Priorities::recovery_first(),
    );
    show(
        "== storage matters but retraining is too slow to tolerate ==",
        &Scenario { retrain_seconds_per_model: 3600.0, ..base },
        &Priorities { storage: 1.0, tts: 0.2, ttr: 0.4 },
    );

    // Validate the first recommendation empirically on a scaled-down run.
    println!("== empirical check (200 models, one update cycle) ==");
    let dir = TempDir::new("mmm-advisor").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), LatencyProfile::server()).expect("open env");
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: 200,
        seed: 1,
        arch: Architectures::ffnn48(),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small());

    let mut baseline = BaselineSaver::new();
    let mut update = UpdateSaver::new();
    let mut prov = ProvenanceSaver::new();
    let initial = fleet.to_model_set();
    let b0 = baseline.save_initial(&env, &initial).expect("b0");
    let u0 = update.save_initial(&env, &initial).expect("u0");
    let p0 = prov.save_initial(&env, &initial).expect("p0");
    let _ = b0;

    let record = fleet.run_update_cycle(env.registry(), &policy).expect("cycle");
    let set = fleet.to_model_set();
    let mut measured: Vec<(Approach, f64)> = Vec::new();
    let (_, mb) = env.measure(|| baseline.save_initial(&env, &set).expect("b1"));
    measured.push((Approach::Baseline, mb.bytes_written() as f64));
    let (_, mu) =
        env.measure(|| update.save_set(&env, &set, Some(&record.derivation(u0))).expect("u1"));
    measured.push((Approach::Update, mu.bytes_written() as f64));
    let (_, mp) =
        env.measure(|| prov.save_set(&env, &set, Some(&record.derivation(p0))).expect("p1"));
    measured.push((Approach::Provenance, mp.bytes_written() as f64));

    for (a, bytes) in &measured {
        println!("  {:<12} measured {:>10.3} MB per derived save", a.name(), bytes / 1e6);
    }
    let best = measured
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    println!(
        "\n  measured storage winner: {} — matches the advisor's storage-first pick: {}",
        best.name(),
        best == Approach::Provenance
    );
}
