//! Hermetic stand-in for the `serde_derive` crate (see
//! `vendor/README.md`).
//!
//! Derives the vendored serde's JSON-direct `Serialize`/`Deserialize`
//! traits with the same wire shape as real serde's defaults: structs
//! become objects keyed by field name, enums are externally tagged
//! (unit variant → `"Name"`, struct variant → `{"Name": {fields}}`).
//! Supported attributes: `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`; `Option<T>` fields are
//! implicitly optional on deserialize, like real serde. Generics,
//! tuple/newtype variants, and other serde attributes are rejected at
//! compile time — the workspace does not use them.
//!
//! Implemented directly over `proc_macro::TokenTree` (no `syn`/`quote`)
//! so the stand-in has zero dependencies.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl should parse")
}

/// Derive the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl should parse")
}

struct Field {
    name: String,
    /// Type's leading token is `Option` — treated as implicitly
    /// optional, like real serde.
    is_option: bool,
    /// `#[serde(default)]`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]` — the path.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

// ---- token-level parsing ----

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume `#[...]` attribute groups; returns the normalized
/// (whitespace-free) text of each attribute's inner stream.
fn take_attrs(iter: &mut Iter) -> Vec<String> {
    let mut attrs = Vec::new();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        attrs.push(
                            g.stream()
                                .to_string()
                                .chars()
                                .filter(|c| !c.is_whitespace())
                                .collect(),
                        );
                    }
                    t => panic!("expected attribute brackets after '#', got {t:?}"),
                }
            }
            _ => break,
        }
    }
    attrs
}

/// Consume `pub` / `pub(crate)`-style visibility if present.
fn skip_visibility(iter: &mut Iter) {
    let is_pub = matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
    if is_pub {
        iter.next();
        let restricted = matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        if restricted {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    take_attrs(&mut iter);
    skip_visibility(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("expected `struct` or `enum`, got {t:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("expected type name, got {t:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving {name})");
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        t => panic!("expected braced body for {name} (tuple structs unsupported), got {t:?}"),
    };
    match kw.as_str() {
        "struct" => Item::Struct { name, fields: parse_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let mut default = false;
        let mut skip_if = None;
        for attr in take_attrs(&mut iter) {
            if attr == "serde(default)" {
                default = true;
            } else if let Some(rest) = attr.strip_prefix("serde(skip_serializing_if=\"") {
                skip_if = Some(
                    rest.strip_suffix("\")")
                        .unwrap_or_else(|| panic!("malformed skip_serializing_if: {attr}"))
                        .to_string(),
                );
            } else if attr.starts_with("serde(") {
                panic!("unsupported serde attribute in vendored serde_derive: #[{attr}]");
            }
            // Non-serde attributes (e.g. doc comments, #[default]) are
            // ignored, matching real serde.
        }
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => panic!("expected field name, got {t:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("expected ':' after field `{name}`, got {t:?}"),
        }
        // Collect the type's tokens up to a comma at angle-bracket
        // depth 0, so commas inside e.g. `HashMap<K, V>` don't split
        // the field list.
        let mut depth = 0i32;
        let mut ty = Vec::new();
        loop {
            let done = match iter.peek() {
                None => true,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    true
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    false
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    false
                }
                Some(_) => false,
            };
            if done {
                break;
            }
            ty.push(iter.next().expect("peeked"));
        }
        let is_option =
            matches!(ty.first(), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
        fields.push(Field { name, is_option, default, skip_if });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        take_attrs(&mut iter); // e.g. #[default]
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => panic!("expected variant name, got {t:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                iter.next();
                Some(parse_fields(stream))
            }
            Some(TokenTree::Group(_)) => {
                panic!("vendored serde_derive supports only unit and struct variants ({name})")
            }
            _ => None,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation (built as source text, then re-parsed) ----

/// `m.insert("f", to_json(<expr>))`, honoring skip_serializing_if.
fn ser_field_stmt(f: &Field, expr: &str) -> String {
    let insert = format!(
        "m.insert({n:?}.to_string(), serde::Serialize::to_json({expr}));",
        n = f.name
    );
    match &f.skip_if {
        Some(path) => format!("if !{path}({expr}) {{ {insert} }}\n"),
        None => format!("{insert}\n"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = item_name(item);
    let body = match item {
        Item::Struct { fields, .. } => {
            let mut b = String::from("let mut m = serde::Map::new();\n");
            for f in fields {
                b.push_str(&ser_field_stmt(f, &format!("&self.{}", f.name)));
            }
            b.push_str("serde::Value::Object(m)");
            b
        }
        Item::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut m = serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&ser_field_stmt(f, &f.name));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut outer = serde::Map::new();\n\
                             outer.insert({v:?}.to_string(), serde::Value::Object(m));\n\
                             serde::Value::Object(outer)\n}}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json(&self) -> serde::Value {{\n{body}\n}}\n}}"
    )
}

/// The `None =>` arm for a missing field during deserialization.
fn de_missing_arm(f: &Field, owner: &str) -> String {
    if f.default {
        "std::default::Default::default()".to_string()
    } else if f.is_option {
        "None".to_string()
    } else {
        format!(
            "return Err(serde::Error::msg(\"missing field `{}` in {owner}\"))",
            f.name
        )
    }
}

/// `field: match <src>.get("field") {{ ... }},`
fn de_field_init(f: &Field, src: &str, owner: &str) -> String {
    format!(
        "{n}: match {src}.get({n:?}) {{\n\
         Some(x) => serde::Deserialize::from_json(x)?,\n\
         None => {missing},\n}},\n",
        n = f.name,
        missing = de_missing_arm(f, owner),
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = item_name(item);
    let body = match item {
        Item::Struct { fields, .. } => {
            let mut b = format!(
                "let obj = v.as_object().ok_or_else(|| \
                 serde::Error::msg(format!(\"expected object for {name}, got {{v}}\")))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&de_field_init(f, "obj", name));
            }
            b.push_str("})");
            b
        }
        Item::Enum { variants, .. } => {
            let units: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let structs: Vec<&Variant> =
                variants.iter().filter(|v| v.fields.is_some()).collect();
            let mut b = String::new();
            if !units.is_empty() {
                let mut arms = String::new();
                for v in &units {
                    arms.push_str(&format!("{v:?} => return Ok({name}::{v}),\n", v = v.name));
                }
                b.push_str(&format!(
                    "if let Some(s) = v.as_str() {{\nmatch s {{\n{arms}\
                     other => return Err(serde::Error::msg(format!(\
                     \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n"
                ));
            }
            if !structs.is_empty() {
                let mut arms = String::new();
                for v in &structs {
                    let vname = &v.name;
                    let mut inits = String::new();
                    for f in v.fields.as_ref().expect("struct variant") {
                        inits.push_str(&de_field_init(f, "fields", &format!("{name}::{vname}")));
                    }
                    arms.push_str(&format!(
                        "{vname:?} => {{\n\
                         let fields = inner.as_object().ok_or_else(|| \
                         serde::Error::msg(\"expected object for variant {vname}\"))?;\n\
                         return Ok({name}::{vname} {{\n{inits}}});\n}}\n"
                    ));
                }
                b.push_str(&format!(
                    "if let Some(obj) = v.as_object() {{\nif obj.len() == 1 {{\n\
                     let (k, inner) = obj.iter().next().expect(\"len checked\");\n\
                     match k.as_str() {{\n{arms}\
                     other => return Err(serde::Error::msg(format!(\
                     \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n}}\n"
                ));
            }
            b.push_str(&format!(
                "Err(serde::Error::msg(format!(\"invalid value for enum {name}: {{v}}\")))"
            ));
            b
        }
    };
    // `Result` is fully qualified: many workspace files have a local
    // `Result<T>` alias in scope that takes one type parameter.
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_json(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}
