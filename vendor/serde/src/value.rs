//! JSON value model, text parser, and compact printer.

use std::collections::BTreeMap;
use std::fmt;

use crate::Error;

/// Map type used for JSON objects. A `BTreeMap` keeps key order
/// deterministic, which the workspace's golden tests rely on.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number (integer or float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repr {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Number from an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number { repr: Repr::PosInt(n) }
    }

    /// Number from a signed integer (negative values only get `NegInt`).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number { repr: Repr::PosInt(n as u64) }
        } else {
            Number { repr: Repr::NegInt(n) }
        }
    }

    /// Number from a float.
    pub fn from_f64(n: f64) -> Self {
        Number { repr: Repr::Float(n) }
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::PosInt(n) => Some(n),
            Repr::NegInt(_) => None,
            Repr::Float(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Repr::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::PosInt(n) => i64::try_from(n).ok(),
            Repr::NegInt(n) => Some(n),
            Repr::Float(f)
                if f >= i64::MIN as f64 && f <= i64::MAX as f64 && f.fract() == 0.0 =>
            {
                Some(f as i64)
            }
            Repr::Float(_) => None,
        }
    }

    /// As `f64` (always possible; integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self.repr {
            Repr::PosInt(n) => Some(n as f64),
            Repr::NegInt(n) => Some(n as f64),
            Repr::Float(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::PosInt(n) => write!(f, "{n}"),
            Repr::NegInt(n) => write!(f, "{n}"),
            Repr::Float(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity; match serde_json's
                    // to_string behavior of emitting null.
                    write!(f, "null")
                } else {
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// As `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As a slice of values if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object map if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable object map.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match (self.as_i64(), self.as_u64()) {
                    (Some(i), _) => i as i128 == *other as i128,
                    (_, Some(u)) => u as i128 == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

// ---- compact printer ----

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

// ---- text parser (recursive descent) ----

/// Parse a JSON document into a [`Value`] (entry point for
/// `serde_json::from_str`).
pub fn parse_str(text: &str) -> Result<Value, Error> {
    Parser::new(text).parse_document()
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    pub(crate) fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::msg(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone surrogate"));
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(Number::from_f64(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        Parser::new(s).parse_document().unwrap()
    }

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"hi\n","d":null},"e":true}"#;
        let v = parse(text);
        assert_eq!(v.to_string(), text);
        assert_eq!(parse(&v.to_string()), v);
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(parse("42").as_u64(), Some(42));
        assert_eq!(parse("-42").as_i64(), Some(-42));
        assert_eq!(parse("-42").as_u64(), None);
        assert_eq!(parse("1.5").as_f64(), Some(1.5));
        assert_eq!(parse("1e3").as_f64(), Some(1000.0));
    }

    #[test]
    fn float_display_keeps_a_decimal_point() {
        assert_eq!(Value::Number(Number::from_f64(2.0)).to_string(), "2.0");
        assert_eq!(Value::Number(Number::from_f64(0.5)).to_string(), "0.5");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é😀""#).as_str().unwrap(), "é😀");
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = parse(r#"{"v":2,"name":"x","list":[10,20]}"#);
        assert!(v["v"] == 2);
        assert!(v["name"] == "x");
        assert!(v["list"][1] == 20);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("{").parse_document().is_err());
        assert!(Parser::new("[1,]").parse_document().is_err());
        assert!(Parser::new("1 2").parse_document().is_err());
        assert!(Parser::new("nul").parse_document().is_err());
    }
}
