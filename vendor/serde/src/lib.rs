//! Hermetic stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde abstracts over data formats; this workspace serializes to
//! exactly one format (JSON, via the sibling `serde_json` stand-in), so
//! the traits here are JSON-direct: [`Serialize`] produces a
//! [`Value`], [`Deserialize`] consumes one. The derive macros are
//! re-exported from `serde_derive`, mirroring real serde's `derive`
//! feature, and generate externally-tagged enum representations and
//! field-name object maps exactly like real serde's defaults.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization failure (also re-exported as
/// `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be represented as a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` into its JSON representation.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON value.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for primitives and std containers ----

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::from_u64(v as u64))
                } else {
                    Value::Number(Number::from_i64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg(format!("expected bool, got {v}")))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg(format!("expected number, got {v}")))
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json(&7u64.to_json()).unwrap(), 7);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(bool::from_json(&true.to_json()).unwrap(), true);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_json(&vec![1u8, 2].to_json()).unwrap(), vec![1, 2]);
        let f = 0.001f32;
        assert_eq!(f32::from_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_json(&300u64.to_json()).is_err());
        assert!(u64::from_json(&(-1i64).to_json()).is_err());
    }
}
