//! Hermetic stand-in for the `serde_json` crate (see
//! `vendor/README.md`).
//!
//! Thin facade over the vendored `serde`, which is JSON-direct: this
//! crate adds the text entry points (`to_string`, `from_str`), the
//! `Value` conversions (`to_value`, `from_value`), and the [`json!`]
//! macro. Output is compact JSON with object keys in sorted order
//! (objects are `BTreeMap`s), which keeps golden files deterministic.

pub use serde::{value::parse_str, Error, Map, Number, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Parse a JSON document and deserialize it into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_str(s)?;
    T::from_json(&v)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Deserialize `T` out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_json(&v)
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
pub fn value_of<T: ?Sized + serde::Serialize>(v: &T) -> Value {
    v.to_json()
}

/// Build a [`Value`] from JSON-like syntax: `json!(null)`,
/// `json!([1, 2])`, `json!({"k": expr, ...})`, or any serializable
/// expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => {
        $crate::value_of(&$other)
    };
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: u32,
        #[serde(skip_serializing_if = "Option::is_none")]
        label: Option<String>,
        #[serde(default)]
        weight: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shade {
        Light,
        Dark,
        Custom { level: u8 },
    }

    #[test]
    fn struct_round_trip_with_optional_and_default_fields() {
        let p = Point { x: 1, y: 2, label: None, weight: 0.0 };
        let s = crate::to_string(&p).unwrap();
        assert_eq!(s, r#"{"weight":0.0,"x":1,"y":2}"#);
        assert_eq!(crate::from_str::<Point>(&s).unwrap(), p);
        // `weight` is #[serde(default)], `label` is Option: both may be
        // absent from the document.
        assert_eq!(
            crate::from_str::<Point>(r#"{"x":3,"y":4}"#).unwrap(),
            Point { x: 3, y: 4, label: None, weight: 0.0 }
        );
        assert!(crate::from_str::<Point>(r#"{"x":3}"#).is_err());
    }

    #[test]
    fn enums_are_externally_tagged() {
        assert_eq!(crate::to_string(&Shade::Light).unwrap(), r#""Light""#);
        assert_eq!(
            crate::to_string(&Shade::Custom { level: 7 }).unwrap(),
            r#"{"Custom":{"level":7}}"#
        );
        assert_eq!(crate::from_str::<Shade>(r#""Dark""#).unwrap(), Shade::Dark);
        assert_eq!(
            crate::from_str::<Shade>(r#"{"Custom":{"level":9}}"#).unwrap(),
            Shade::Custom { level: 9 }
        );
        assert!(crate::from_str::<Shade>(r#""Neon""#).is_err());
    }

    #[test]
    fn json_macro_forms() {
        assert!(json!(null).is_null());
        assert_eq!(json!(42), 42);
        assert_eq!(json!("baseline"), "baseline");
        assert_eq!(crate::to_string(&json!([1, 2])).unwrap(), "[1,2]");
        let cond = true;
        let v = json!({"a": 1, "b": if cond { 2 } else { 3 }, "s": "x"});
        assert_eq!(crate::to_string(&v).unwrap(), r#"{"a":1,"b":2,"s":"x"}"#);
    }

    #[test]
    fn value_round_trips_through_text() {
        let inner = json!({"k": "v", "n": 2.5});
        let v = json!({"nested": inner, "list": [1, 2]});
        let text = crate::to_string(&v).unwrap();
        assert_eq!(text, r#"{"list":[1,2],"nested":{"k":"v","n":2.5}}"#);
        assert_eq!(crate::from_str::<crate::Value>(&text).unwrap(), v);
    }
}
