//! Hermetic stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: a non-poisoning [`Mutex`]
//! with `parking_lot`'s API shape (`lock()` returns the guard directly).
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather
//! than propagated, matching `parking_lot` semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison from a
    /// panicked holder is ignored (the data is returned as-is).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
