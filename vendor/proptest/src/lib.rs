//! Hermetic stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, [`Just`], [`any`], range strategies,
//! tuple strategies, `collection::vec`, the `".*"` string strategy, and
//! weighted [`prop_oneof!`]. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so runs are reproducible.
//! Failing inputs are not shrunk — the assertion message reports the
//! values via `prop_assert*`'s formatting instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic 64-bit RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (e.g. the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed so distinct tests diverge fast.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_from_bits {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_from_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Raw bit patterns: exercises NaN/inf/subnormals, which the
        // codec round-trip tests compare bit-for-bit.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy over all values of `T` (see [`Arbitrary`]).
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — the canonical whole-type strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64();
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Regex-style string strategy. Only the all-accepting `".*"` pattern
/// is supported (the only one this workspace uses): arbitrary short
/// strings over a pool that includes multi-byte characters.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        assert_eq!(
            *self, ".*",
            "vendored proptest supports only the \".*\" string pattern"
        );
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '"', '\\', '/', '{', '}',
            ',', ':', '.', '-', '_', 'é', 'ß', '中', '😀', '\u{0}', '\u{7f}',
        ];
        let len = rng.below(17) as usize;
        (0..len).map(|_| POOL[rng.below(POOL.len() as u64) as usize]).collect()
    }
}

/// Object-safe sampling, used by [`prop_oneof!`] to mix strategies of
/// different concrete types.
pub trait DynStrategy<T> {
    /// Draw one value (dyn-dispatch form of [`Strategy::sample`]).
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Weighted union of strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Union from `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample_dyn(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights summed during construction")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-run configuration (only `cases` is consulted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Assert within a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` (unweighted arms default
/// to weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32,
                std::boxed::Box::new($strat) as std::boxed::Box<dyn $crate::DynStrategy<_>>) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)) => {};
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in -1.5f32..2.5, i in -5i64..5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!((-5..5).contains(&i));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            items in crate::collection::vec((0usize..4, -1.0f32..1.0), 1..8),
            s in ".*",
        ) {
            prop_assert!(!items.is_empty() && items.len() < 8);
            for (idx, x) in &items {
                prop_assert!(*idx < 4);
                prop_assert!((-1.0..1.0).contains(x));
            }
            prop_assert!(s.chars().count() <= 16);
        }

        #[test]
        fn oneof_respects_zero_weight(v in prop_oneof![1 => Just(1u8), 0 => Just(2u8)]) {
            prop_assert_eq!(v, 1);
        }
    }
}
