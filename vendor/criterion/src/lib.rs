//! Hermetic stand-in for the `criterion` crate (see
//! `vendor/README.md`).
//!
//! Implements the subset this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! sample sizes, and throughput annotation — with plain wall-clock
//! timing and a one-line report per benchmark. No statistics, plots,
//! or baselines: the point is that `cargo bench` (and `cargo clippy
//! --all-targets`) build and run, and produce indicative numbers.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    /// No-op hook kept for API compatibility with `criterion_group!`
    /// expansions that call it.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { _parent: self, name: name.into(), samples, throughput: None }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let samples = self.samples;
        run_one("", &id.to_string(), samples, None, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate benchmarks with work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.samples, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (report output is per-benchmark; nothing to
    /// flush).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    // One untimed warm-up pass, then the timed samples.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let label =
        if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.iters == 0 {
        println!("bench {label}: no iterations recorded");
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / mean),
        })
        .unwrap_or_default();
    println!(
        "bench {label}: mean {:.3} ms over {} iters{rate}",
        mean * 1e3,
        b.iters
    );
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Time `routine` on a fresh `setup()` value per sample; setup time
    /// is excluded.
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Hint for how much memory batched inputs consume (ignored; each
/// sample sets up exactly one input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Each input used exactly once.
    PerIteration,
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Just the parameter (for groups whose name carries the context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Bundle benchmark functions into a runner callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |a, x| a ^ x.wrapping_mul(0x9e37_79b9))
    }

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(100));
        group.bench_function("iter", |b| b.iter(|| work(100)));
        group.bench_with_input(BenchmarkId::new("batched", 7), &7u64, |b, &n| {
            b.iter_batched(|| n * 10, work, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("depth", 3).to_string(), "depth/3");
        assert_eq!(BenchmarkId::from_parameter("delta").to_string(), "delta");
    }
}
