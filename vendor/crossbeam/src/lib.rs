//! Hermetic stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: `thread::scope` with
//! crossbeam's API shape — spawn closures receive the scope (enabling
//! nested spawns) and `scope` returns a `Result`. Backed by
//! `std::thread::scope`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope, so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Handle to a thread spawned via [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which spawned threads may borrow from the
    /// caller's stack; all threads are joined before `scope` returns.
    /// `Err` carries the panic payload if `f` itself panics after its
    /// spawned threads were joined cleanly (crossbeam reports unjoined
    /// worker panics the same way).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_is_reported_on_join() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker died") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let v = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u8).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
