//! Crash-recovery acceptance tests: deterministic fault injection
//! against every saver's two-phase save protocol.
//!
//! The scenario mirrors an archival deployment: a committed set A, one
//! trained update cycle, and a save of set B that dies at an injected
//! fault point. For *every* write operation the save issues we crash
//! (or tear) exactly there, reopen the directory like a fresh process,
//! and require the full recovery story: fsck classifies the damage as
//! GC-able phase-one debris, the last committed set recovers
//! bit-identically, the catalog never shows the unfinished save, and
//! repair leaves a clean store. All fault positions and bit flips are
//! seeded, so any failure replays exactly.

use mmm::core::approach::{ApproachSpec, ModelSetSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{Derivation, ModelSet, ModelSetId};
use mmm::core::{catalog, fsck};
use mmm::dnn::Architectures;
use mmm::store::{FaultInjector, FaultPlan, FaultTarget, LatencyProfile, OpClass};
use mmm::util::{Error, TempDir};
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const APPROACHES: [&str; 4] = ["mmlib-base", "baseline", "update", "provenance"];
const N: usize = 4;
const SEED: u64 = 7;
/// More write ops than any approach's save issues (mmlib-base, the
/// worst case, writes 4·N + 1) — a run that never completes is a bug.
const MAX_FAULT_POINTS: u64 = 64;

fn policy() -> UpdatePolicy {
    UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.5)
}

/// One freshly-built scenario: committed set A, trained set B ready to
/// save. Deterministic in `SEED`, so every fault index sees the same
/// operation stream.
struct Scenario {
    dir: TempDir,
    faults: FaultInjector,
    env: ManagementEnv,
    saver: Box<dyn ModelSetSaver>,
    id_a: ModelSetId,
    set_a: ModelSet,
    set_b: ModelSet,
    deriv: Derivation,
}

fn scenario(approach: &str) -> Scenario {
    let dir = TempDir::new("it-fault").unwrap();
    let faults = FaultInjector::new();
    let env = ManagementEnv::open_with_faults(dir.path(), LatencyProfile::zero(), faults.clone())
        .unwrap();
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: N,
        seed: SEED,
        arch: Architectures::ffnn(6),
    });
    let mut saver = ApproachSpec::parse(approach).unwrap().build();
    let set_a = fleet.to_model_set();
    let id_a = saver.save_initial(&env, &set_a).unwrap();
    let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
    let set_b = fleet.to_model_set();
    let deriv = record.derivation(id_a.clone());
    Scenario { dir, faults, env, saver, id_a, set_a, set_b, deriv }
}

/// Inject `plan(k)` at every write op k of one save of set B until the
/// save survives, verifying the whole recovery story after each death.
fn every_write_op_is_survivable(approach: &str, plan: impl Fn(u64) -> FaultPlan) {
    let mut survived = false;
    for k in 0..MAX_FAULT_POINTS {
        let Scenario { dir, faults, env, mut saver, id_a, set_a, set_b, deriv } =
            scenario(approach);
        faults.arm(plan(k));
        let result = saver.save_set(&env, &set_b, Some(&deriv));
        faults.disarm_all();

        if let Ok(id_b) = result {
            // k exceeded the save's write count: nothing fired. A save
            // needs at least a set document, one blob and the commit
            // record, so the first three indices must have crashed.
            assert!(k >= 3, "{approach}: save with only {k} write op(s)");
            assert_eq!(saver.recover_set(&env, &id_b).unwrap(), set_b, "{approach}: clean save");
            assert!(fsck::fsck(&env).unwrap().is_clean());
            survived = true;
            break;
        }

        // The process "died" mid-save: discard all in-memory state and
        // reopen the directory as a fresh, fault-free environment.
        drop(env);
        drop(saver);
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let ctx = format!("{approach}, write op #{k}");

        // 1. fsck classifies everything the death left behind, and a
        //    crash mid-save can only leave invisible phase-one debris.
        let report = fsck::fsck(&env).unwrap();
        for d in &report.damage {
            assert!(
                matches!(d, fsck::Damage::UncommittedSave { .. }),
                "{ctx}: unexpected damage class: {}",
                d.describe()
            );
        }

        // 2. The last committed set is untouched, bit for bit.
        let saver = ApproachSpec::parse(approach).unwrap().build();
        assert_eq!(saver.recover_set(&env, &id_a).unwrap(), set_a, "{ctx}: committed set");

        // 3. The unfinished save is invisible to the catalog.
        assert_eq!(catalog::list_sets(&env).unwrap().len(), 1, "{ctx}: catalog");

        // 4. Repair collects the debris without quarantining anything,
        //    and a second pass finds a fully clean store.
        let fixed = fsck::repair(&env, &report).unwrap();
        assert_eq!(fixed.sets_quarantined, 0, "{ctx}: debris never quarantines");
        assert_eq!(fixed.orphan_blobs_deleted, 0, "{ctx}: doc-first writes leave no orphans");
        let after = fsck::fsck(&env).unwrap();
        assert!(after.is_clean(), "{ctx}: after repair: {:?}", after.damage);
        assert_eq!(saver.recover_set(&env, &id_a).unwrap(), set_a, "{ctx}: after repair");
    }
    assert!(survived, "{approach}: save never completed within {MAX_FAULT_POINTS} write ops");
}

#[test]
fn a_crash_at_every_write_op_is_recoverable_for_every_approach() {
    for approach in APPROACHES {
        every_write_op_is_survivable(approach, |k| FaultPlan::crash_at(FaultTarget::Writes, k));
    }
}

#[test]
fn a_torn_write_at_every_write_op_is_recoverable_for_every_approach() {
    // Torn writes leave partial bytes on disk (a blob temp file, a log
    // record without its newline) that reopening must sweep or truncate.
    for approach in APPROACHES {
        every_write_op_is_survivable(approach, |k| {
            FaultPlan::torn_write_at(FaultTarget::Writes, k, 5)
        });
    }
}

#[test]
fn transient_store_faults_are_retried_to_a_committed_save() {
    for approach in APPROACHES {
        let Scenario { dir: _dir, faults, env, mut saver, set_b, deriv, .. } = scenario(approach);
        faults.arm(FaultPlan::transient_at(FaultTarget::Writes, 0, 2));
        let before = env.clock().simulated();
        let id_b = saver.save_set(&env, &set_b, Some(&deriv)).unwrap();
        // Two transient failures cost backoffs of base and 2×base,
        // charged to the virtual clock (honest TTS accounting).
        let policy = env.retry_policy();
        assert_eq!(env.clock().simulated() - before, policy.base_backoff * 3, "{approach}");
        assert_eq!(saver.recover_set(&env, &id_b).unwrap(), set_b, "{approach}");
        assert!(fsck::fsck(&env).unwrap().is_clean(), "{approach}");
    }
}

#[test]
fn silent_blob_corruption_is_caught_by_fsck_and_quarantined() {
    let dir = TempDir::new("it-fault-rot").unwrap();
    let faults = FaultInjector::new();
    let env = ManagementEnv::open_with_faults(dir.path(), LatencyProfile::zero(), faults.clone())
        .unwrap();
    let fleet = Fleet::initial(FleetConfig { n_models: N, seed: SEED, arch: Architectures::ffnn(6) });
    let set = fleet.to_model_set();
    let mut saver = ApproachSpec::parse("update").unwrap().build();

    // Rot the first blob (the parameter payload) as it is written; the
    // save itself reports success — only the hash audit can notice.
    faults.arm(FaultPlan::bit_flip_at(FaultTarget::Class(OpClass::BlobPut), 0, 9, 0xD15EA5E));
    let id = saver.save_initial(&env, &set).unwrap();
    faults.disarm_all();

    let report = fsck::fsck(&env).unwrap();
    assert!(
        report.damage.iter().any(|d| matches!(d, fsck::Damage::HashMismatch { .. })),
        "hash audit must flag the rot: {:?}",
        report.damage
    );
    let fixed = fsck::repair(&env, &report).unwrap();
    assert_eq!(fixed.sets_quarantined, 1);
    assert!(fsck::fsck(&env).unwrap().is_clean());

    // Quarantine preserves the evidence but hides it from readers.
    let keys = env.blobs().list_keys("").unwrap();
    assert!(
        keys.iter().any(|k| k.starts_with(fsck::QUARANTINE_PREFIX)),
        "quarantined blobs must survive under the quarantine prefix: {keys:?}"
    );
    assert_eq!(env.docs().count(fsck::QUARANTINE_COLLECTION), 1);
    assert!(saver.recover_set(&env, &id).is_err(), "quarantined set must not recover");
    assert!(catalog::list_sets(&env).unwrap().is_empty());
}

#[test]
fn a_flipped_document_record_fails_loudly_on_reopen() {
    // Blob rot is quarantined; metadata rot must instead refuse to open
    // (per-record log checksums), because a wrong set document could
    // silently misdirect every later recovery.
    let dir = TempDir::new("it-fault-doc").unwrap();
    {
        let faults = FaultInjector::new();
        let env =
            ManagementEnv::open_with_faults(dir.path(), LatencyProfile::zero(), faults.clone())
                .unwrap();
        let fleet =
            Fleet::initial(FleetConfig { n_models: N, seed: SEED, arch: Architectures::ffnn(6) });
        let mut saver = ApproachSpec::parse("update").unwrap().build();
        faults.arm(FaultPlan::bit_flip_at(FaultTarget::Class(OpClass::DocInsert), 0, 9, 99));
        saver.save_initial(&env, &fleet.to_model_set()).unwrap();
    }
    let err = match ManagementEnv::open(dir.path(), LatencyProfile::zero()) {
        Ok(_) => panic!("a flipped set document must fail the open"),
        Err(e) => e,
    };
    assert!(matches!(err, Error::Corrupt(_)), "got {err}");
    assert!(err.to_string().contains("model_sets"), "corrupt collection named: {err}");
}

#[test]
fn injected_damage_replays_bit_identically_from_the_seed() {
    let damaged_params = || {
        let dir = TempDir::new("it-fault-replay").unwrap();
        let faults = FaultInjector::new();
        let env =
            ManagementEnv::open_with_faults(dir.path(), LatencyProfile::zero(), faults.clone())
                .unwrap();
        let fleet =
            Fleet::initial(FleetConfig { n_models: N, seed: SEED, arch: Architectures::ffnn(6) });
        let mut saver = ApproachSpec::parse("update").unwrap().build();
        faults.arm(FaultPlan::bit_flip_at(FaultTarget::Class(OpClass::BlobPut), 0, 9, 0xC0FFEE));
        saver.save_initial(&env, &fleet.to_model_set()).unwrap();
        faults.disarm_all();
        env.blobs().get("update/0/params.bin").unwrap()
    };
    assert_eq!(damaged_params(), damaged_params(), "same seed, same damage, byte for byte");
}
