//! Timing-shape tests: with the calibrated latency profiles, the
//! qualitative claims of Figures 4 and 5 must hold at modest scale.
//! Absolute seconds are calibration, but orderings, flatness and the
//! staircase are structural consequences of the op counts.

use std::time::Duration;

use mmm::core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, UpdateSaver,
};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{Derivation, ModelSetId};
use mmm::dnn::{Architectures, TrainConfig};
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{Fleet, FleetConfig};

const N: usize = 120;

fn fleet() -> Fleet {
    Fleet::initial(FleetConfig {
        n_models: N,
        seed: 31,
        arch: Architectures::ffnn48(),
    })
}

fn perturb(set: &mut mmm::core::model_set::ModelSet, salt: usize) {
    for i in (salt % 10..N).step_by(10) {
        for v in &mut set.models[i].layers[1].data {
            *v += 0.01;
        }
    }
}

/// Figure 4: MMlib-base's TTS is an order of magnitude above Baseline's
/// on both setups, and the server setup shrinks the gap.
#[test]
fn tts_gap_and_setup_effect() {
    let mut gaps = Vec::new();
    for profile in [LatencyProfile::m1(), LatencyProfile::server()] {
        let dir = TempDir::new("it-tts").unwrap();
        let env = ManagementEnv::open(dir.path(), profile).unwrap();
        let set = fleet().to_model_set();
        let (_, mm) = env.measure(|| MmlibBaseSaver::new().save_initial(&env, &set).unwrap());
        let (_, mb) = env.measure(|| BaselineSaver::new().save_initial(&env, &set).unwrap());
        let gap = mm.duration.as_secs_f64() / mb.duration.as_secs_f64();
        assert!(gap > 5.0, "MMlib-base must be much slower to save (gap {gap:.1})");
        gaps.push(gap);
    }
    // Paper §4.3: the server's faster doc-store connection "significantly
    // reduces the overhead of saving individual models" — i.e. shrinks
    // the relative gap.
    assert!(gaps[1] < gaps[0], "server gap {:.1} should be below m1 gap {:.1}", gaps[1], gaps[0]);
}

/// Figure 5a/5b: Baseline's TTR is flat and the lowest; MMlib-base is
/// flat and far higher; Update follows a staircase.
#[test]
fn ttr_staircase_and_orderings() {
    let dir = TempDir::new("it-ttr").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::m1()).unwrap();
    let mut set = fleet().to_model_set();

    let mut baseline = BaselineSaver::new();
    let mut mmlib = MmlibBaseSaver::new();
    let mut update = UpdateSaver::new();

    let mut baseline_ids = vec![baseline.save_initial(&env, &set).unwrap()];
    let mut mmlib_ids = vec![mmlib.save_initial(&env, &set).unwrap()];
    let mut update_ids = vec![update.save_initial(&env, &set).unwrap()];

    for cycle in 0..3 {
        perturb(&mut set, cycle);
        baseline_ids.push(baseline.save_initial(&env, &set).unwrap());
        mmlib_ids.push(mmlib.save_initial(&env, &set).unwrap());
        let deriv = Derivation {
            base: update_ids.last().unwrap().clone(),
            train: TrainConfig::regression_default(0),
            updates: vec![],
        };
        update_ids.push(update.save_set(&env, &set, Some(&deriv)).unwrap());
    }

    let ttr = |saver: &dyn ModelSetSaver, id: &ModelSetId| -> Duration {
        let (_, m) = env.measure(|| saver.recover_set(&env, id).unwrap());
        m.duration
    };

    let b: Vec<Duration> = baseline_ids.iter().map(|id| ttr(&baseline, id)).collect();
    let m: Vec<Duration> = mmlib_ids.iter().map(|id| ttr(&mmlib, id)).collect();
    let u: Vec<Duration> = update_ids.iter().map(|id| ttr(&update, id)).collect();

    // MMlib-base way above Baseline at every use case.
    for (mi, bi) in m.iter().zip(&b) {
        assert!(mi.as_secs_f64() > 5.0 * bi.as_secs_f64(), "mmlib {mi:?} vs baseline {bi:?}");
    }
    // Baseline flat: every use case within a generous factor of the
    // first (same constant op count; debug-build real-time noise under a
    // parallel test run can be large on a single-core machine).
    let b0 = b[0].as_secs_f64();
    for bi in &b {
        assert!(bi.as_secs_f64() < 5.0 * b0 + 0.25, "baseline must stay flat: {b:?}");
    }
    // Update staircase: strictly growing with depth.
    for w in u.windows(2) {
        assert!(w[1] > w[0], "staircase violated: {u:?}");
    }
    // Update's deepest recovery still beats MMlib-base (paper Figure 5).
    assert!(u.last().unwrap() < &m[0], "update {u:?} vs mmlib {m:?}");
}

/// The simulated clock dominates the hybrid time under the calibrated
/// profiles, making the shapes robust to machine noise.
#[test]
fn simulated_latency_dominates_under_profiles() {
    let dir = TempDir::new("it-clock").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::m1()).unwrap();
    let set = fleet().to_model_set();
    let before_sim = env.clock().simulated();
    let (_, m) = env.measure(|| MmlibBaseSaver::new().save_initial(&env, &set).unwrap());
    let sim_delta = env.clock().simulated() - before_sim;
    // A loose bound: under a debug build on a loaded CI machine the real
    // component varies a lot; the simulated share just has to be a
    // substantial fraction, not the majority.
    assert!(
        sim_delta.as_secs_f64() > 0.25 * m.duration.as_secs_f64(),
        "simulated {sim_delta:?} of total {:?}",
        m.duration
    );
}
