//! Parallel stress acceptance tests for the threaded save/recover
//! engine.
//!
//! Three properties of the threading model are pinned here:
//!
//! 1. **Concurrent clients**: all four approaches can save and recover
//!    against one shared environment from separate OS threads (each
//!    internally fanning out over its worker-thread budget) without
//!    corrupting each other — every archived version recovers
//!    bit-identically afterwards and fsck finds a clean store, i.e. no
//!    commit-record interleaving ever exposes a half-saved set.
//! 2. **Thread-count invariance**: on the zero-latency profile the
//!    stored bytes, the store-op counts, and the simulated clock are
//!    identical for `threads = 1` and `threads = N` — parallelism may
//!    only change wall-clock time, never what lands in the store or
//!    what the accounting reports.
//! 3. **Critical-path accounting**: on a real latency profile a
//!    parallel section charges the slowest lane (max), not the sum of
//!    all lanes — simulated TTS/TTR drop when threads are added, but
//!    never below perfect `1/threads` scaling.
//!
//! The worker-thread budget is taken from `MMM_THREADS` (default 4) so
//! CI can sweep it.

use std::time::Duration;

use mmm::core::approach::ApproachSpec;
use mmm::core::env::ManagementEnv;
use mmm::core::fsck;
use mmm::core::model_set::{ModelSet, ModelSetId};
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const APPROACHES: [&str; 4] = ["mmlib-base", "baseline", "update", "provenance"];

fn threads_from_env() -> usize {
    std::env::var("MMM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(4)
}

fn policy() -> UpdatePolicy {
    UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.5)
}

#[test]
fn four_approaches_save_and_recover_concurrently_against_one_env() {
    let dir = TempDir::new("it-parstress").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero())
        .unwrap()
        .with_threads(threads_from_env());
    let cycles = 2;

    // One client thread per approach, all hammering the same env. Each
    // archives an initial set plus `cycles` derived sets, recovering
    // after every save while the other threads are mid-write.
    let saved: Vec<Vec<(ModelSetId, ModelSet)>> = std::thread::scope(|s| {
        let handles: Vec<_> = APPROACHES
            .iter()
            .enumerate()
            .map(|(t, approach)| {
                let env = &env;
                s.spawn(move || {
                    let mut saver = ApproachSpec::parse(approach).unwrap().build();
                    let mut fleet = Fleet::initial(FleetConfig {
                        n_models: 6,
                        seed: 100 + t as u64,
                        arch: Architectures::ffnn(6),
                    });
                    let mut out = Vec::new();
                    let set = fleet.to_model_set();
                    let mut last = saver.save_initial(env, &set).unwrap();
                    out.push((last.clone(), set));
                    for _ in 0..cycles {
                        let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
                        let set = fleet.to_model_set();
                        let deriv = record.derivation(last.clone());
                        last = saver.save_set(env, &set, Some(&deriv)).unwrap();
                        assert_eq!(saver.recover_set(env, &last).unwrap(), set, "{approach}");
                        out.push((last.clone(), set));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // After the dust settles every archived version of every approach
    // still recovers bit-identically.
    for (t, versions) in saved.iter().enumerate() {
        let saver = ApproachSpec::parse(APPROACHES[t]).unwrap().build();
        for (id, snapshot) in versions {
            assert_eq!(&saver.recover_set(&env, id).unwrap(), snapshot, "{id}");
        }
    }

    // And the concurrent two-phase commits never interleaved into
    // visible damage.
    let report = fsck::fsck(&env).unwrap();
    assert!(
        report.is_clean(),
        "fsck damage after concurrent saves: {:?}",
        report.damage.iter().map(|d| d.describe()).collect::<Vec<_>>()
    );
}

#[test]
fn storage_and_op_accounting_is_thread_count_invariant() {
    let many = threads_from_env().max(2);
    let mut runs = Vec::new();
    for threads in [1, many] {
        let dir = TempDir::new("it-parstress").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero())
            .unwrap()
            .with_threads(threads);
        let mut per_approach = Vec::new();
        for approach in APPROACHES {
            let mut saver = ApproachSpec::parse(approach).unwrap().build();
            let mut fleet = Fleet::initial(FleetConfig {
                n_models: 8,
                seed: 7,
                arch: Architectures::ffnn(6),
            });
            let set_a = fleet.to_model_set();
            let (id_a, m_init) = env.measure(|| saver.save_initial(&env, &set_a).unwrap());
            let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
            let set_b = fleet.to_model_set();
            let deriv = record.derivation(id_a);
            let (id_b, m_save) = env.measure(|| saver.save_set(&env, &set_b, Some(&deriv)).unwrap());
            let (recovered, m_rec) = env.measure(|| saver.recover_set(&env, &id_b).unwrap());
            assert_eq!(recovered, set_b, "{approach} at {threads} thread(s)");
            per_approach.push((approach, m_init.stats, m_save.stats, m_rec.stats));
        }
        runs.push((per_approach, env.clock().simulated()));
    }

    let (sequential, sim_seq) = &runs[0];
    let (parallel, sim_par) = &runs[1];
    for ((a, i1, s1, r1), (_, i2, s2, r2)) in sequential.iter().zip(parallel) {
        // Whole snapshots: op counts, bytes written, bytes read.
        assert_eq!(i1, i2, "{a}: initial-save accounting must not depend on threads");
        assert_eq!(s1, s2, "{a}: derived-save accounting must not depend on threads");
        assert_eq!(r1, r2, "{a}: recovery accounting must not depend on threads");
    }
    assert_eq!(sim_seq, sim_par, "zero-profile simulated clocks must agree");
}

#[test]
fn parallel_sections_charge_the_critical_path_not_the_lane_sum() {
    let many = threads_from_env().max(2);
    let n_models = 12;
    let mut sims = Vec::new();
    for threads in [1, many] {
        let dir = TempDir::new("it-parstress").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::by_name("m1").unwrap())
            .unwrap()
            .with_threads(threads);
        // mmlib-base is the op-heaviest approach (3n blob puts on save,
        // 2n round-trips on recover), so its parallel sections dominate.
        let mut saver = ApproachSpec::parse("mmlib-base").unwrap().build();
        let fleet = Fleet::initial(FleetConfig {
            n_models,
            seed: 7,
            arch: Architectures::ffnn(6),
        });
        let set = fleet.to_model_set();
        let before = env.clock().simulated();
        let id = saver.save_initial(&env, &set).unwrap();
        let save_sim = env.clock().simulated() - before;
        let before = env.clock().simulated();
        assert_eq!(saver.recover_set(&env, &id).unwrap(), set);
        let recover_sim = env.clock().simulated() - before;
        sims.push((save_sim, recover_sim));
    }

    let (save_seq, rec_seq) = sims[0];
    let (save_par, rec_par) = sims[1];
    assert!(save_par > Duration::ZERO && rec_par > Duration::ZERO);
    // Parallel lanes charge their max, so the simulated times shrink...
    assert!(
        save_par < save_seq,
        "parallel save charged {save_par:?}, sequential sum is {save_seq:?}"
    );
    assert!(
        rec_par < rec_seq,
        "parallel recovery charged {rec_par:?}, sequential sum is {rec_seq:?}"
    );
    // ...but never below perfect 1/threads scaling of the whole save
    // (the sequential doc inserts and the commit keep it strictly above).
    assert!(
        save_par >= save_seq / many as u32,
        "parallel save {save_par:?} beat perfect {many}-way scaling of {save_seq:?}"
    );
    assert!(
        rec_par >= rec_seq / many as u32,
        "parallel recovery {rec_par:?} beat perfect {many}-way scaling of {rec_seq:?}"
    );
}
