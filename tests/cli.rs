//! Integration tests driving the `mmm` CLI binary: a whole management
//! lifecycle across separate process invocations (so all state must be
//! durable, nothing in memory).

use std::path::Path;
use std::process::{Command, Output};

use mmm::util::TempDir;

fn mmm(dir: Option<&Path>, args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mmm"));
    if let Some(d) = dir {
        cmd.arg(args[0]).arg("--dir").arg(d).args(&args[1..]);
    } else {
        cmd.args(args);
    }
    cmd.output().expect("spawn mmm")
}

fn ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_lifecycle_across_processes() {
    let dir = TempDir::new("cli-lifecycle").unwrap();
    let d = dir.path();

    let out = ok(&mmm(Some(d), &["init", "--models", "20", "--approach", "update", "--seed", "9"]));
    assert!(out.contains("U1 archived as update:0"), "{out}");

    // Two update cycles in separate processes.
    let out = ok(&mmm(Some(d), &["update"]));
    assert!(out.contains("update cycle 1"), "{out}");
    let out = ok(&mmm(Some(d), &["update", "--rate", "0.2"]));
    assert!(out.contains("update cycle 2"), "{out}");

    // list shows the history.
    let out = ok(&mmm(Some(d), &["list"]));
    assert!(out.contains("U3-2"), "{out}");

    // the catalog view lists all archived sets with their chain bases.
    let out = ok(&mmm(Some(d), &["list", "--all"]));
    assert_eq!(out.lines().count(), 3, "{out}");
    assert!(out.contains("kind=full"), "{out}");
    assert!(out.contains("kind=diff"), "{out}");

    // lineage walks the chain; verify audits it; recover loads it.
    let out = ok(&mmm(Some(d), &["lineage", "update:2"]));
    assert_eq!(out.lines().count(), 3, "{out}");
    let out = ok(&mmm(Some(d), &["verify", "update:2"]));
    assert!(out.contains("is healthy"), "{out}");
    let out = ok(&mmm(Some(d), &["recover", "update:2"]));
    assert!(out.contains("recovered 20 models"), "{out}");
}

#[test]
fn branching_lifecycle_across_processes() {
    let dir = TempDir::new("cli-branching").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "6", "--approach", "update", "--backend", "cas"]));
    ok(&mmm(Some(d), &["update", "--rate", "0.5"]));

    // Fork a branch one version behind the head, in a fresh process.
    let out = ok(&mmm(Some(d), &["fork", "update:1", "trial", "--at", "1"]));
    assert!(out.contains("forked branch \"trial\" at 0"), "{out}");
    let out = ok(&mmm(Some(d), &["branch"]));
    assert!(out.contains("trial") && out.contains("root=0"), "{out}");

    // Branch names resolve wherever a set id is accepted.
    let out = ok(&mmm(Some(d), &["diff", "trial", "update:0"]));
    assert!(out.contains("identical"), "{out}");
    let out = ok(&mmm(Some(d), &["diff", "trial", "update:1"]));
    assert!(out.contains("layer(s) changed"), "{out}");

    // log --graph renders the forest with the head annotated.
    let out = ok(&mmm(Some(d), &["log", "--graph"]));
    assert!(out.contains("[trial]"), "{out}");
    assert!(out.contains("├─") || out.contains("└─"), "{out}");
    // Linear log of a branch name walks its lineage.
    let out = ok(&mmm(Some(d), &["log", "trial"]));
    assert!(out.lines().count() >= 2, "{out}");
    assert!(out.lines().last().unwrap().contains("kind=full"), "{out}");

    // A trivial three-way merge (branch unchanged vs base) is clean and
    // can fast-forward the branch in the same invocation.
    ok(&mmm(Some(d), &["fork", "update:0", "other"]));
    let out = ok(&mmm(Some(d), &["merge", "update:0", "trial", "other", "--into", "trial"]));
    assert!(out.contains("merged"), "{out}");
    assert!(out.contains("advanced branch \"trial\""), "{out}");

    // Deleting a branch is safe and leaves the store clean; repeating
    // the deletion is a no-op, not an error.
    let out = ok(&mmm(Some(d), &["branch", "--delete", "other"]));
    assert!(out.contains("deleted branch \"other\""), "{out}");
    let out = ok(&mmm(Some(d), &["branch", "--delete", "other"]));
    assert!(out.contains("0 set(s)"), "{out}");
    let out = ok(&mmm(Some(d), &["fsck"]));
    assert!(out.contains("clean"), "{out}");
}

#[test]
fn fork_of_unknown_branch_fails_cleanly() {
    let dir = TempDir::new("cli-badfork").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "3", "--approach", "update"]));
    let out = mmm(Some(d), &["fork", "nonesuch", "child"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nonesuch"));
}

#[test]
fn init_twice_fails() {
    let dir = TempDir::new("cli-twice").unwrap();
    ok(&mmm(Some(dir.path()), &["init", "--models", "4"]));
    let out = mmm(Some(dir.path()), &["init", "--models", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("already holds a fleet"));
}

#[test]
fn update_without_init_fails_helpfully() {
    let dir = TempDir::new("cli-noinit").unwrap();
    let out = mmm(Some(dir.path()), &["update"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mmm init"));
}

#[test]
fn verify_detects_a_corrupted_archive() {
    let dir = TempDir::new("cli-corrupt").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "8", "--approach", "baseline"]));
    // Destroy the params blob behind the saved set.
    std::fs::remove_file(d.join("blobs/baseline/0/params.bin")).unwrap();
    let out = mmm(Some(d), &["verify", "baseline:0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ISSUE"), "{out:?}");
}

#[test]
fn provenance_fleet_roundtrips_via_cli() {
    let dir = TempDir::new("cli-prov").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "10", "--approach", "provenance"]));
    ok(&mmm(Some(d), &["update"]));
    let out = ok(&mmm(Some(d), &["recover", "provenance:1"]));
    assert!(out.contains("recovered 10 models"), "{out}");
}

#[test]
fn info_reports_kind_depth_tags_and_health() {
    let dir = TempDir::new("cli-info").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "5", "--approach", "update"]));
    ok(&mmm(Some(d), &["update"]));
    ok(&mmm(Some(d), &["tag", "update:1", "golden"]));
    let out = ok(&mmm(Some(d), &["info", "update:1"]));
    assert!(out.contains("kind:     diff"), "{out}");
    assert!(out.contains("models:   5"), "{out}");
    assert!(out.contains("depth:    1"), "{out}");
    assert!(out.contains("tags:     golden"), "{out}");
    assert!(out.contains("health:   OK"), "{out}");
}

#[test]
fn tagging_marks_and_finds_sets() {
    let dir = TempDir::new("cli-tags").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "4", "--approach", "update"]));
    ok(&mmm(Some(d), &["update"]));
    ok(&mmm(Some(d), &["tag", "update:1", "post-accident"]));
    ok(&mmm(Some(d), &["tag", "update:1", "golden"]));
    let out = ok(&mmm(Some(d), &["tag", "update:1"]));
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["golden", "post-accident"]);
    let out = ok(&mmm(Some(d), &["find-tag", "golden"]));
    assert_eq!(out.trim(), "update:1");
}

#[test]
fn query_filters_the_lake_and_agrees_with_the_legacy_views() {
    let dir = TempDir::new("cli-query").unwrap();
    let d = dir.path();
    ok(&mmm(Some(d), &["init", "--models", "4", "--approach", "update"]));
    ok(&mmm(Some(d), &["update"]));
    ok(&mmm(Some(d), &["update"]));
    ok(&mmm(Some(d), &["tag", "update:1", "golden"]));

    // `true` is the whole catalog, one row per set plus a summary line.
    let out = ok(&mmm(Some(d), &["query", "true"]));
    assert_eq!(out.lines().count(), 4, "{out}");
    assert!(out.contains("update:0") && out.contains("update:2"), "{out}");
    assert!(out.contains("3 set(s) matched of 3 scanned"), "{out}");

    // Predicates narrow by typed fields.
    let out = ok(&mmm(Some(d), &["query", "kind = \"diff\" and n_models >= 4"]));
    assert!(out.contains("update:1") && out.contains("update:2"), "{out}");
    assert!(!out.contains("update:0 "), "{out}");

    // A tag conjunct becomes an index probe: only the probed row scans.
    let out = ok(&mmm(Some(d), &["query", "--json", "tag:golden"]));
    let doc: serde_json::Value = serde_json::from_str(&out).expect("query JSON");
    assert_eq!(doc["count"], 1, "{out}");
    assert_eq!(doc["scanned"], 1, "{out}");
    assert_eq!(doc["probes"][0], "tag:golden", "{out}");
    let set = &doc["sets"][0];
    assert_eq!(set["id"], "update:1", "{out}");
    assert_eq!(set["kind"], "diff", "{out}");
    assert_eq!(set["n_models"], 4, "{out}");
    assert_eq!(set["depth"], 1, "{out}");
    assert_eq!(set["tags"][0], "golden", "{out}");
    assert!(set["bytes"]["total"].as_u64().unwrap() > 0, "{out}");

    // The legacy views are sugar over the same engine: find-tag and a
    // tag query list identical ids.
    let legacy = ok(&mmm(Some(d), &["find-tag", "golden"]));
    let ids: Vec<String> = doc["sets"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["id"].as_str().unwrap().to_string())
        .collect();
    assert_eq!(legacy.trim().lines().collect::<Vec<_>>(), ids, "{out}");

    // Parse errors exit non-zero and point at the offending byte.
    let out = mmm(Some(d), &["query", "kind > 3"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error at byte 5"), "{err}");
    assert!(err.contains('^'), "caret diagnostic missing: {err}");
}

#[test]
fn export_import_moves_a_set_between_directories() {
    let src = TempDir::new("cli-export-src").unwrap();
    let dst = TempDir::new("cli-export-dst").unwrap();
    ok(&mmm(Some(src.path()), &["init", "--models", "6", "--approach", "update"]));
    ok(&mmm(Some(src.path()), &["update"]));

    let bundle = src.path().join("set.mmbn");
    let bundle_str = bundle.to_str().unwrap();
    let out = ok(&mmm(Some(src.path()), &["export", "update:1", bundle_str]));
    assert!(out.contains("exported update:1"), "{out}");

    // Import into a fresh directory (no fleet needed) and recover there.
    let out = ok(&mmm(Some(dst.path()), &["import", bundle_str]));
    assert!(out.contains("imported as update:"), "{out}");
    let new_id = out.trim().rsplit(' ').next().unwrap().to_string();
    let out = ok(&mmm(Some(dst.path()), &["recover", &new_id]));
    assert!(out.contains("recovered 6 models"), "{out}");
}

#[test]
fn advise_ranks_without_a_fleet() {
    let out = ok(&mmm(None, &["advise", "--priority", "recovery"]));
    assert!(out.contains("-> use the baseline approach"), "{out}");
}

#[test]
fn unknown_command_prints_usage() {
    let out = mmm(None, &["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn stats_prints_phase_breakdown_and_writes_artifacts() {
    let dir = TempDir::new("cli-stats").unwrap();
    let trace = dir.path().join("trace.jsonl");
    let metrics = dir.path().join("metrics.prom");
    let out = ok(&mmm(
        None,
        &[
            "stats",
            "--models",
            "8",
            "--cycles",
            "1",
            "--setup",
            "m1",
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    ));
    // Run header: profile, thread budget, lane distribution.
    assert!(out.contains("profile: m1   threads: 2"), "{out}");
    assert!(out.contains("lanes:"), "{out}");
    // A per-phase block for every approach's save and recover.
    for ctx in ["mmlib-base/U1/save", "baseline/U3-1/save", "update/U1/recover", "provenance/U3-1/recover"] {
        assert!(out.contains(ctx), "missing breakdown block {ctx}:\n{out}");
    }
    assert!(out.contains("commit"), "{out}");

    // The span trace is JSONL with deterministic sim durations.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.lines().count() > 10, "trace too small");
    assert!(trace_text.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "not JSONL");

    // The metrics file is Prometheus text with the core families.
    let prom = std::fs::read_to_string(&metrics).unwrap();
    for family in ["mmm_store_op_bytes_total", "mmm_span_sim_ns", "# TYPE"] {
        assert!(prom.contains(family), "missing {family} in:\n{prom}");
    }
}

#[test]
fn stats_from_trace_renders_offline_and_fails_loudly_on_bad_input() {
    let dir = TempDir::new("cli-from-trace").unwrap();
    let trace = dir.path().join("trace.jsonl");

    // Missing file: clear error, non-zero exit, not an empty report.
    let out = mmm(None, &["stats", "--from-trace", trace.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:") && err.contains("cannot read trace file"), "{err}");

    // Produce a real trace, then render it offline.
    ok(&mmm(
        None,
        &["stats", "--models", "6", "--cycles", "1", "--setup", "m1", "--trace-out", trace.to_str().unwrap()],
    ));
    let out = ok(&mmm(None, &["stats", "--from-trace", trace.to_str().unwrap()]));
    assert!(out.contains("per-phase TTS/TTR breakdown"), "{out}");
    assert!(out.contains("baseline/U1/save"), "{out}");

    // Truncate the file mid-record: hard error naming the bad line.
    let text = std::fs::read_to_string(&trace).unwrap();
    let cut = text.len() - text.len() / 3;
    std::fs::write(&trace, &text[..cut]).unwrap();
    let out = mmm(None, &["stats", "--from-trace", trace.to_str().unwrap()]);
    assert!(!out.status.success(), "truncated trace must not render");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:") && err.contains("line "), "{err}");

    // Empty file: also an error, never a silent empty report.
    std::fs::write(&trace, "").unwrap();
    let out = mmm(None, &["stats", "--from-trace", trace.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no spans"));
}

/// Raw HTTP/1.1 GET (no client library): returns (status line, body).
fn tiny_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    let status = resp.lines().next().unwrap_or("").to_string();
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn serve_obs_endpoints_and_top_render_live_slos() {
    use std::io::BufRead;
    use std::process::Stdio;

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mmm"))
        .args(["serve-obs", "--listen", "127.0.0.1:0", "--duration-ms", "6000", "--seed", "7"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve-obs");
    // First stdout line announces the bound address (flushed up front).
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line.trim().strip_prefix("obs: serving on http://").unwrap_or_else(|| {
        let _ = child.kill();
        panic!("unexpected announce line {line:?}")
    }).to_string();

    // Give the demo traffic a moment to record tenant activity.
    std::thread::sleep(std::time::Duration::from_millis(1500));

    let (status, body) = tiny_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    let (status, prom) = tiny_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(prom.contains("# TYPE"), "{prom}");
    assert!(prom.contains("mmm_tenant_requests_total{tenant=\"acme\"}"), "{prom}");

    let (status, json) = tiny_get(&addr, "/tenants");
    assert!(status.contains("200"), "{status}");
    let doc: serde_json::Value = serde_json::from_str(&json).expect("tenants JSON");
    let tenants = doc["tenants"].as_array().expect("tenants array");
    assert!(!tenants.is_empty(), "{json}");
    assert!(tenants.iter().any(|t| t["tenant"] == "acme"), "{json}");

    let (status, _) = tiny_get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    // The query engine is attached: /query answers over the live store.
    let (status, json) = tiny_get(&addr, "/query?q=true");
    assert!(status.contains("200"), "{status}");
    let doc: serde_json::Value = serde_json::from_str(&json).expect("query JSON");
    assert!(doc["sets"].is_array(), "{json}");
    let (status, body) = tiny_get(&addr, "/query?q=kind+%3E");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("parse error"), "{body}");

    // `mmm top` renders the SLO table from the live endpoint.
    let out = ok(&mmm(None, &["top", &addr]));
    assert!(out.contains("tenant") && out.contains("acme"), "{out}");
    assert!(out.contains("budget"), "{out}");

    let status = child.wait().expect("serve-obs exit");
    assert!(status.success(), "serve-obs failed");
}

#[test]
fn top_against_dead_endpoint_fails_cleanly() {
    let out = mmm(None, &["top", "127.0.0.1:1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
}
