//! End-to-end roundtrip tests: a real workload (fleet + trained update
//! cycles) saved and recovered with every approach, bit-for-bit.

use mmm::core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::ModelSetId;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const N: usize = 24;

fn setup(dir: &TempDir) -> (ManagementEnv, Fleet, UpdatePolicy) {
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let fleet = Fleet::initial(FleetConfig {
        n_models: N,
        seed: 11,
        arch: Architectures::ffnn(8),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.25);
    (env, fleet, policy)
}

/// Drive three update cycles, saving each set with all four approaches,
/// then recover everything and compare with the materialized snapshots.
#[test]
fn all_approaches_roundtrip_a_trained_workload() {
    let dir = TempDir::new("it-roundtrip").unwrap();
    let (env, mut fleet, policy) = setup(&dir);

    let mut savers: Vec<Box<dyn ModelSetSaver>> = vec![
        Box::new(MmlibBaseSaver::new()),
        Box::new(BaselineSaver::new()),
        Box::new(UpdateSaver::new()),
        Box::new(ProvenanceSaver::new()),
    ];
    let mut ids: Vec<Vec<ModelSetId>> = vec![Vec::new(); savers.len()];
    let mut snapshots = Vec::new();

    let initial = fleet.to_model_set();
    for (s, saver) in savers.iter_mut().enumerate() {
        ids[s].push(saver.save_initial(&env, &initial).unwrap());
    }
    snapshots.push(initial);

    for _cycle in 0..3 {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let set = fleet.to_model_set();
        for (s, saver) in savers.iter_mut().enumerate() {
            let deriv = record.derivation(ids[s].last().unwrap().clone());
            ids[s].push(saver.save_set(&env, &set, Some(&deriv)).unwrap());
        }
        snapshots.push(set);
    }

    for (s, saver) in savers.iter().enumerate() {
        for (uc, id) in ids[s].iter().enumerate() {
            let recovered = saver.recover_set(&env, id).unwrap();
            assert_eq!(
                recovered, snapshots[uc],
                "{} recovered a different set at use case {uc}",
                saver.name()
            );
        }
    }
}

/// Recovery must work from a freshly reopened environment (new process):
/// nothing may depend on in-memory state of the saving session.
#[test]
fn recovery_survives_environment_reopen() {
    let dir = TempDir::new("it-reopen").unwrap();
    let mut update_ids = Vec::new();
    let mut prov_ids = Vec::new();
    let mut snapshots = Vec::new();
    {
        let (env, mut fleet, policy) = setup(&dir);
        let mut update = UpdateSaver::new();
        let mut prov = ProvenanceSaver::new();
        let initial = fleet.to_model_set();
        update_ids.push(update.save_initial(&env, &initial).unwrap());
        prov_ids.push(prov.save_initial(&env, &initial).unwrap());
        snapshots.push(initial);
        for _ in 0..2 {
            let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
            let set = fleet.to_model_set();
            update_ids.push(
                update
                    .save_set(&env, &set, Some(&record.derivation(update_ids.last().unwrap().clone())))
                    .unwrap(),
            );
            prov_ids.push(
                prov.save_set(&env, &set, Some(&record.derivation(prov_ids.last().unwrap().clone())))
                    .unwrap(),
            );
            snapshots.push(set);
        }
    }

    // Fresh environment over the same directory: replays the doc logs.
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let update = UpdateSaver::new();
    let prov = ProvenanceSaver::new();
    for (uc, id) in update_ids.iter().enumerate() {
        assert_eq!(update.recover_set(&env, id).unwrap(), snapshots[uc], "update uc {uc}");
    }
    for (uc, id) in prov_ids.iter().enumerate() {
        assert_eq!(prov.recover_set(&env, id).unwrap(), snapshots[uc], "provenance uc {uc}");
    }
}

/// The approaches keep separate namespaces: saving the same sets with all
/// approaches into one environment must not cross-contaminate.
#[test]
fn approaches_coexist_in_one_environment() {
    let dir = TempDir::new("it-coexist").unwrap();
    let (env, fleet, _) = setup(&dir);
    let set = fleet.to_model_set();

    let mut b = BaselineSaver::new();
    let mut m = MmlibBaseSaver::new();
    let mut u = UpdateSaver::new();
    let mut p = ProvenanceSaver::new();
    let idb = b.save_initial(&env, &set).unwrap();
    let idm = m.save_initial(&env, &set).unwrap();
    let idu = u.save_initial(&env, &set).unwrap();
    let idp = p.save_initial(&env, &set).unwrap();

    assert_eq!(b.recover_set(&env, &idb).unwrap(), set);
    assert_eq!(m.recover_set(&env, &idm).unwrap(), set);
    assert_eq!(u.recover_set(&env, &idu).unwrap(), set);
    assert_eq!(p.recover_set(&env, &idp).unwrap(), set);

    // Cross-recovery must be rejected, not return wrong data.
    assert!(b.recover_set(&env, &idu).is_err());
    assert!(u.recover_set(&env, &idp).is_err());
}

/// FFNN-69 and the CIFAR CNN roundtrip through the set-oriented savers
/// too (the paper's model-size and domain variations).
#[test]
fn variant_architectures_roundtrip() {
    for arch in [Architectures::ffnn69(), Architectures::cifar_cnn()] {
        let dir = TempDir::new("it-arch").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let fleet = Fleet::initial(FleetConfig { n_models: 4, seed: 5, arch: arch.clone() });
        let set = fleet.to_model_set();
        let mut b = BaselineSaver::new();
        let id = b.save_initial(&env, &set).unwrap();
        let recovered = b.recover_set(&env, &id).unwrap();
        assert_eq!(recovered, set, "{}", arch.name);
        assert_eq!(recovered.arch.param_count(), arch.param_count());
    }
}
