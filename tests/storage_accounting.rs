//! Storage-consumption accounting: the numbers the harness reports must
//! be ground truth, and the paper's storage claims must hold at modest
//! scale.

use mmm::core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn env_and_fleet(n: usize) -> (TempDir, ManagementEnv, Fleet) {
    let dir = TempDir::new("it-storage").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let fleet = Fleet::initial(FleetConfig {
        n_models: n,
        seed: 21,
        arch: Architectures::ffnn48(),
    });
    (dir, env, fleet)
}

/// Reported bytes_written must equal actual blob disk usage plus the
/// document-log bytes (cross-check against the filesystem).
#[test]
fn reported_bytes_match_disk_ground_truth() {
    let (dir, env, fleet) = env_and_fleet(10);
    let set = fleet.to_model_set();
    let (_, m) = env.measure(|| BaselineSaver::new().save_initial(&env, &set).unwrap());

    let blob_disk = env.blobs().disk_bytes();
    // Document log: the single jsonl file under docs/.
    let doc_disk: u64 = std::fs::read_dir(dir.path().join("docs"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|md| md.len())
        .sum();
    assert_eq!(m.bytes_written(), blob_disk + doc_disk);
}

/// Baseline's parameter blob must be exactly n × params × 4 bytes — the
/// paper's "concatenate the floating-point numbers" with zero framing.
#[test]
fn baseline_blob_is_exactly_raw_floats() {
    let (_d, env, fleet) = env_and_fleet(15);
    let set = fleet.to_model_set();
    let mut saver = BaselineSaver::new();
    let id = saver.save_initial(&env, &set).unwrap();
    let key = format!("baseline/{}/params.bin", id.key);
    assert_eq!(
        env.blobs().size(&key).unwrap(),
        (4 * set.total_params()) as u64
    );
}

/// The paper's U1 storage ordering at 5000×FFNN-48 scale, proportionally:
/// MMlib-base carries kilobytes of per-model overhead, Baseline ~4 KB per
/// set, Update additionally the hash table (n × layers × 8 bytes).
#[test]
fn u1_overheads_match_paper_structure() {
    let n = 50;
    let (_d, env, fleet) = env_and_fleet(n);
    let set = fleet.to_model_set();
    let raw = (4 * set.total_params()) as u64;

    let (_, mb) = env.measure(|| BaselineSaver::new().save_initial(&env, &set).unwrap());
    let (_, mm) = env.measure(|| MmlibBaseSaver::new().save_initial(&env, &set).unwrap());
    let (_, mu) = env.measure(|| UpdateSaver::new().save_initial(&env, &set).unwrap());
    let (_, mp) = env.measure(|| ProvenanceSaver::new().save_initial(&env, &set).unwrap());

    // Baseline ≈ raw + ~4 KB.
    assert!(mb.bytes_written() - raw < 8_192);
    // Provenance U1 == Baseline logic.
    assert!(mp.bytes_written().abs_diff(mb.bytes_written()) < 64);
    // MMlib-base ≈ raw + ~8 KB per model.
    let per_model = (mm.bytes_written() - raw) / n as u64;
    assert!((5_000..13_000).contains(&per_model), "got {per_model}");
    // Update == Baseline + hash table (+ tiny doc delta).
    let hash_table = (16 + 8 * n * 4) as u64;
    let diff = mu.bytes_written() - mb.bytes_written();
    assert!(
        diff.abs_diff(hash_table) < 256,
        "update overhead {diff}, hash table {hash_table}"
    );
}

/// Update's U3 storage must scale with the update rate (paper §4.2), and
/// the baselines must not change at all.
#[test]
fn u3_storage_scales_with_update_rate() {
    let mut update_bytes = Vec::new();
    let mut baseline_bytes = Vec::new();
    for rate in [0.1, 0.2, 0.4] {
        let (_d, env, mut fleet) = env_and_fleet(40);
        let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(rate);
        let mut u = UpdateSaver::new();
        let mut b = BaselineSaver::new();
        let id_u = u.save_initial(&env, &fleet.to_model_set()).unwrap();
        b.save_initial(&env, &fleet.to_model_set()).unwrap();

        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let set = fleet.to_model_set();
        let (_, mu) = env.measure(|| {
            u.save_set(&env, &set, Some(&record.derivation(id_u.clone()))).unwrap()
        });
        let (_, mb) = env.measure(|| b.save_initial(&env, &set).unwrap());
        update_bytes.push(mu.bytes_written());
        baseline_bytes.push(mb.bytes_written());
    }
    assert!(update_bytes[0] < update_bytes[1], "{update_bytes:?}");
    assert!(update_bytes[1] < update_bytes[2], "{update_bytes:?}");
    // Baseline flat (same content volume regardless of rate).
    assert!(baseline_bytes.iter().all(|&b| b == baseline_bytes[0]), "{baseline_bytes:?}");
}

/// Provenance's derived-set storage must be independent of the model
/// size (paper: FFNN-69 does not affect Provenance).
#[test]
fn provenance_storage_is_model_size_independent() {
    let mut per_arch = Vec::new();
    for arch in [Architectures::ffnn48(), Architectures::ffnn69()] {
        let dir = TempDir::new("it-prov-size").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let mut fleet = Fleet::initial(FleetConfig { n_models: 20, seed: 9, arch });
        let policy = UpdatePolicy::paper_default(DataSource::battery_small());
        let mut p = ProvenanceSaver::new();
        let id0 = p.save_initial(&env, &fleet.to_model_set()).unwrap();
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let set = fleet.to_model_set();
        let (_, m) = env.measure(|| {
            p.save_set(&env, &set, Some(&record.derivation(id0))).unwrap()
        });
        per_arch.push(m.bytes_written());
    }
    // Identical provenance volume (same #updates, same record shape).
    assert!(
        per_arch[0].abs_diff(per_arch[1]) < 64,
        "provenance storage should not scale with model size: {per_arch:?}"
    );
}

/// The dataset registry is outside the storage accounting: registering
/// data must not move the management byte counters.
#[test]
fn registry_is_outside_accounting() {
    let (_d, env, mut fleet) = env_and_fleet(10);
    let before = env.stats();
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.4);
    fleet.run_update_cycle(env.registry(), &policy).unwrap();
    let after = env.stats();
    assert_eq!(before.bytes_written, after.bytes_written);
    assert!(env.registry().disk_bytes() > 0, "data did land in the registry");
}
