//! Property tests of the model-lake query engine.
//!
//! Two laws pin the API redesign:
//!
//! 1. `query "true"` is the catalog: for arbitrary environment
//!    populations (baseline saves, update chains, mmlib batches) the
//!    trivial query returns exactly the sets `catalog::list_sets`
//!    reports, with agreeing metadata.
//! 2. Printing round-trips: every expression the parser can represent
//!    prints (`Display`) to a string that parses back to an equal AST.

use mmm::core::approach::{BaselineSaver, MmlibBaseSaver, ModelSetSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{Derivation, ModelSet, ModelSetId};
use mmm::core::query::{CmpOp, Expr, NumField, Query, StrField};
use mmm::core::{catalog, query, tags};
use mmm::dnn::{ArchitectureSpec, Architectures, TrainConfig};
use mmm::store::LatencyProfile;
use mmm::util::{Rng, SplitMix64, TempDir};
use proptest::prelude::*;

fn small_set(arch: &ArchitectureSpec, seed: u64, n_models: usize) -> ModelSet {
    let models =
        (0..n_models).map(|i| arch.build(seed ^ i as u64).export_param_dict()).collect();
    ModelSet::new(arch.clone(), models)
}

/// Build a random expression from a seeded generator. Pools cover the
/// printing edge cases: values needing quoting (spaces, empty, unicode),
/// numeric names with and without leading zeros, and keyword-shaped
/// names (`true`).
fn arb_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    const STRS: &[&str] = &["full", "diff", "a b", "x-1", "", "Ünïcode"];
    const NAMES: &[&str] = &["prod", "a b", "123", "0123", "v1.2-rc", "true", ""];
    const IDS: &[(&str, &str)] =
        &[("update", "1"), ("baseline", "42"), ("mmlib-base", "0:3"), ("provenance", "head")];
    let pick = |rng: &mut SplitMix64, n: usize| rng.below(n as u64) as usize;
    let set_id = |rng: &mut SplitMix64| {
        let (a, k) = IDS[pick(rng, IDS.len())];
        ModelSetId { approach: a.into(), key: k.into() }
    };
    let arms = if depth == 0 { 8 } else { 11 };
    match rng.below(arms) {
        0 => Expr::True,
        1 => Expr::False,
        2 => Expr::StrCmp {
            field: [StrField::Kind, StrField::Approach, StrField::Key, StrField::Base]
                [pick(rng, 4)],
            negated: rng.below(2) == 0,
            value: STRS[pick(rng, STRS.len())].to_string(),
        },
        3 => Expr::NumCmp {
            field: [NumField::NModels, NumField::Depth, NumField::Bytes][pick(rng, 3)],
            op: [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                [pick(rng, 6)],
            value: rng.below(1_000_000),
        },
        4 => Expr::Tag(NAMES[pick(rng, NAMES.len())].to_string()),
        5 => Expr::Branch(NAMES[pick(rng, NAMES.len())].to_string()),
        6 => Expr::DescendantOf(set_id(rng)),
        7 => Expr::SimilarTo(set_id(rng), rng.below(1001) as f64 / 1000.0),
        8 => Expr::Not(Box::new(arb_expr(rng, depth - 1))),
        9 => Expr::And(
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        ),
        _ => Expr::Or(
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Law 1: `query "true"` returns exactly the catalog — baseline
    /// saves, update chains, and grouped mmlib batches alike — with
    /// kind and model counts agreeing row for row.
    #[test]
    fn query_true_is_the_catalog(
        n_baseline in 0usize..3,
        chain in 0usize..3,
        batches in proptest::collection::vec(1usize..4, 0..3),
        seed in any::<u64>(),
    ) {
        let dir = TempDir::new("prop-query").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let arch = Architectures::ffnn(4);

        for i in 0..n_baseline {
            BaselineSaver::new()
                .save_initial(&env, &small_set(&arch, seed ^ i as u64, 2))
                .unwrap();
        }
        if chain > 0 {
            let mut saver = UpdateSaver::new();
            let mut set = small_set(&arch, seed ^ 0x77, 2);
            let mut id = saver.save_initial(&env, &set).unwrap();
            tags::tag_set(&env, &id, "chain-root").unwrap();
            for _ in 1..chain {
                set.models[0].layers[0].data[0] += 1.0;
                let d = Derivation {
                    base: id.clone(),
                    train: TrainConfig::regression_default(0),
                    updates: vec![],
                };
                id = saver.save_set(&env, &set, Some(&d)).unwrap();
            }
        }
        for (bi, n) in batches.iter().enumerate() {
            MmlibBaseSaver::new()
                .save_initial(&env, &small_set(&arch, seed ^ (0x1000 + bi as u64), *n))
                .unwrap();
        }

        let summaries = catalog::list_sets(&env).unwrap();
        let out = query::run(&env, "true").unwrap();
        let mut listed: Vec<String> = summaries.iter().map(|s| s.id.to_string()).collect();
        let mut queried: Vec<String> = out.records.iter().map(|r| r.id.to_string()).collect();
        listed.sort();
        queried.sort();
        prop_assert_eq!(&queried, &listed);
        prop_assert_eq!(out.scanned, summaries.len());
        for s in &summaries {
            let r = out.records.iter().find(|r| r.id == s.id).unwrap();
            prop_assert_eq!(r.kind, s.kind);
            prop_assert_eq!(r.n_models, s.n_models);
            prop_assert_eq!(r.bytes_stored, s.bytes_stored);
        }
        // The tag probe narrows the scan and agrees with the tag index.
        if chain > 0 {
            let probed = query::run(&env, "tag:chain-root").unwrap();
            prop_assert_eq!(probed.records.len(), 1);
            prop_assert_eq!(probed.scanned, 1, "tag probe must narrow the scan");
        }
    }

    /// Law 2: whatever the AST, `Display` prints a string the parser
    /// maps back to an equal AST — parenthesization, quoting, and
    /// numeric names included.
    #[test]
    fn every_expression_round_trips_display_then_parse(
        seed in any::<u64>(),
        depth in 0usize..4,
    ) {
        let mut rng = SplitMix64::new(seed);
        let expr = arb_expr(&mut rng, depth);
        let printed = format!("{expr}");
        let back = Query::parse(&printed);
        prop_assert!(back.is_ok(), "`{}` failed to re-parse: {:?}", printed, back.err());
        let back = back.unwrap();
        prop_assert_eq!(
            back.expr(),
            &expr,
            "`{}` re-parsed to a different AST",
            printed
        );
    }
}
