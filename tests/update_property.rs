//! Property-based tests of the Update approach: for *arbitrary* mutation
//! patterns across an arbitrary-depth chain, recovery is bit-exact, and
//! the diff payload contains exactly the changed layers.

use mmm::core::approach::{ModelSetSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{Derivation, ModelSet, ModelSetId};
use mmm::dnn::{Architectures, TrainConfig};
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use proptest::prelude::*;

const N_MODELS: usize = 6;
const N_LAYERS: usize = 4; // FFNN architectures have 4 parametric layers

/// One chain level: for each (model, layer), an optional additive
/// perturbation applied to a pseudo-random position.
type Mutation = Vec<(usize, usize, f32)>;

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    proptest::collection::vec(
        (0..N_MODELS, 0..N_LAYERS, -2.0f32..2.0),
        0..10,
    )
}

fn apply(set: &ModelSet, mutation: &Mutation) -> ModelSet {
    let mut s = set.clone();
    for &(mi, li, delta) in mutation {
        let layer = &mut s.models[mi].layers[li];
        let pos = (mi * 31 + li * 7) % layer.data.len();
        layer.data[pos] += delta;
    }
    s
}

fn deriv(base: &ModelSetId) -> Derivation {
    Derivation {
        base: base.clone(),
        train: TrainConfig::regression_default(0),
        updates: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any chain of arbitrary mutations recovers bit-exactly at every
    /// level, with and without delta compression.
    #[test]
    fn arbitrary_chains_roundtrip(
        mutations in proptest::collection::vec(arb_mutation(), 1..4),
        compressed in any::<bool>(),
    ) {
        let dir = TempDir::new("prop-update").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let arch = Architectures::ffnn(6);
        let models = (0..N_MODELS).map(|i| arch.build(i as u64).export_param_dict()).collect();
        let mut set = ModelSet::new(arch, models);

        let mut saver = if compressed {
            UpdateSaver::new().with_delta_compression()
        } else {
            UpdateSaver::new()
        };
        let mut ids = vec![saver.save_initial(&env, &set).unwrap()];
        let mut snapshots = vec![set.clone()];
        for m in &mutations {
            set = apply(&set, m);
            let d = deriv(ids.last().unwrap());
            ids.push(saver.save_set(&env, &set, Some(&d)).unwrap());
            snapshots.push(set.clone());
        }
        for (id, snap) in ids.iter().zip(&snapshots) {
            prop_assert_eq!(&saver.recover_set(&env, id).unwrap(), snap);
        }
    }

    /// The number of changed layers recorded in the metadata equals the
    /// number of layers whose bytes actually differ — no false positives
    /// from the hash-based change detection, no misses.
    #[test]
    fn diff_records_exactly_the_changed_layers(mutation in arb_mutation()) {
        let dir = TempDir::new("prop-diff").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let arch = Architectures::ffnn(6);
        let models = (0..N_MODELS).map(|i| arch.build(100 + i as u64).export_param_dict()).collect();
        let s0 = ModelSet::new(arch, models);
        let s1 = apply(&s0, &mutation);

        // Ground truth: layers whose contents differ (mutations can
        // cancel or hit the same position twice).
        let mut truly_changed = 0usize;
        for (m0, m1) in s0.models().iter().zip(s1.models()) {
            for (l0, l1) in m0.layers.iter().zip(&m1.layers) {
                if l0.data != l1.data {
                    truly_changed += 1;
                }
            }
        }

        let mut saver = UpdateSaver::new();
        let id0 = saver.save_initial(&env, &s0).unwrap();
        let id1 = saver.save_set(&env, &s1, Some(&deriv(&id0))).unwrap();
        let doc = env
            .docs()
            .get("model_sets", id1.key.parse::<u64>().unwrap())
            .unwrap();
        prop_assert_eq!(doc["n_changed_layers"].as_u64().unwrap() as usize, truly_changed);
    }
}
