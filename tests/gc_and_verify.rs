//! End-to-end lifecycle tests: archive a real workload, audit it, retire
//! old versions, and confirm the survivors still recover bit-exactly.

use mmm::core::approach::{ModelSetSaver, ProvenanceSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::{gc, verify};
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn setup() -> (TempDir, ManagementEnv, Fleet, UpdatePolicy) {
    let dir = TempDir::new("it-lifecycle").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let fleet = Fleet::initial(FleetConfig {
        n_models: 16,
        seed: 5,
        arch: Architectures::ffnn(8),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.25);
    (dir, env, fleet, policy)
}

#[test]
fn archived_workload_passes_the_integrity_audit() {
    let (_d, env, mut fleet, policy) = setup();
    let mut saver = UpdateSaver::new();
    let mut ids = vec![saver.save_initial(&env, &fleet.to_model_set()).unwrap()];
    for _ in 0..3 {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let deriv = record.derivation(ids.last().unwrap().clone());
        ids.push(saver.save_set(&env, &fleet.to_model_set(), Some(&deriv)).unwrap());
    }
    for id in &ids {
        let report = verify::verify_set(&env, id).unwrap();
        assert!(report.is_healthy(), "{id}: {:?}", report.issues);
    }
}

#[test]
fn snapshot_interval_allows_real_retention() {
    // With intermediate full snapshots the old chain prefix becomes
    // deletable — the practical payoff of the paper's §2.2 remark.
    let (_d, env, mut fleet, policy) = setup();
    let mut saver = UpdateSaver::with_full_snapshot_every(2);
    let mut ids = vec![saver.save_initial(&env, &fleet.to_model_set()).unwrap()];
    let mut snapshots = vec![fleet.to_model_set()];
    for _ in 0..4 {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let deriv = record.derivation(ids.last().unwrap().clone());
        ids.push(saver.save_set(&env, &fleet.to_model_set(), Some(&deriv)).unwrap());
        snapshots.push(fleet.to_model_set());
    }

    // Keep the last two sets. Depths: 0,1,0,1,0 — sets 0..=2 are not
    // needed by 3 (full snapshot at depth 0 is id[2]? depth pattern:
    // save 2 and 4 are full snapshots). Retention must figure it out.
    let deleted = gc::apply_retention(&env, &ids, 2).unwrap();
    assert!(!deleted.is_empty(), "some prefix must be collectible");

    // The retained sets still recover bit-exactly.
    for (uc, id) in ids.iter().enumerate().skip(ids.len() - 2) {
        let recovered = saver.recover_set(&env, id).unwrap();
        assert_eq!(recovered, snapshots[uc], "retained set {uc}");
        assert!(verify::verify_set(&env, id).unwrap().is_healthy());
    }
    // Deleted sets fail loudly.
    for id in &deleted {
        assert!(saver.recover_set(&env, id).is_err());
    }
}

#[test]
fn provenance_chain_audit_detects_lost_updates_blob() {
    let (_d, env, mut fleet, policy) = setup();
    let mut saver = ProvenanceSaver::new();
    let mut ids = vec![saver.save_initial(&env, &fleet.to_model_set()).unwrap()];
    let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
    let deriv = record.derivation(ids[0].clone());
    ids.push(saver.save_set(&env, &fleet.to_model_set(), Some(&deriv)).unwrap());

    assert!(verify::verify_set(&env, &ids[1]).unwrap().is_healthy());
    env.blobs()
        .delete(&format!("provenance/{}/updates.jsonl", ids[1].key))
        .unwrap();
    let report = verify::verify_set(&env, &ids[1]).unwrap();
    assert!(!report.is_healthy());
    assert!(report.issues[0].contains("updates.jsonl"), "{:?}", report.issues);
}

#[test]
fn divergence_driven_workload_roundtrips_like_random() {
    // Selection strategy must not affect management correctness — only
    // which models change.
    let (_d, env, mut fleet, policy) = setup();
    let policy = policy.with_divergence_selection(16);
    let mut saver = UpdateSaver::new();
    let id0 = saver.save_initial(&env, &fleet.to_model_set()).unwrap();
    let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
    assert_eq!(record.updates.len(), 4, "25% of 16 models");
    let set = fleet.to_model_set();
    let id1 = saver
        .save_set(&env, &set, Some(&record.derivation(id0)))
        .unwrap();
    assert_eq!(saver.recover_set(&env, &id1).unwrap(), set);
}
