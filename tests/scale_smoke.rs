//! Scale smoke: the million-model machinery (streaming encode, mmap
//! recovery) exercised end-to-end at n = 50k — big enough that an
//! O(set) staging buffer would be caught, small enough for CI.
//!
//! The full sweep lives in `repro scale` (BENCH_scale.json); this test
//! pins the two properties the sweep relies on:
//!
//! 1. a streamed save's peak staging memory is O(chunk), not O(set);
//! 2. every recovery path — copying read, zero-copy mapping, streaming
//!    visit decode, threaded block decode at 1 and 4 workers — is
//!    bit-identical to the byte stream the generator produced.

use mmm::core::approach::BaselineSaver;
use mmm::core::env::ManagementEnv;
use mmm::core::param_codec;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::{mem, xxhash64, Hasher64, TempDir};

const N: usize = 50_000;
const CHUNK: usize = 256 * 1024;

#[test]
fn streamed_save_is_o_chunk_and_every_recovery_path_is_bit_identical() {
    let dir = TempDir::new("mmm-scale-smoke").unwrap();
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
        .stream_chunk_bytes(CHUNK)
        .open()
        .unwrap();
    let arch = Architectures::ffnn(2);
    let layer_names = arch.parametric_layer_names();
    let layer_sizes = arch.parametric_layer_sizes();
    let model_bytes = 4 * param_codec::per_model_params(&layer_sizes).unwrap();
    let blob_bytes = (model_bytes * N) as u64;
    assert!(
        blob_bytes >= 10 * CHUNK as u64,
        "the set must dwarf the chunk for the staging bound to mean anything"
    );

    // Save from a generator, hashing the byte stream as it is produced.
    // The concat blob is exactly this stream, so one hash verifies every
    // recovery path below.
    let mut saver = BaselineSaver::new();
    let mut save_hasher = Hasher64::new(0);
    mem::reset_peak();
    let id = saver
        .save_streamed(&env, &arch, N, |i, buf| {
            let before = buf.len();
            let dict = arch.build(7_000 + i as u64).export_param_dict();
            param_codec::append_model_record(&dict, buf);
            save_hasher.update(&buf[before..]);
            Ok(())
        })
        .unwrap();
    let staging_peak = mem::peak_bytes();
    let save_hash = save_hasher.finish();
    assert!(
        staging_peak <= 4 * CHUNK as u64,
        "staging peak {staging_peak} must stay O(chunk = {CHUNK}), not O(set = {blob_bytes})"
    );

    let key = format!("baseline/{}/params.bin", id.key);

    // Copying read path: full blob, every byte copied.
    let s0 = env.stats();
    let copied = env.blobs().get(&key).unwrap();
    let copy_delta = env.stats() - s0;
    assert_eq!(copied.len() as u64, blob_bytes);
    assert_eq!(xxhash64(&copied, 0), save_hash);
    assert_eq!(copy_delta.bytes_copied, blob_bytes, "a plain get copies the whole blob");

    // Zero-copy mapping: same bytes, nothing copied.
    let s1 = env.stats();
    let mapped = env.blobs().get_mapped(&key).unwrap();
    let map_delta = env.stats() - s1;
    assert_eq!(xxhash64(&mapped, 0), save_hash);
    if cfg!(unix) {
        assert!(mapped.is_mapped(), "a plain-backend blob of this size must map");
        assert_eq!(map_delta.bytes_copied, 0, "a mapped get copies nothing");
    }
    assert_eq!(map_delta.bytes_read, copy_delta.bytes_read, "charging parity with get");

    // Streaming visit decode: one model in memory at a time, each
    // re-encoded record hashed back into the stream.
    let mut visit_hasher = Hasher64::new(0);
    let mut record = Vec::with_capacity(model_bytes);
    let mut visited = 0usize;
    saver
        .recover_visit(&env, &id, |i, dict| {
            assert_eq!(i, visited);
            visited += 1;
            record.clear();
            param_codec::append_model_record(&dict, &mut record);
            visit_hasher.update(&record);
            Ok(())
        })
        .unwrap();
    assert_eq!(visited, N);
    assert_eq!(visit_hasher.finish(), save_hash, "visit decode must be bit-identical");

    // Threaded block decode at 1 and 4 workers, re-encoded and compared.
    for threads in [1usize, 4] {
        let dicts =
            param_codec::decode_concat_threaded(&mapped, N, &layer_names, &layer_sizes, threads)
                .unwrap();
        assert_eq!(dicts.len(), N);
        let bytes = param_codec::encode_concat_threaded(&dicts, threads).unwrap();
        assert_eq!(
            xxhash64(&bytes, 0),
            save_hash,
            "block decode at {threads} threads must be bit-identical"
        );
    }
}

/// A blob whose length no longer matches its set document (torn write,
/// truncated copy) must surface as `Corrupt` through the mapped decode
/// path — not as a short read or a panic.
#[test]
fn truncated_params_blob_recovers_as_corrupt() {
    let dir = TempDir::new("mmm-scale-smoke-corrupt").unwrap();
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
        .stream_chunk_bytes(1024)
        .open()
        .unwrap();
    let arch = Architectures::ffnn(2);
    let mut saver = BaselineSaver::new();
    let id = saver
        .save_streamed(&env, &arch, 200, |i, buf| {
            param_codec::append_model_record(&arch.build(i as u64).export_param_dict(), buf);
            Ok(())
        })
        .unwrap();

    // Truncate the blob behind the store's back.
    let key = format!("baseline/{}/params.bin", id.key);
    let full = env.blobs().get(&key).unwrap();
    env.blobs().put(&key, &full[..full.len() / 2]).unwrap();

    let err = saver.recover_visit(&env, &id, |_, _| Ok(())).unwrap_err();
    assert!(
        matches!(err, mmm::util::Error::Corrupt(_)),
        "truncated blob must decode as Corrupt, got {err:?}"
    );
    let err = mmm::core::approach::ModelSetSaver::recover_set(&saver, &env, &id).unwrap_err();
    assert!(matches!(err, mmm::util::Error::Corrupt(_)));
}
