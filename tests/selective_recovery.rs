//! Selective recovery: "we … only recover a selected number of models,
//! for example, after an accident" (paper §1). Every approach must
//! return exactly the same parameters as a full recovery would, at a
//! fraction of the transfer/compute cost.

use mmm::core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::ModelSetId;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const N: usize = 30;
const PICK: [usize; 3] = [2, 17, 29];

type SaverHistory = Vec<(Box<dyn ModelSetSaver>, Vec<ModelSetId>)>;

/// Build a 2-cycle trained history saved with every approach.
fn build() -> (TempDir, ManagementEnv, SaverHistory, Vec<mmm::core::ModelSet>) {
    let dir = TempDir::new("it-selective").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: N,
        seed: 4,
        arch: Architectures::ffnn(8),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.3);

    let mut savers: SaverHistory = vec![
        (Box::new(MmlibBaseSaver::new()), Vec::new()),
        (Box::new(BaselineSaver::new()), Vec::new()),
        (Box::new(UpdateSaver::new()), Vec::new()),
        (Box::new(ProvenanceSaver::new()), Vec::new()),
    ];
    let mut snapshots = Vec::new();

    let initial = fleet.to_model_set();
    for (saver, ids) in &mut savers {
        ids.push(saver.save_initial(&env, &initial).unwrap());
    }
    snapshots.push(initial);
    for _ in 0..2 {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let set = fleet.to_model_set();
        for (saver, ids) in &mut savers {
            let deriv = record.derivation(ids.last().unwrap().clone());
            ids.push(saver.save_set(&env, &set, Some(&deriv)).unwrap());
        }
        snapshots.push(set);
    }
    (dir, env, savers, snapshots)
}

#[test]
fn selected_models_match_full_recovery_for_every_approach() {
    let (_d, env, savers, snapshots) = build();
    for (saver, ids) in &savers {
        for (uc, id) in ids.iter().enumerate() {
            let picked = saver.recover_models(&env, id, &PICK).unwrap();
            for (p, &idx) in PICK.iter().enumerate() {
                assert_eq!(
                    picked[p], snapshots[uc].models()[idx],
                    "{} uc {uc} model {idx}",
                    saver.name()
                );
            }
        }
    }
}

#[test]
fn selective_recovery_transfers_less_than_full() {
    let (_d, env, savers, _snapshots) = build();
    for (saver, ids) in &savers {
        let last = ids.last().unwrap();
        let (_, full) = env.measure(|| saver.recover_set(&env, last).unwrap());
        let (_, partial) = env.measure(|| saver.recover_models(&env, last, &PICK).unwrap());
        assert!(
            partial.stats.bytes_read < full.stats.bytes_read,
            "{}: partial {} vs full {} bytes",
            saver.name(),
            partial.stats.bytes_read,
            full.stats.bytes_read
        );
    }
}

#[test]
fn out_of_range_index_is_rejected_by_every_approach() {
    let (_d, env, savers, _snapshots) = build();
    for (saver, ids) in &savers {
        let err = saver.recover_models(&env, &ids[0], &[N + 5]);
        assert!(err.is_err(), "{} accepted an out-of-range index", saver.name());
    }
}

#[test]
fn order_and_duplicates_are_respected() {
    let (_d, env, savers, snapshots) = build();
    let (saver, ids) = &savers[1]; // baseline
    let picked = saver.recover_models(&env, &ids[0], &[5, 1, 5]).unwrap();
    assert_eq!(picked[0], snapshots[0].models()[5]);
    assert_eq!(picked[1], snapshots[0].models()[1]);
    assert_eq!(picked[2], picked[0]);
}
