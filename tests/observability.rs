//! Observability acceptance tests.
//!
//! Tracing must be a pure read on the system it observes:
//!
//! 1. **Zero interference**: running the full Figure-2 scenario with the
//!    observer enabled stores bit-identical bytes on disk and reports
//!    identical store-op accounting as an unobserved run — for every
//!    approach, at 1 and at 4 worker threads.
//! 2. **Exact phase tiling**: every `save`/`recover` op's named phases
//!    sum to the op's end-to-end simulated time with a zero `other`
//!    residual, and each breakdown total equals the TTS/TTR simulated
//!    time the bench reports for that cell.
//! 3. **Deterministic traces**: two runs of the same seeded scenario
//!    produce the same ordered span sequence with the same simulated
//!    durations, even across parallel worker lanes (only wall-clock
//!    `real_ns` and lane assignment may differ).

use std::collections::BTreeMap;
use std::path::Path;

use mmm::bench::experiment::{run_scenario_in_env, ExperimentConfig, APPROACHES};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::obs::Observer;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;

fn cfg(threads: usize, profile: LatencyProfile, observer: Observer) -> ExperimentConfig {
    ExperimentConfig {
        arch: Architectures::ffnn(6),
        profile,
        ..ExperimentConfig::small(10, 2)
    }
    .with_threads(threads)
    .with_observer(observer)
}

/// Every file under `root`, as relative path → content.
fn dir_contents(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn tracing_changes_no_stored_bytes_and_no_op_accounting() {
    for threads in [1, 4] {
        let mut runs = Vec::new();
        for observer in [Observer::disabled(), Observer::new()] {
            let dir = TempDir::new("it-obs").unwrap();
            let c = cfg(threads, LatencyProfile::zero(), observer.clone());
            let env = ManagementEnv::open(dir.path(), c.profile)
                .unwrap()
                .with_threads(c.threads)
                .with_observer(observer);
            let r = run_scenario_in_env(&c, &env).unwrap();
            runs.push((dir_contents(dir.path()), env.stats(), r));
        }
        let (files_off, stats_off, r_off) = &runs[0];
        let (files_on, stats_on, r_on) = &runs[1];

        assert_eq!(
            stats_off, stats_on,
            "global store-op sums must not depend on tracing ({threads} thread(s))"
        );
        for a in APPROACHES {
            let bytes = |r: &mmm::bench::ScenarioResult| {
                r.row(a).iter().map(|c| c.storage_bytes).collect::<Vec<_>>()
            };
            assert_eq!(bytes(r_off), bytes(r_on), "{a} storage at {threads} thread(s)");
        }
        assert_eq!(
            files_off.keys().collect::<Vec<_>>(),
            files_on.keys().collect::<Vec<_>>(),
            "observed run created/removed files ({threads} thread(s))"
        );
        for (path, bytes) in files_off {
            assert!(
                files_on[path] == *bytes,
                "{path} differs between observed and unobserved run ({threads} thread(s))"
            );
        }
    }
}

#[test]
fn phases_tile_every_op_and_match_reported_sim_times() {
    let observer = Observer::new();
    let dir = TempDir::new("it-obs").unwrap();
    let c = cfg(2, LatencyProfile::by_name("m1").unwrap(), observer.clone());
    let env = ManagementEnv::open(dir.path(), c.profile)
        .unwrap()
        .with_threads(c.threads)
        .with_observer(observer.clone());
    let r = run_scenario_in_env(&c, &env).unwrap();

    let rows = observer.breakdown();
    for a in APPROACHES {
        for (uc, label) in r.use_cases.iter().enumerate() {
            let cell = &r.row(a)[uc];
            for (op, expect) in [("save", cell.tts_sim), ("recover", cell.ttr_sim)] {
                let ctx = format!("{a}/{label}");
                let row = rows
                    .iter()
                    .find(|row| row.ctx == ctx && row.op == op)
                    .unwrap_or_else(|| panic!("no breakdown row for {ctx}/{op}"));
                assert!(expect.as_nanos() > 0, "{ctx}/{op} measured zero sim on m1");
                let phase_sum: u64 = row.phases.iter().map(|p| p.sim_ns).sum();
                assert_eq!(
                    phase_sum + row.other_sim_ns,
                    row.total_sim_ns,
                    "{ctx}/{op}: phases + other must equal the total by construction"
                );
                assert_eq!(row.other_sim_ns, 0, "{ctx}/{op} has unattributed sim time");
                assert_eq!(
                    row.total_sim_ns,
                    expect.as_nanos() as u64,
                    "{ctx}/{op}: breakdown total != measured sim time"
                );
            }
        }
    }
}

#[test]
fn span_traces_are_deterministic_across_runs_and_lanes() {
    // (seq, depth, ctx, name, op index, sim_ns) — everything except
    // wall-clock time and physical lane assignment.
    type Shape = Vec<(usize, usize, String, String, Option<u64>, u64)>;
    let run = || -> Shape {
        let observer = Observer::new();
        let dir = TempDir::new("it-obs").unwrap();
        let c = cfg(4, LatencyProfile::by_name("m1").unwrap(), observer.clone());
        let env = ManagementEnv::open(dir.path(), c.profile)
            .unwrap()
            .with_threads(c.threads)
            .with_observer(observer.clone());
        run_scenario_in_env(&c, &env).unwrap();
        observer
            .trace_jsonl()
            .lines()
            .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
            .filter(|v| v.get("sim_ns").is_some()) // span records, not events
            .map(|v| {
                (
                    v["seq"].as_u64().unwrap() as usize,
                    v["depth"].as_u64().unwrap() as usize,
                    v["ctx"].as_str().unwrap().to_string(),
                    v["name"].as_str().unwrap().to_string(),
                    v["op"].as_u64(),
                    v["sim_ns"].as_u64().unwrap(),
                )
            })
            .collect()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len(), "span counts differ between identical runs");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "trace diverged between identical runs");
    }
}
