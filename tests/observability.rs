//! Observability acceptance tests.
//!
//! Tracing must be a pure read on the system it observes:
//!
//! 1. **Zero interference**: running the full Figure-2 scenario with the
//!    observer enabled stores bit-identical bytes on disk and reports
//!    identical store-op accounting as an unobserved run — for every
//!    approach, at 1 and at 4 worker threads.
//! 2. **Exact phase tiling**: every `save`/`recover` op's named phases
//!    sum to the op's end-to-end simulated time with a zero `other`
//!    residual, and each breakdown total equals the TTS/TTR simulated
//!    time the bench reports for that cell.
//! 3. **Deterministic traces**: two runs of the same seeded scenario
//!    produce the same ordered span sequence with the same simulated
//!    durations, even across parallel worker lanes (only wall-clock
//!    `real_ns` and lane assignment may differ).

use std::collections::BTreeMap;
use std::path::Path;

use mmm::bench::experiment::{run_scenario_in_env, ExperimentConfig, APPROACHES};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::obs::Observer;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;

fn cfg(threads: usize, profile: LatencyProfile, observer: Observer) -> ExperimentConfig {
    ExperimentConfig {
        arch: Architectures::ffnn(6),
        profile,
        ..ExperimentConfig::small(10, 2)
    }
    .with_threads(threads)
    .with_observer(observer)
}

/// Every file under `root`, as relative path → content.
fn dir_contents(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn tracing_changes_no_stored_bytes_and_no_op_accounting() {
    for threads in [1, 4] {
        let mut runs = Vec::new();
        for observer in [Observer::disabled(), Observer::new()] {
            let dir = TempDir::new("it-obs").unwrap();
            let c = cfg(threads, LatencyProfile::zero(), observer.clone());
            let env = ManagementEnv::open(dir.path(), c.profile)
                .unwrap()
                .with_threads(c.threads)
                .with_observer(observer);
            let r = run_scenario_in_env(&c, &env).unwrap();
            runs.push((dir_contents(dir.path()), env.stats(), r));
        }
        let (files_off, stats_off, r_off) = &runs[0];
        let (files_on, stats_on, r_on) = &runs[1];

        assert_eq!(
            stats_off, stats_on,
            "global store-op sums must not depend on tracing ({threads} thread(s))"
        );
        for a in APPROACHES {
            let bytes = |r: &mmm::bench::ScenarioResult| {
                r.row(a).iter().map(|c| c.storage_bytes).collect::<Vec<_>>()
            };
            assert_eq!(bytes(r_off), bytes(r_on), "{a} storage at {threads} thread(s)");
        }
        assert_eq!(
            files_off.keys().collect::<Vec<_>>(),
            files_on.keys().collect::<Vec<_>>(),
            "observed run created/removed files ({threads} thread(s))"
        );
        for (path, bytes) in files_off {
            assert!(
                files_on[path] == *bytes,
                "{path} differs between observed and unobserved run ({threads} thread(s))"
            );
        }
    }
}

#[test]
fn phases_tile_every_op_and_match_reported_sim_times() {
    let observer = Observer::new();
    let dir = TempDir::new("it-obs").unwrap();
    let c = cfg(2, LatencyProfile::by_name("m1").unwrap(), observer.clone());
    let env = ManagementEnv::open(dir.path(), c.profile)
        .unwrap()
        .with_threads(c.threads)
        .with_observer(observer.clone());
    let r = run_scenario_in_env(&c, &env).unwrap();

    let rows = observer.breakdown();
    for a in APPROACHES {
        for (uc, label) in r.use_cases.iter().enumerate() {
            let cell = &r.row(a)[uc];
            for (op, expect) in [("save", cell.tts_sim), ("recover", cell.ttr_sim)] {
                let ctx = format!("{a}/{label}");
                let row = rows
                    .iter()
                    .find(|row| row.ctx == ctx && row.op == op)
                    .unwrap_or_else(|| panic!("no breakdown row for {ctx}/{op}"));
                assert!(expect.as_nanos() > 0, "{ctx}/{op} measured zero sim on m1");
                let phase_sum: u64 = row.phases.iter().map(|p| p.sim_ns).sum();
                assert_eq!(
                    phase_sum + row.other_sim_ns,
                    row.total_sim_ns,
                    "{ctx}/{op}: phases + other must equal the total by construction"
                );
                assert_eq!(row.other_sim_ns, 0, "{ctx}/{op} has unattributed sim time");
                assert_eq!(
                    row.total_sim_ns,
                    expect.as_nanos() as u64,
                    "{ctx}/{op}: breakdown total != measured sim time"
                );
            }
        }
    }
}

#[test]
fn span_traces_are_deterministic_across_runs_and_lanes() {
    // (seq, depth, ctx, name, op index, sim_ns) — everything except
    // wall-clock time and physical lane assignment.
    type Shape = Vec<(usize, usize, String, String, Option<u64>, u64)>;
    let run = || -> Shape {
        let observer = Observer::new();
        let dir = TempDir::new("it-obs").unwrap();
        let c = cfg(4, LatencyProfile::by_name("m1").unwrap(), observer.clone());
        let env = ManagementEnv::open(dir.path(), c.profile)
            .unwrap()
            .with_threads(c.threads)
            .with_observer(observer.clone());
        run_scenario_in_env(&c, &env).unwrap();
        observer
            .trace_jsonl()
            .lines()
            .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
            .filter(|v| v.get("sim_ns").is_some()) // span records, not events
            .map(|v| {
                (
                    v["seq"].as_u64().unwrap() as usize,
                    v["depth"].as_u64().unwrap() as usize,
                    v["ctx"].as_str().unwrap().to_string(),
                    v["name"].as_str().unwrap().to_string(),
                    v["op"].as_u64(),
                    v["sim_ns"].as_u64().unwrap(),
                )
            })
            .collect()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len(), "span counts differ between identical runs");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "trace diverged between identical runs");
    }
}

/// Ordered (seq, depth, ctx, span name, op index, request-id tag,
/// sim_ns) tuples of a fixed single-client fleet workload: save and
/// recover for two tenants through the frontend. Request ids are
/// minted at admission, so a single-client sequence is deterministic.
/// One span as (seq, depth, ctx, name, op-index, tag, sim_ns) — the shape pinned bit-identical.
type SpanShape = (u64, u64, String, String, Option<u64>, String, u64);

fn fleet_trace_shape(threads: usize) -> Vec<SpanShape> {
    use mmm::core::approach::ApproachSpec;
    use mmm::core::fleet::FleetFrontend;

    let observer = Observer::new();
    let dir = TempDir::new("it-obs-fleet").unwrap();
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::by_name("m1").unwrap())
        .threads(threads)
        .observer(observer.clone())
        .open()
        .unwrap();
    let frontend = FleetFrontend::new(&env);
    let set = mmm::workload::Fleet::initial(mmm::workload::FleetConfig {
        n_models: 2,
        seed: 7,
        arch: Architectures::ffnn(4),
    })
    .to_model_set();
    let mut ids = Vec::new();
    for tenant in ["acme", "globex"] {
        let mut saver = ApproachSpec::parse("baseline").unwrap().build();
        ids.push(frontend.save_initial(tenant, saver.as_mut(), &set, None).unwrap());
    }
    for i in 0..4 {
        let tenant = ["acme", "globex"][i % 2];
        let saver = ApproachSpec::parse("baseline").unwrap().build();
        frontend.recover(tenant, saver.as_ref(), &ids[i % 2], None).unwrap();
    }
    drop(frontend);
    observer
        .trace_jsonl()
        .lines()
        .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
        .filter(|v| v.get("sim_ns").is_some())
        .map(|v| {
            (
                v["seq"].as_u64().unwrap(),
                v["depth"].as_u64().unwrap(),
                v["ctx"].as_str().unwrap().to_string(),
                v["name"].as_str().unwrap().to_string(),
                v.get("op").and_then(serde_json::Value::as_u64),
                v.get("tag").and_then(serde_json::Value::as_str).unwrap_or("").to_string(),
                v["sim_ns"].as_u64().unwrap(),
            )
        })
        .collect()
}

#[test]
fn fleet_request_traces_are_bit_identical_across_runs_and_thread_counts() {
    let t1 = fleet_trace_shape(1);
    let t1_again = fleet_trace_shape(1);
    let t4 = fleet_trace_shape(4);
    assert!(!t1.is_empty());
    assert_eq!(t1, t1_again, "fixed-seed fleet trace diverged between runs");
    assert_eq!(t1, t4, "fleet trace ordering depends on worker thread count");
    // The workload's request ids appear as root-span tags in admission
    // order: each tenant's sequence counts up independently.
    let tags: Vec<&str> =
        t1.iter().filter(|r| !r.5.is_empty() && r.5.starts_with("rq-")).map(|r| r.5.as_str()).collect();
    assert!(tags.contains(&"rq-acme-1"), "{tags:?}");
    assert!(tags.contains(&"rq-globex-1"), "{tags:?}");
    assert!(tags.contains(&"rq-acme-3"), "{tags:?}");
}

#[test]
fn chaos_observed_tiles_requests_and_attributes_commit_batches() {
    use mmm::workload::chaos::{run_chaos_observed, ChaosConfig};

    let observer = Observer::new();
    let dir = TempDir::new("it-obs-chaos").unwrap();
    let config = ChaosConfig {
        threads: 2,
        rounds: 3,
        commit_window: std::time::Duration::from_millis(2),
        ..ChaosConfig::default()
    };
    let report = run_chaos_observed(dir.path(), &config, &observer).unwrap();
    assert!(report.passed(), "chaos violations: {:?}", report.violations);

    // Per-request phase spans tile each request's end-to-end simulated
    // time with exactly-zero residual.
    let rows = observer.breakdown();
    let mut request_rows = 0;
    for row in &rows {
        if !row.ctx.starts_with("chaos/") || (row.op != "save" && row.op != "recover") {
            continue;
        }
        request_rows += 1;
        let phase_sum: u64 = row.phases.iter().map(|p| p.sim_ns).sum();
        assert_eq!(phase_sum, row.total_sim_ns, "{}/{} phases must tile", row.ctx, row.op);
        assert_eq!(row.other_sim_ns, 0, "{}/{} has unattributed sim time", row.ctx, row.op);
    }
    assert!(request_rows > 0, "chaos run produced no request breakdown rows");

    // Every group-commit batch span lists the coalesced request ids.
    let spans = mmm::obs::parse_trace_jsonl(&observer.trace_jsonl()).unwrap();
    let mut tagged_commits = 0;
    for s in spans.iter().filter(|s| s.name == "commit") {
        if let Some(tag) = &s.tag {
            tagged_commits += 1;
            for rid in tag.split(',') {
                assert!(rid.starts_with("rq-"), "commit span carries non-request tag {tag:?}");
            }
        }
    }
    assert!(tagged_commits > 0, "no commit spans carried request-id tags");

    // Per-tenant SLO accounting: every request classified exactly once,
    // with stale serves netted against their rescued failures.
    let slos = mmm::obs::tenant_slos(observer.metrics().unwrap(), 0.999);
    assert!(!slos.is_empty(), "chaos recorded no tenant SLO rows");
    let mut requests = 0;
    for s in &slos {
        assert!(s.requests > 0, "{} has zero requests", s.tenant);
        assert_eq!(
            s.ok + s.shed + s.deadline_exceeded + s.unavailable + s.failed,
            s.requests + s.stale_serves,
            "{}: outcomes must classify each request exactly once (stale adds ok on top)",
            s.tenant
        );
        requests += s.requests;
    }
    assert_eq!(requests, report.requests, "SLO rows must cover every frontend request");
}
