//! Version-graph torture suite: branching, diffing, and merging model
//! sets, proven against an in-memory oracle under seeded randomness,
//! property-based mutation patterns, and crash injection.
//!
//! Four layers of assurance:
//!
//! 1. A seeded graph walker drives 200+ fork/save/diff/merge/delete
//!    operations across several independent version graphs, mirroring
//!    every store mutation into an in-memory oracle, and requires
//!    recover-at-any-node bit-identity plus a clean CAS audit (refcount
//!    conservation) at the end.
//! 2. proptest laws: disjoint mutations always merge cleanly applying
//!    both sides; overlapping divergent mutations always conflict and
//!    write nothing; `diff` is empty on identical sets and reports
//!    exactly the changed layers after a merge.
//! 3. Crash-at-every-write-op loops for `fork`, `merge`, and
//!    `delete_branch`: wherever the process dies, the parent (and both
//!    merge inputs) stay bit-identical, the branch is either fully
//!    present or cleanly absent, and fsck repairs to clean.
//! 4. Concurrent forks through a commit window coalesce into group
//!    commits.
//!
//! Every seed is fixed. Each torture run also drops a JSON op-log into
//! `target/branching-corpus/` so CI can attach the exact operation
//! sequence to a failure.

use std::collections::{BTreeSet, HashMap};

use mmm::core::branch::{self, Branch};
use mmm::core::approach::{ModelSetSaver, UpdateSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{Derivation, ModelSet, ModelSetId};
use mmm::core::{catalog, fsck, lineage};
use mmm::dnn::{Architectures, TrainConfig};
use mmm::store::{FaultInjector, FaultPlan, FaultTarget, LatencyProfile, StorageBackend};
use mmm::util::rng::{Rng, Xoshiro256pp};
use mmm::util::{Error, TempDir};
use proptest::prelude::*;

const N_LAYERS: usize = 4; // FFNN architectures carry 4 parametric layers

fn threads() -> usize {
    std::env::var("MMM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn open(dir: &std::path::Path, backend: StorageBackend) -> ManagementEnv {
    ManagementEnv::builder(dir, LatencyProfile::zero())
        .backend(backend)
        .threads(threads())
        .open()
        .unwrap()
}

fn make_set(n: usize, seed: u64) -> ModelSet {
    let arch = Architectures::ffnn(6);
    let models = (0..n).map(|i| arch.build(seed + i as u64).export_param_dict()).collect();
    ModelSet::new(arch, models)
}

fn deriv(base: &ModelSetId) -> Derivation {
    Derivation { base: base.clone(), train: TrainConfig::regression_default(0), updates: vec![] }
}

fn update_id(key: &str) -> ModelSetId {
    ModelSetId { approach: "update".into(), key: key.into() }
}

/// Layers on which two sets differ, as (model, layer) pairs — the
/// oracle's answer that `branch::diff` must reproduce.
fn changed_layers(a: &ModelSet, b: &ModelSet) -> BTreeSet<(usize, usize)> {
    let mut out = BTreeSet::new();
    for mi in 0..a.models.len() {
        for li in 0..a.models[mi].layers.len() {
            if a.models[mi].layers[li].data != b.models[mi].layers[li].data {
                out.insert((mi, li));
            }
        }
    }
    out
}

fn write_corpus(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/branching-corpus");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(name), serde_json::to_string(value).unwrap());
}

// ---------------------------------------------------------------------
// 1. The seeded graph walker.

/// One torture graph: a root set plus a growing population of branches,
/// every committed node mirrored into `oracle` (key → full content).
struct Walker<'a> {
    env: &'a ManagementEnv,
    saver: UpdateSaver,
    rng: Xoshiro256pp,
    oracle: HashMap<String, ModelSet>,
    branches: Vec<String>,
    next_name: usize,
    log: Vec<String>,
    merges: usize,
    conflicts: usize,
}

impl<'a> Walker<'a> {
    fn new(env: &'a ManagementEnv, seed: u64) -> Self {
        let mut saver = UpdateSaver::new();
        let root_set = make_set(4, seed);
        let root = saver.save_initial(env, &root_set).unwrap();
        let b = branch::fork(env, &root, 0, "b0").unwrap();
        let mut oracle = HashMap::new();
        oracle.insert(root.key.clone(), root_set.clone());
        oracle.insert(b.head.key.clone(), root_set);
        Walker {
            env,
            saver,
            rng: Xoshiro256pp::new(seed),
            oracle,
            branches: vec!["b0".into()],
            next_name: 1,
            log: vec![format!("root={} b0={}", root.key, b.head.key)],
            merges: 0,
            conflicts: 0,
        }
    }

    fn pick_key(&mut self) -> String {
        let mut keys: Vec<String> = self.oracle.keys().cloned().collect();
        keys.sort(); // HashMap order is not deterministic; the walk must be
        keys.swap_remove(self.rng.below(keys.len() as u64) as usize)
    }

    fn pick_branch(&mut self) -> Branch {
        let i = self.rng.below(self.branches.len() as u64) as usize;
        branch::branch_by_name(self.env, &self.branches[i].clone()).unwrap()
    }

    fn mutate(&mut self, set: &mut ModelSet) -> (usize, usize) {
        let mi = self.rng.below(set.models.len() as u64) as usize;
        let li = self.rng.below(N_LAYERS as u64) as usize;
        let layer = &mut set.models[mi].layers[li];
        let pos = self.rng.below(layer.data.len() as u64) as usize;
        layer.data[pos] += 1.0 + self.rng.next_f32();
        (mi, li)
    }

    fn step(&mut self) {
        match self.rng.below(100) {
            // Save a new node on a random branch and fast-forward it.
            0..=39 => {
                let b = self.pick_branch();
                let mut set = self.oracle[&b.head.key].clone();
                let (mi, li) = self.mutate(&mut set);
                let id = self.saver.save_set(self.env, &set, Some(&deriv(&b.head))).unwrap();
                branch::advance(self.env, &b.name, &id).unwrap();
                self.log.push(format!("save {}:{} m{mi}l{li} -> {}", b.name, b.head.key, id.key));
                self.oracle.insert(id.key, set);
            }
            // Fork a new branch a random distance behind some head.
            40..=59 => {
                let b = self.pick_branch();
                let depth = lineage::lineage(self.env, &b.head).unwrap().len() - 1;
                let back = self.rng.below(depth.min(2) as u64 + 1) as usize;
                let name = format!("b{}", self.next_name);
                self.next_name += 1;
                let nb = branch::fork(self.env, &b.head, back, &name).unwrap();
                self.log.push(format!("fork {} at {}~{back} -> {}", name, b.head.key, nb.head.key));
                let root_content = self.oracle[&nb.root].clone();
                self.oracle.insert(nb.head.key.clone(), root_content);
                self.branches.push(name);
            }
            // Structural diff of two random nodes, checked per layer.
            60..=74 => {
                let (ka, kb) = (self.pick_key(), self.pick_key());
                let d = branch::diff(self.env, &update_id(&ka), &update_id(&kb)).unwrap();
                let got: BTreeSet<(usize, usize)> =
                    d.changed.iter().map(|c| (c.model, c.layer)).collect();
                let want = changed_layers(&self.oracle[&ka], &self.oracle[&kb]);
                self.log.push(format!("diff {ka} {kb}: {} changed", got.len()));
                assert_eq!(got, want, "diff({ka},{kb}) disagrees with the oracle");
                assert_eq!(d.is_empty(), want.is_empty());
            }
            // Three-way merge of random nodes, outcome checked layerwise.
            75..=94 => {
                let (kb, ko, kt) = (self.pick_key(), self.pick_key(), self.pick_key());
                let (b, o, t) =
                    (&self.oracle[&kb], &self.oracle[&ko], &self.oracle[&kt]);
                // The oracle's prediction of the three-way resolution.
                let mut want_conflicts = BTreeSet::new();
                let mut expect = o.clone();
                for mi in 0..b.models.len() {
                    for li in 0..N_LAYERS {
                        let (lb, lo, lt) = (
                            &b.models[mi].layers[li].data,
                            &o.models[mi].layers[li].data,
                            &t.models[mi].layers[li].data,
                        );
                        if lo == lt {
                            continue;
                        } else if lo == lb {
                            expect.models[mi].layers[li].data = lt.clone();
                        } else if lt != lb {
                            want_conflicts.insert((mi, li));
                        }
                    }
                }
                let out = branch::merge(self.env, &update_id(&kb), &update_id(&ko), &update_id(&kt))
                    .unwrap();
                let got_conflicts: BTreeSet<(usize, usize)> =
                    out.conflicts.iter().map(|c| (c.model, c.layer)).collect();
                self.log.push(format!(
                    "merge base={kb} ours={ko} theirs={kt}: {} conflicts",
                    got_conflicts.len()
                ));
                assert_eq!(got_conflicts, want_conflicts, "merge({kb},{ko},{kt}) conflicts");
                match out.merged {
                    Some(id) => {
                        assert!(want_conflicts.is_empty());
                        self.merges += 1;
                        self.oracle.insert(id.key, expect);
                    }
                    None => {
                        assert!(!want_conflicts.is_empty());
                        self.conflicts += 1;
                    }
                }
            }
            // Delete a branch (never the last), then resync the oracle
            // with what actually survived the dependency checks.
            _ => {
                if self.branches.len() < 2 {
                    return;
                }
                let i = self.rng.below(self.branches.len() as u64) as usize;
                let name = self.branches.remove(i);
                let r = branch::delete_branch(self.env, &name).unwrap();
                self.log.push(format!("delete {name}: {} sets", r.sets_deleted));
                let alive: BTreeSet<String> = catalog::list_sets(self.env)
                    .unwrap()
                    .into_iter()
                    .filter(|s| s.id.approach == "update")
                    .map(|s| s.id.key)
                    .collect();
                self.oracle.retain(|k, _| alive.contains(k));
            }
        }
    }
}

#[test]
fn two_hundred_graph_operations_recover_bit_identically_at_every_node() {
    const GRAPHS: u64 = 8;
    const OPS: usize = 26;
    assert!(GRAPHS as usize * OPS >= 200, "acceptance floor: 200+ graph iterations");

    let mut total_merges = 0;
    let mut total_conflicts = 0;
    for g in 0..GRAPHS {
        let seed = 0xB4A9_0000 + g;
        let corpus = format!("graph-{seed:x}.json");
        let dir = TempDir::new("it-branch-graph").unwrap();
        let env = open(dir.path(), StorageBackend::Cas);
        let mut w = Walker::new(&env, seed);
        for op in 0..OPS {
            w.step();
            // Persist the op-log before the next step so a panic still
            // leaves the full replayable sequence on disk for CI.
            write_corpus(
                &corpus,
                &serde_json::json!({ "seed": seed, "ops_run": op + 1, "log": w.log }),
            );
        }

        // Recover-at-any-node: every committed node in the graph must
        // reproduce the oracle's bytes exactly.
        assert!(!w.oracle.is_empty());
        let mut keys: Vec<String> = w.oracle.keys().cloned().collect();
        keys.sort();
        for key in &keys {
            let got = w.saver.recover_set(&env, &update_id(key)).unwrap();
            assert_eq!(&got, &w.oracle[key], "graph {g}: node {key} diverged from the oracle");
        }
        // Every surviving branch head is a committed, recoverable node.
        for b in branch::branches(&env).unwrap() {
            assert!(w.oracle.contains_key(&b.head.key), "head {} not in oracle", b.head.key);
        }
        total_merges += w.merges;
        total_conflicts += w.conflicts;

        // CAS refcount conservation: after all the deletions the chunk
        // store must balance — no drift, no corrupt or missing chunks,
        // and reclaiming crash-leaked orphans converges to fully clean.
        let cas = env.blobs().cas().expect("cas backend");
        let audit = cas.audit().unwrap();
        assert!(audit.corrupt_chunks.is_empty(), "graph {g}: {:?}", audit.corrupt_chunks);
        assert!(audit.missing_chunks.is_empty(), "graph {g}: {:?}", audit.missing_chunks);
        assert_eq!(audit.refcount_drift, 0, "graph {g}: refcount drift");
        cas.reclaim_orphans().unwrap();
        assert!(cas.audit().unwrap().is_clean(), "graph {g}: audit after reclaim");

        // And the environment itself is structurally sound.
        assert!(fsck::fsck(&env).unwrap().is_clean(), "graph {g}: fsck");
    }
    // The walk must actually have exercised both merge outcomes.
    assert!(total_merges > 0, "no clean merge in {} ops", GRAPHS as usize * OPS);
    assert!(total_conflicts > 0, "no conflicting merge in {} ops", GRAPHS as usize * OPS);
}

// ---------------------------------------------------------------------
// 2. Property-based diff/merge laws.

/// A mutation: for each entry, add `delta` at a deterministic position
/// of (model, layer).
type Mutation = Vec<(usize, usize, f32)>;

fn apply(set: &ModelSet, mutation: &Mutation) -> ModelSet {
    let mut s = set.clone();
    for &(mi, li, delta) in mutation {
        let layer = &mut s.models[mi].layers[li];
        let pos = (mi * 31 + li * 7) % layer.data.len();
        layer.data[pos] += delta;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Mutations on disjoint models always merge cleanly, and the merge
    /// applies both sides: diff(base, merged) is exactly the union of
    /// the two sides' changed layers (the diff∘merge round-trip law).
    #[test]
    fn disjoint_mutations_merge_cleanly_applying_both_sides(
        ours_mut in proptest::collection::vec((0..3usize, 0..N_LAYERS, 0.5f32..2.0), 1..6),
        theirs_mut in proptest::collection::vec((3..6usize, 0..N_LAYERS, 0.5f32..2.0), 1..6),
    ) {
        let dir = TempDir::new("prop-branch-merge").unwrap();
        let env = open(dir.path(), StorageBackend::Cas);
        let mut saver = UpdateSaver::new();
        let base_set = make_set(6, 77);
        let base = saver.save_initial(&env, &base_set).unwrap();

        let ours_set = apply(&base_set, &ours_mut);
        let ours = saver.save_set(&env, &ours_set, Some(&deriv(&base))).unwrap();
        let theirs_set = apply(&base_set, &theirs_mut);
        let theirs = saver.save_set(&env, &theirs_set, Some(&deriv(&base))).unwrap();

        let out = branch::merge(&env, &base, &ours, &theirs).unwrap();
        prop_assert!(out.is_clean(), "disjoint sides conflicted: {:?}", out.conflicts);
        let merged = out.merged.expect("clean merge yields a set");
        let got = saver.recover_set(&env, &merged).unwrap();

        // Oracle: both sides applied to base.
        let mut want = ours_set.clone();
        for (mi, li) in changed_layers(&base_set, &theirs_set) {
            want.models[mi].layers[li].data = theirs_set.models[mi].layers[li].data.clone();
        }
        prop_assert_eq!(&got, &want);

        // Round-trip law: the merge's distance from base is the union
        // of the two sides' distances.
        let d = branch::diff(&env, &base, &merged).unwrap();
        let got_changed: BTreeSet<(usize, usize)> =
            d.changed.iter().map(|c| (c.model, c.layer)).collect();
        let mut union = changed_layers(&base_set, &ours_set);
        union.extend(changed_layers(&base_set, &theirs_set));
        prop_assert_eq!(got_changed, union);
    }

    /// Divergent mutations of the same layer always conflict, and a
    /// conflicting merge writes nothing at all.
    #[test]
    fn overlapping_divergent_mutations_always_conflict_and_write_nothing(
        mi in 0..4usize,
        li in 0..N_LAYERS,
        ours_delta in 0.5f32..2.0,
        theirs_delta in -2.0f32..-0.5,
    ) {
        let dir = TempDir::new("prop-branch-conflict").unwrap();
        let env = open(dir.path(), StorageBackend::Cas);
        let mut saver = UpdateSaver::new();
        let base_set = make_set(4, 78);
        let base = saver.save_initial(&env, &base_set).unwrap();
        let ours = saver
            .save_set(&env, &apply(&base_set, &vec![(mi, li, ours_delta)]), Some(&deriv(&base)))
            .unwrap();
        let theirs = saver
            .save_set(&env, &apply(&base_set, &vec![(mi, li, theirs_delta)]), Some(&deriv(&base)))
            .unwrap();

        let docs_before = env.docs().count("model_sets");
        let out = branch::merge(&env, &base, &ours, &theirs).unwrap();
        prop_assert!(!out.is_clean());
        prop_assert!(out.merged.is_none());
        prop_assert!(out.conflicts.iter().any(|c| c.model == mi && c.layer == li));
        prop_assert_eq!(env.docs().count("model_sets"), docs_before, "conflict must not write");
    }

    /// diff(x, x) is empty for any mutated node.
    #[test]
    fn diff_of_any_node_with_itself_is_empty(
        mutation in proptest::collection::vec((0..4usize, 0..N_LAYERS, -2.0f32..2.0), 0..6),
    ) {
        let dir = TempDir::new("prop-branch-diff").unwrap();
        let env = open(dir.path(), StorageBackend::Cas);
        let mut saver = UpdateSaver::new();
        let base_set = make_set(4, 79);
        let base = saver.save_initial(&env, &base_set).unwrap();
        let id = saver.save_set(&env, &apply(&base_set, &mutation), Some(&deriv(&base))).unwrap();
        let d = branch::diff(&env, &id, &id).unwrap();
        prop_assert!(d.is_empty(), "diff(x,x) = {:?}", d.changed);
    }
}

// ---------------------------------------------------------------------
// 3. Crash injection: fork, merge, and branch deletion.

/// More write ops than any branch operation issues.
const MAX_FAULT_POINTS: u64 = 64;

struct CrashRig {
    dir: TempDir,
    faults: FaultInjector,
    env: ManagementEnv,
    base: ModelSetId,
    base_set: ModelSet,
}

fn crash_rig(seed: u64) -> CrashRig {
    let dir = TempDir::new("it-branch-crash").unwrap();
    let faults = FaultInjector::new();
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
        .backend(StorageBackend::Cas)
        .faults(faults.clone())
        .open()
        .unwrap();
    let base_set = make_set(4, seed);
    let base = UpdateSaver::new().save_initial(&env, &base_set).unwrap();
    CrashRig { dir, faults, env, base, base_set }
}

/// Reopen the rig's directory as a fresh fault-free process and run the
/// full recovery story: fsck classifies damage as branch-op debris only,
/// the parent set is bit-identical, and repair converges to clean.
fn verify_crash_recovery(dir: &TempDir, base: &ModelSetId, base_set: &ModelSet, ctx: &str) -> ManagementEnv {
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let report = fsck::fsck(&env).unwrap();
    for d in &report.damage {
        assert!(
            matches!(
                d,
                fsck::Damage::UncommittedSave { .. }
                    | fsck::Damage::OrphanBranch { .. }
                    | fsck::Damage::OrphanChunk { .. }
            ),
            "{ctx}: unexpected damage class: {}",
            d.describe()
        );
    }
    let saver = UpdateSaver::new();
    assert_eq!(&saver.recover_set(&env, base).unwrap(), base_set, "{ctx}: parent");

    // Repair converges (quarantining a node can expose a descendant).
    let mut passes = 0;
    let mut scan = report;
    while !scan.is_clean() {
        fsck::repair(&env, &scan).unwrap();
        scan = fsck::fsck(&env).unwrap();
        passes += 1;
        assert!(passes < 5, "{ctx}: repair did not converge: {:?}", scan.damage);
    }
    assert_eq!(&saver.recover_set(&env, base).unwrap(), base_set, "{ctx}: parent after repair");
    env
}

#[test]
fn a_crash_at_every_write_op_during_fork_leaves_parent_and_child_sane() {
    let mut survived = false;
    for k in 0..MAX_FAULT_POINTS {
        let CrashRig { dir, faults, env, base, base_set } = crash_rig(11);
        faults.arm(FaultPlan::crash_at(FaultTarget::Writes, k));
        let result = branch::fork(&env, &base, 0, "crashy");
        faults.disarm_all();

        if let Ok(b) = result {
            assert!(k >= 3, "fork with only {k} write op(s)");
            assert_eq!(UpdateSaver::new().recover_set(&env, &b.head).unwrap(), base_set);
            assert!(fsck::fsck(&env).unwrap().is_clean());
            survived = true;
            break;
        }

        drop(env);
        let ctx = format!("fork crash at write op #{k}");
        let env = verify_crash_recovery(&dir, &base, &base_set, &ctx);

        // The branch is fully usable or cleanly absent — never a head
        // pointing into the void.
        match branch::branch_by_name(&env, "crashy") {
            Ok(b) => {
                let got = UpdateSaver::new().recover_set(&env, &b.head).unwrap();
                assert_eq!(got, base_set, "{ctx}: surviving branch head");
            }
            Err(Error::NotFound(_)) => {}
            Err(e) => panic!("{ctx}: branch lookup: {e}"),
        }
    }
    assert!(survived, "fork never completed within {MAX_FAULT_POINTS} write ops");
}

#[test]
fn a_crash_at_every_write_op_during_merge_leaves_all_inputs_sane() {
    let mut survived = false;
    for k in 0..MAX_FAULT_POINTS {
        let CrashRig { dir, faults, env, base, base_set } = crash_rig(12);
        let mut saver = UpdateSaver::new();
        let ours_set = apply(&base_set, &vec![(0, 0, 1.5)]);
        let ours = saver.save_set(&env, &ours_set, Some(&deriv(&base))).unwrap();
        let theirs_set = apply(&base_set, &vec![(3, 2, -1.5)]);
        let theirs = saver.save_set(&env, &theirs_set, Some(&deriv(&base))).unwrap();
        let mut merged_want = ours_set.clone();
        merged_want.models[3].layers[2].data = theirs_set.models[3].layers[2].data.clone();

        faults.arm(FaultPlan::crash_at(FaultTarget::Writes, k));
        let result = branch::merge(&env, &base, &ours, &theirs);
        faults.disarm_all();

        if let Ok(out) = result {
            let got = saver.recover_set(&env, &out.merged.unwrap()).unwrap();
            assert_eq!(got, merged_want, "clean merge content");
            assert!(fsck::fsck(&env).unwrap().is_clean());
            survived = true;
            break;
        }

        drop(env);
        let ctx = format!("merge crash at write op #{k}");
        let env = verify_crash_recovery(&dir, &base, &base_set, &ctx);
        let saver = UpdateSaver::new();
        assert_eq!(saver.recover_set(&env, &ours).unwrap(), ours_set, "{ctx}: ours");
        assert_eq!(saver.recover_set(&env, &theirs).unwrap(), theirs_set, "{ctx}: theirs");
    }
    assert!(survived, "merge never completed within {MAX_FAULT_POINTS} write ops");
}

#[test]
fn branch_deletion_crashed_at_every_write_op_replays_to_completion() {
    // Satellite: refcount decrements stay idempotent when a deletion is
    // cut down mid-flight and replayed — wherever the first attempt
    // died, the replay finishes the job, the parent survives, and the
    // CAS chunk store balances (no double decrement, no leak).
    let mut survived_without_fault = false;
    for k in 0..MAX_FAULT_POINTS {
        let CrashRig { dir: _dir, faults, env, base, base_set } = crash_rig(13);
        let mut saver = UpdateSaver::new();
        let b = branch::fork(&env, &base, 0, "doomed").unwrap();
        let mut node = self::apply(&base_set, &vec![(1, 1, 2.0)]);
        let id = saver.save_set(&env, &node, Some(&deriv(&b.head))).unwrap();
        branch::advance(&env, "doomed", &id).unwrap();
        node.models[2].layers[3].data[0] += 1.0;
        let id2 = saver.save_set(&env, &node, Some(&deriv(&id))).unwrap();
        branch::advance(&env, "doomed", &id2).unwrap();

        faults.arm(FaultPlan::crash_at(FaultTarget::Writes, k));
        let first = branch::delete_branch(&env, "doomed");
        faults.disarm_all();
        if first.is_ok() {
            survived_without_fault = true;
        }

        // Replay until done (idempotent: repeating completed steps is
        // harmless, and a replay after success is a clean no-op).
        let replay = branch::delete_branch(&env, "doomed").unwrap();
        assert!(replay.stopped_on_dependent.is_none(), "write op #{k}: {replay:?}");
        let third = branch::delete_branch(&env, "doomed").unwrap();
        assert_eq!(third.sets_deleted, 0, "write op #{k}: replay after done must be a no-op");

        assert!(
            matches!(branch::branch_by_name(&env, "doomed"), Err(Error::NotFound(_))),
            "write op #{k}: branch must be gone"
        );
        assert_eq!(saver.recover_set(&env, &base).unwrap(), base_set, "write op #{k}: parent");

        // Refcount conservation. A double decrement would have deleted
        // a chunk the parent's manifest still references — that is what
        // `missing_chunks` detects, and it must never happen. Index
        // drift from the interrupted op itself is legitimate crash
        // debris: the audit resyncs it, reclaim sweeps leaked chunks,
        // and the store must then be exactly balanced.
        let cas = env.blobs().cas().unwrap();
        let audit = cas.audit().unwrap();
        assert!(audit.missing_chunks.is_empty(), "write op #{k}: {:?}", audit.missing_chunks);
        assert!(audit.corrupt_chunks.is_empty(), "write op #{k}: {:?}", audit.corrupt_chunks);
        cas.reclaim_orphans().unwrap();
        let settled = cas.audit().unwrap();
        assert!(settled.is_clean(), "write op #{k}: audit after resync+reclaim: drift {}, orphans {:?}",
            settled.refcount_drift, settled.orphan_chunks);

        let report = fsck::fsck(&env).unwrap();
        if !report.is_clean() {
            fsck::repair(&env, &report).unwrap();
            assert!(fsck::fsck(&env).unwrap().is_clean(), "write op #{k}: fsck");
        }
        if survived_without_fault {
            break;
        }
    }
    assert!(survived_without_fault, "deletion never completed within {MAX_FAULT_POINTS} ops");
}

// ---------------------------------------------------------------------
// 4. Group commit: concurrent forks coalesce.

#[test]
fn concurrent_forks_coalesce_into_group_commits() {
    const FORKS: usize = 8;
    let dir = TempDir::new("it-branch-gate").unwrap();
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
        .backend(StorageBackend::Cas)
        .commit_window(std::time::Duration::from_millis(2))
        .open()
        .unwrap();
    let base_set = make_set(4, 14);
    let base = UpdateSaver::new().save_initial(&env, &base_set).unwrap();

    std::thread::scope(|s| {
        for i in 0..FORKS {
            let env = &env;
            let base = &base;
            s.spawn(move || branch::fork(env, base, 0, &format!("t{i}")).unwrap());
        }
    });

    assert_eq!(branch::branches(&env).unwrap().len(), FORKS);
    let saver = UpdateSaver::new();
    for b in branch::branches(&env).unwrap() {
        assert_eq!(saver.recover_set(&env, &b.head).unwrap(), base_set, "branch {}", b.name);
    }
    // Each fork commits a set and a branch head; through the window
    // those commits must have coalesced into fewer record batches.
    let stats = env.commit_gate().stats();
    assert!(stats.members > 2 * FORKS as u64, "all commits gated: {stats:?}");
    assert!(
        stats.batches < stats.members,
        "no coalescing under a 2ms window: {stats:?}"
    );
    assert!(fsck::fsck(&env).unwrap().is_clean());
}

// ---------------------------------------------------------------------
// 5. Fork cost: O(metadata), measured.

#[test]
fn fork_writes_metadata_not_parameters() {
    let mut rows = Vec::new();
    for n_models in [4usize, 16] {
        for backend in [StorageBackend::Plain, StorageBackend::Cas] {
            let dir = TempDir::new("it-branch-cost").unwrap();
            let env = open(dir.path(), backend);
            // Realistic parameter volume (paper-scale FFNN), so the
            // metadata/parameter ratio is meaningful.
            let arch = Architectures::ffnn(48);
            let models =
                (0..n_models).map(|i| arch.build(15 + i as u64).export_param_dict()).collect();
            let set = ModelSet::new(arch, models);
            let mut saver = UpdateSaver::new();
            let (base, full) = env.measure(|| saver.save_initial(&env, &set).unwrap());
            let (_b, fork) = env.measure(|| branch::fork(&env, &base, 0, "cost").unwrap());
            rows.push(serde_json::json!({
                "n_models": n_models,
                "backend": backend.name(),
                "full_save_bytes": full.bytes_written(),
                "fork_bytes": fork.bytes_written(),
            }));
            println!(
                "fork-cost n_models={n_models} backend={} full_save={}B fork={}B",
                backend.name(),
                full.bytes_written(),
                fork.bytes_written()
            );
            // The tentpole acceptance: a fork never rewrites parameters.
            assert!(
                fork.bytes_written() * 10 < full.bytes_written(),
                "fork must be O(metadata): fork {}B vs full {}B on {}",
                fork.bytes_written(),
                full.bytes_written(),
                backend.name()
            );
        }
    }
    write_corpus("fork-cost.json", &serde_json::json!({ "rows": rows }));
}
