//! Acceptance tests for the content-addressed (CAS) storage backend:
//! bit-identical recovery against the plain backend for every approach,
//! dedup savings for the Update approach, warm-cache recovery speedups,
//! crash-injected saves that fsck can always repair, and orphan-chunk
//! detection/reclamation.

use mmm::core::approach::{ApproachKind, ApproachSpec};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{ModelSet, ModelSetId};
use mmm::core::{catalog, fsck, gc, lineage};
use mmm::dnn::Architectures;
use mmm::store::{FaultInjector, FaultPlan, FaultTarget, LatencyProfile, StorageBackend};
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const N: usize = 4;
const SEED: u64 = 7;
const CYCLES: usize = 2;
/// More write ops than any approach's save issues under CAS (chunk
/// writes plus manifests plus documents).
const MAX_FAULT_POINTS: u64 = 96;

fn policy() -> UpdatePolicy {
    UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.5)
}

fn open(dir: &std::path::Path, backend: StorageBackend, threads: usize) -> ManagementEnv {
    ManagementEnv::builder(dir, LatencyProfile::zero())
        .backend(backend)
        .threads(threads)
        .open()
        .unwrap()
}

/// Save an initial fleet plus `CYCLES` trained update cycles with one
/// approach. Deterministic in `SEED`, so two environments fed the same
/// spec see byte-identical model sets.
fn run_history(env: &ManagementEnv, spec: &str) -> (Vec<ModelSetId>, Vec<ModelSet>) {
    let mut fleet =
        Fleet::initial(FleetConfig { n_models: N, seed: SEED, arch: Architectures::ffnn(6) });
    let mut saver = ApproachSpec::parse(spec).unwrap().build();
    let mut sets = vec![fleet.to_model_set()];
    let mut ids = vec![saver.save_initial(env, &sets[0]).unwrap()];
    for _ in 0..CYCLES {
        let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
        let set = fleet.to_model_set();
        let deriv = record.derivation(ids.last().unwrap().clone());
        ids.push(saver.save_set(env, &set, Some(&deriv)).unwrap());
        sets.push(set);
    }
    (ids, sets)
}

#[test]
fn cas_recovery_is_bit_identical_to_plain_for_every_approach() {
    for threads in [1usize, 4] {
        for kind in ApproachKind::ALL {
            let spec = kind.name();
            let plain_dir = TempDir::new("it-cas-plain").unwrap();
            let cas_dir = TempDir::new("it-cas-dedup").unwrap();
            let plain = open(plain_dir.path(), StorageBackend::Plain, threads);
            let cas = open(cas_dir.path(), StorageBackend::Cas, threads);

            let (ids_p, sets) = run_history(&plain, spec);
            let (ids_c, sets_c) = run_history(&cas, spec);
            assert_eq!(sets, sets_c, "{spec} t{threads}: the workload is deterministic");

            let saver = ApproachSpec::parse(spec).unwrap().build();
            for (i, (id_p, id_c)) in ids_p.iter().zip(&ids_c).enumerate() {
                let ctx = format!("{spec} t{threads} set {i}");
                // Full recovery (for Update this walks the diff chain).
                assert_eq!(saver.recover_set(&plain, id_p).unwrap(), sets[i], "{ctx}: plain");
                assert_eq!(saver.recover_set(&cas, id_c).unwrap(), sets[i], "{ctx}: cas");
                // Selective recovery of a subset of models.
                let picked = [0usize, N - 1];
                let m_p = saver.recover_models(&plain, id_p, &picked).unwrap();
                let m_c = saver.recover_models(&cas, id_c, &picked).unwrap();
                assert_eq!(m_p, m_c, "{ctx}: selective recovery");
                // The recovery chain has the same shape on both backends.
                assert_eq!(
                    lineage::recovery_depth(&plain, id_p).unwrap(),
                    lineage::recovery_depth(&cas, id_c).unwrap(),
                    "{ctx}: chain depth"
                );
            }
        }
    }
}

#[test]
fn update_under_cas_charges_strictly_fewer_stored_bytes_than_plain() {
    // Chain-bounded Update (periodic full snapshots) is where layer
    // dedup pays: every snapshot re-stores the whole fleet, but the
    // unchanged models' layer chunks dedup against the previous
    // snapshot instead of being billed again.
    let charged = |backend: StorageBackend| {
        let dir = TempDir::new("it-cas-bytes").unwrap();
        let env = open(dir.path(), backend, 1);
        let mut fleet = Fleet::initial(FleetConfig {
            n_models: N,
            seed: SEED,
            arch: Architectures::ffnn48(),
        });
        let mut saver = ApproachSpec::parse("update:snapshot-every=2").unwrap().build();
        let mut id = saver.save_initial(&env, &fleet.to_model_set()).unwrap();
        for _ in 0..4 {
            let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
            let deriv = record.derivation(id.clone());
            id = saver.save_set(&env, &fleet.to_model_set(), Some(&deriv)).unwrap();
        }
        let dedup_bytes = env.blobs().cas().map(|c| c.counters().dedup_bytes).unwrap_or(0);
        (env.stats().bytes_written, dedup_bytes)
    };
    let (plain_bytes, _) = charged(StorageBackend::Plain);
    let (cas_bytes, dedup_bytes) = charged(StorageBackend::Cas);
    assert!(dedup_bytes > 0, "unchanged layers must dedup across snapshots");
    assert!(
        cas_bytes < plain_bytes,
        "cas must charge fewer stored bytes than plain ({cas_bytes} vs {plain_bytes})"
    );
}

#[test]
fn recovery_cache_serves_warm_reads_with_less_simulated_latency() {
    let dir = TempDir::new("it-cas-cache").unwrap();
    // A nonzero latency profile, so avoided chunk reads show up as
    // avoided simulated time.
    let env = ManagementEnv::builder(dir.path(), LatencyProfile::m1())
        .backend(StorageBackend::Cas)
        .cache_bytes(64 * 1024 * 1024)
        .open()
        .unwrap();
    let (ids, _) = run_history(&env, "baseline");
    let saver = ApproachSpec::parse("baseline").unwrap().build();
    let id = ids.last().unwrap();
    let picked = [0usize, 2];
    let cas = env.blobs().cas().unwrap();

    let c0 = cas.counters();
    let (cold_models, cold) = env.measure(|| saver.recover_models(&env, id, &picked).unwrap());
    let c1 = cas.counters();
    let (warm_models, warm) = env.measure(|| saver.recover_models(&env, id, &picked).unwrap());
    let c2 = cas.counters();

    assert_eq!(cold_models, warm_models, "the cache must not change recovered bytes");
    // Counters only ever move forward.
    assert!(c1.cache_misses > c0.cache_misses, "the cold read populates the cache");
    assert!(c2.cache_misses >= c1.cache_misses);
    assert!(c2.cache_hits > c1.cache_hits, "the warm read must hit the cache");
    assert!(
        c2.cache_hit_bytes > c1.cache_hit_bytes,
        "warm cache_hit_bytes must grow: {} vs {}",
        c2.cache_hit_bytes,
        c1.cache_hit_bytes
    );
    assert!(
        warm.sim < cold.sim,
        "cache hits charge no simulated chunk latency (warm {:?} vs cold {:?})",
        warm.sim,
        cold.sim
    );
}

#[test]
fn a_crash_at_every_write_op_under_cas_is_repairable_for_every_approach() {
    for kind in ApproachKind::ALL {
        let spec = kind.name();
        let mut survived = false;
        for k in 0..MAX_FAULT_POINTS {
            let dir = TempDir::new("it-cas-fault").unwrap();
            let faults = FaultInjector::new();
            let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
                .backend(StorageBackend::Cas)
                .faults(faults.clone())
                .open()
                .unwrap();
            let mut fleet = Fleet::initial(FleetConfig {
                n_models: N,
                seed: SEED,
                arch: Architectures::ffnn(6),
            });
            let mut saver = ApproachSpec::parse(spec).unwrap().build();
            let set_a = fleet.to_model_set();
            let id_a = saver.save_initial(&env, &set_a).unwrap();
            let record = fleet.run_update_cycle(env.registry(), &policy()).unwrap();
            let set_b = fleet.to_model_set();
            let deriv = record.derivation(id_a.clone());

            faults.arm(FaultPlan::crash_at(FaultTarget::Writes, k));
            let result = saver.save_set(&env, &set_b, Some(&deriv));
            faults.disarm_all();

            if let Ok(id_b) = result {
                assert!(k >= 3, "{spec}: save with only {k} write op(s)");
                assert_eq!(saver.recover_set(&env, &id_b).unwrap(), set_b, "{spec}: clean save");
                assert!(fsck::fsck(&env).unwrap().is_clean(), "{spec}: clean save leaves no debris");
                survived = true;
                break;
            }

            // The process "died" mid-save: reopen fresh. The backend
            // marker makes a plain reopen adopt the CAS layout.
            drop(env);
            drop(saver);
            let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
            assert_eq!(env.backend(), StorageBackend::Cas);
            let ctx = format!("{spec}, write op #{k}");

            // A crash mid-save can leave phase-one debris and chunk
            // files whose manifest never landed — nothing else.
            let report = fsck::fsck(&env).unwrap();
            for d in &report.damage {
                assert!(
                    matches!(
                        d,
                        fsck::Damage::UncommittedSave { .. } | fsck::Damage::OrphanChunk { .. }
                    ),
                    "{ctx}: unexpected damage class: {}",
                    d.describe()
                );
            }

            let saver = ApproachSpec::parse(spec).unwrap().build();
            assert_eq!(saver.recover_set(&env, &id_a).unwrap(), set_a, "{ctx}: committed set");
            assert_eq!(catalog::list_sets(&env).unwrap().len(), 1, "{ctx}: catalog");

            let fixed = fsck::repair(&env, &report).unwrap();
            assert_eq!(fixed.sets_quarantined, 0, "{ctx}: debris never quarantines");
            let after = fsck::fsck(&env).unwrap();
            assert!(after.is_clean(), "{ctx}: after repair: {:?}", after.damage);
            assert_eq!(saver.recover_set(&env, &id_a).unwrap(), set_a, "{ctx}: after repair");
        }
        assert!(survived, "{spec}: save never completed within {MAX_FAULT_POINTS} write ops");
    }
}

/// Crash at every write op inside a CAS deletion (`delete_set` →
/// manifest delete → `release_chunks`): the surviving sets must stay
/// bit-identical, shared chunks must never be reclaimed out from under
/// them, and the worst a crash may cause is a *leak* (orphan chunks or
/// blobs, invisible debris) that `fsck --repair` reclaims — never
/// corruption.
#[test]
fn a_crash_at_every_write_op_during_cas_gc_leaks_but_never_corrupts() {
    let mut survived = false;
    for k in 0..MAX_FAULT_POINTS {
        let dir = TempDir::new("it-cas-gc-fault").unwrap();
        let faults = FaultInjector::new();
        let env = ManagementEnv::builder(dir.path(), LatencyProfile::zero())
            .backend(StorageBackend::Cas)
            .faults(faults.clone())
            .open()
            .unwrap();
        // An update chain shares chunks between versions, so the
        // deletion below releases a mix of shared and unique chunks.
        let (ids, sets) = run_history(&env, "update");
        let victim = ids.last().unwrap();

        faults.arm(FaultPlan::crash_at(FaultTarget::Writes, k));
        let result = gc::delete_set(&env, victim, false);
        faults.disarm_all();

        if result.is_ok() {
            assert!(k >= 2, "deletion with only {k} write op(s)");
            assert!(fsck::fsck(&env).unwrap().is_clean(), "clean deletion leaves no debris");
            survived = true;
            break;
        }

        // The process "died" mid-deletion: reopen fresh and audit.
        drop(env);
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let ctx = format!("gc write op #{k}");

        // Leak, never corrupt: the only acceptable damage classes are
        // invisible debris and unreferenced leftovers.
        let report = fsck::fsck(&env).unwrap();
        for d in &report.damage {
            assert!(
                matches!(
                    d,
                    fsck::Damage::UncommittedSave { .. }
                        | fsck::Damage::OrphanBlob { .. }
                        | fsck::Damage::OrphanChunk { .. }
                ),
                "{ctx}: unexpected damage class: {}",
                d.describe()
            );
        }

        // Every set the deletion did not get to decommit — in
        // particular every *other* version sharing chunks with the
        // victim — still recovers bit-identically.
        let saver = ApproachSpec::parse("update").unwrap().build();
        for (id, set) in ids.iter().zip(&sets) {
            if mmm::core::commit::is_committed(&env, id).unwrap() {
                assert_eq!(&saver.recover_set(&env, id).unwrap(), set, "{ctx}: set {id}");
            } else {
                assert!(id == victim, "{ctx}: only the victim may be decommitted");
            }
        }

        // Repair reclaims the leak and the survivors are untouched.
        let fixed = fsck::repair(&env, &report).unwrap();
        assert_eq!(fixed.sets_quarantined, 0, "{ctx}: a gc crash never quarantines");
        assert!(fsck::fsck(&env).unwrap().is_clean(), "{ctx}: repair converges");
        for (id, set) in ids.iter().zip(&sets).take(ids.len() - 1) {
            assert_eq!(&saver.recover_set(&env, id).unwrap(), set, "{ctx}: after repair {id}");
        }
    }
    assert!(survived, "deletion never completed within {MAX_FAULT_POINTS} write ops");
}

#[test]
fn fsck_flags_and_gc_reclaims_orphan_chunks() {
    let dir = TempDir::new("it-cas-orphan").unwrap();
    let env = open(dir.path(), StorageBackend::Cas, 1);
    let (ids, _) = run_history(&env, "baseline");
    assert!(fsck::fsck(&env).unwrap().is_clean());

    let chunk_dir = dir.path().join("blobs").join("cas").join("chunks");
    let chunk_files = || std::fs::read_dir(&chunk_dir).unwrap().count();

    // Deleting a set releases its references; chunks no longer reachable
    // from any manifest leave the disk with it.
    let before = chunk_files();
    gc::delete_set(&env, ids.last().unwrap(), false).unwrap();
    assert!(chunk_files() < before, "deleting a set must reclaim its unique chunks");
    assert!(fsck::fsck(&env).unwrap().is_clean());

    // A chunk file without a referencing manifest (as a crash between
    // chunk write and manifest write would leave) is orphan damage that
    // repair deletes...
    let stray = chunk_dir.join("00000000deadbeef-00000010.bin");
    std::fs::write(&stray, vec![0u8; 16]).unwrap();
    let report = fsck::fsck(&env).unwrap();
    assert!(
        report.damage.iter().any(|d| matches!(d, fsck::Damage::OrphanChunk { .. })),
        "fsck must flag the stray chunk: {:?}",
        report.damage
    );
    let fixed = fsck::repair(&env, &report).unwrap();
    assert_eq!(fixed.orphan_chunks_deleted, 1);
    assert!(!stray.exists(), "repair deletes the chunk payload");
    assert!(fsck::fsck(&env).unwrap().is_clean());

    // ...and that gc can reclaim directly, reporting the bytes freed.
    std::fs::write(&stray, vec![0u8; 16]).unwrap();
    let (n, bytes) = gc::reclaim_orphan_chunks(&env).unwrap();
    assert_eq!((n, bytes), (1, 16));
    assert!(fsck::fsck(&env).unwrap().is_clean());
    assert_eq!(gc::reclaim_orphan_chunks(&env).unwrap(), (0, 0), "idempotent when clean");
}

#[test]
fn approach_specs_round_trip_through_their_canonical_form() {
    for s in [
        "mmlib-base",
        "baseline",
        "provenance",
        "update",
        "update:delta",
        "update:snapshot-every=4",
        "update:snapshot-every=4,delta",
    ] {
        let spec = ApproachSpec::parse(s).unwrap();
        assert_eq!(spec.to_string(), s, "canonical form is stable");
        assert_eq!(ApproachSpec::parse(&spec.to_string()).unwrap(), spec, "round trip");
        assert_eq!(spec.build().name(), spec.kind.name(), "built saver reports the kind");
    }
    // Whitespace and option order are normalized.
    let spec = ApproachSpec::parse(" update : delta , snapshot-every=4 ").unwrap();
    assert_eq!(spec.to_string(), "update:snapshot-every=4,delta");

    for bad in [
        "nope",
        "baseline:delta",
        "provenance:snapshot-every=4",
        "update:snapshot-every=0",
        "update:snapshot-every=x",
        "update:bogus",
    ] {
        assert!(ApproachSpec::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
#[allow(deprecated)]
fn by_name_shim_still_builds_every_saver() {
    for kind in ApproachKind::ALL {
        let saver = mmm::core::approach::by_name(kind.name()).unwrap();
        assert_eq!(saver.name(), kind.name());
    }
    assert!(mmm::core::approach::by_name("nope").is_none());
}
