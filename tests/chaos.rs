//! Chaos acceptance tests: the fleet frontend under seeded fault storms.
//!
//! The harness (`mmm::workload::chaos`) drives concurrent tenants
//! through the frontend while crashes, torn writes, doc-log bit flips,
//! and transient bursts hit the stores, then crashes the environment
//! and audits the crash-consistency invariants (no committed save
//! unreadable, no uncommitted save visible, batches atomic, fsck clean
//! or repairs to clean). Seeds are fixed, so a failure here is
//! replayable with `mmm chaos --seed <n>`.
//!
//! The big run drives over 200 concurrent tenant-iterations — the
//! acceptance floor for this suite.

use std::time::Duration;

use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::chaos::{report_json, run_chaos, service_bench, ChaosConfig};

#[test]
fn two_hundred_tenant_iterations_of_fault_storms_hold_every_invariant() {
    let dir = TempDir::new("it-chaos").unwrap();
    let config = ChaosConfig {
        seed: 0xC8A0_5EED,
        threads: 8,
        tenants: 4,
        rounds: 13,
        iters: 2,
        ..ChaosConfig::default()
    };
    assert!(config.tenant_iterations() >= 200, "acceptance floor");
    let report = run_chaos(dir.path(), &config).unwrap();
    assert!(
        report.passed(),
        "{} invariant violations:\n{}",
        report.violations.len(),
        report.violations.join("\n")
    );
    assert_eq!(report.rounds, config.rounds);
    assert!(report.saves_ok > 0, "storms must not starve the workload entirely");
    assert!(report.commit_members >= report.saves_ok, "every ok save went through a batch");
    // The branch-aware tenant mix (~10% of iterations) must actually
    // have exercised the version graph under the storms.
    assert!(report.branch_forks > 0, "no forks in {} iterations", config.tenant_iterations());
    assert!(
        report.branch_merges + report.branch_conflicts > 0,
        "no merge ever completed: forks={}",
        report.branch_forks
    );
    // The query slice (~1/8 of iterations) must have read the lake
    // through the frontend while the storms ran.
    assert!(report.queries_ok > 0, "no query answered in {} iterations", config.tenant_iterations());
    let v = report_json(&config, &report);
    assert_eq!(*v.get("passed").unwrap(), true);
    assert_eq!(*v.get("branch_forks").unwrap(), report.branch_forks);
}

#[test]
fn a_different_seed_also_passes_with_a_commit_window() {
    let dir = TempDir::new("it-chaos").unwrap();
    let config = ChaosConfig {
        seed: 42,
        threads: 6,
        tenants: 3,
        rounds: 5,
        iters: 2,
        commit_window: Duration::from_millis(2),
        ..ChaosConfig::default()
    };
    let report = run_chaos(dir.path(), &config).unwrap();
    assert!(report.passed(), "violations:\n{}", report.violations.join("\n"));
}

#[test]
fn the_service_bench_reports_throughput_and_batching() {
    let dir = TempDir::new("it-chaos-bench").unwrap();
    let config =
        ChaosConfig { commit_window: Duration::from_millis(1), ..ChaosConfig::default() };
    let bench = service_bench(dir.path(), &[1, 4], 10, &config).unwrap();
    assert_eq!(bench.rows.len(), 2);
    for row in &bench.rows {
        assert!(row.saves_per_sec > 0.0, "throughput measured at {} threads", row.threads);
        assert!(row.shed_rate <= 1.0);
    }
    // Under concurrency the group committer coalesces: strictly fewer
    // commit-record appends per acknowledged save than solo.
    let solo = bench.rows[0].commit_records_per_save;
    let loaded = bench.rows[1].commit_records_per_save;
    assert!(
        loaded <= solo,
        "group commit must not amplify commit appends: solo {solo}, loaded {loaded}"
    );
}

#[test]
fn chaos_accepts_a_preexisting_population() {
    // Storms over a store that already holds committed sets: the old
    // sets must keep every invariant too (they are in `expected` from
    // round one on only if this run created them — so instead assert
    // the catalog survives and fsck converges on top of real history).
    let dir = TempDir::new("it-chaos-seeded").unwrap();
    {
        let env = mmm::core::env::ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let arch = mmm::dnn::Architectures::ffnn(6);
        let set = mmm::core::model_set::ModelSet::new(
            arch.clone(),
            (0..2).map(|i| arch.build(i).export_param_dict()).collect(),
        );
        use mmm::core::approach::ModelSetSaver;
        mmm::core::approach::BaselineSaver::new().save_initial(&env, &set).unwrap();
    }
    let config =
        ChaosConfig { seed: 7, threads: 4, tenants: 2, rounds: 3, iters: 1, ..ChaosConfig::default() };
    let report = run_chaos(dir.path(), &config).unwrap();
    assert!(report.passed(), "violations:\n{}", report.violations.join("\n"));
}
