//! The Provenance approach's correctness rests entirely on deterministic
//! replay. These tests attack that property from several angles.

use mmm::core::approach::{ModelSetSaver, ProvenanceSaver};
use mmm::core::env::ManagementEnv;
use mmm::dnn::Architectures;
use mmm::store::LatencyProfile;
use mmm::util::TempDir;
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

fn run_chain(dir: &TempDir, cycles: usize) -> (Vec<mmm::core::ModelSet>, Vec<mmm::core::ModelSetId>) {
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: 16,
        seed: 99,
        arch: Architectures::ffnn(8),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.25);
    let mut saver = ProvenanceSaver::new();
    let mut sets = vec![fleet.to_model_set()];
    let mut ids = vec![saver.save_initial(&env, &sets[0]).unwrap()];
    for _ in 0..cycles {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let set = fleet.to_model_set();
        ids.push(
            saver
                .save_set(&env, &set, Some(&record.derivation(ids.last().unwrap().clone())))
                .unwrap(),
        );
        sets.push(set);
    }
    (sets, ids)
}

/// Three chained update cycles recover bit-exactly by retraining.
#[test]
fn three_level_chain_is_bit_exact() {
    let dir = TempDir::new("it-prov").unwrap();
    let (sets, ids) = run_chain(&dir, 3);
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let saver = ProvenanceSaver::new();
    for (uc, id) in ids.iter().enumerate() {
        assert_eq!(saver.recover_set(&env, id).unwrap(), sets[uc], "uc {uc}");
    }
}

/// Two *independent* environments built from the same seeds produce the
/// same recovered bits — there is no hidden machine state.
#[test]
fn independent_worlds_agree() {
    let dir_a = TempDir::new("it-prov-a").unwrap();
    let dir_b = TempDir::new("it-prov-b").unwrap();
    let (sets_a, ids_a) = run_chain(&dir_a, 2);
    let (sets_b, ids_b) = run_chain(&dir_b, 2);
    assert_eq!(sets_a, sets_b, "materialized fleets must agree across worlds");

    let env_a = ManagementEnv::open(dir_a.path(), LatencyProfile::zero()).unwrap();
    let env_b = ManagementEnv::open(dir_b.path(), LatencyProfile::zero()).unwrap();
    let saver = ProvenanceSaver::new();
    let last_a = saver.recover_set(&env_a, ids_a.last().unwrap()).unwrap();
    let last_b = saver.recover_set(&env_b, ids_b.last().unwrap()).unwrap();
    assert_eq!(last_a, last_b);
}

/// Recovery twice from the same environment gives the same bits
/// (replayed training does not perturb any persistent state).
#[test]
fn recovery_is_idempotent() {
    let dir = TempDir::new("it-prov-idem").unwrap();
    let (_sets, ids) = run_chain(&dir, 2);
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let saver = ProvenanceSaver::new();
    let a = saver.recover_set(&env, ids.last().unwrap()).unwrap();
    let b = saver.recover_set(&env, ids.last().unwrap()).unwrap();
    assert_eq!(a, b);
}

/// Deleting a referenced dataset from the registry must surface as a
/// NotFound error at recovery — not as silently wrong parameters.
#[test]
fn missing_dataset_fails_loudly() {
    let dir = TempDir::new("it-prov-missing").unwrap();
    let (_sets, ids) = run_chain(&dir, 1);
    // Nuke the registry directory contents.
    for entry in std::fs::read_dir(dir.path().join("datasets")).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let saver = ProvenanceSaver::new();
    let err = saver.recover_set(&env, ids.last().unwrap()).unwrap_err();
    assert!(matches!(err, mmm::util::Error::NotFound(_)), "{err}");
    // The full initial snapshot must remain recoverable.
    assert!(saver.recover_set(&env, &ids[0]).is_ok());
}
