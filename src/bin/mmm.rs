//! `mmm` — command-line multi-model management.
//!
//! Manages a fleet of models in a persistent directory across
//! invocations: create a fleet, run update cycles, archive every version
//! with a chosen approach, inspect lineage, audit integrity, recover,
//! and garbage-collect.
//!
//! ```text
//! mmm init    --dir D [--models N] [--arch ffnn48|ffnn69|cifar] [--approach SPEC] [--backend plain|cas|tiered] [--cache-mb N]
//! mmm update  --dir D [--rate 0.10] [--divergence]
//! mmm list    --dir D
//! mmm lineage --dir D <set-id>
//! mmm verify  --dir D <set-id>
//! mmm fsck    --dir D [--repair] [--salvage]
//! mmm recover --dir D <set-id>
//! mmm gc      --dir D --keep-last K
//! mmm info    --dir D <set-id>
//! mmm export  --dir D <set-id> <file>
//! mmm import  --dir D <file>
//! mmm tag     --dir D <set-id> [<tag>]      # without <tag>: list tags
//! mmm find-tag --dir D <tag>
//! mmm query   --dir D <expr> [--json]        # model-lake search, e.g.
//!             'kind = "diff" and n_models >= 100 and tag:prod and bytes > 50MB'
//! mmm advise  [--priority storage|recovery|balanced]
//! mmm stats   [--models N] [--cycles K] [--setup zero|m1|server]
//! mmm chaos   [--dir D] [--seed S] [--rounds N] [--threads T] [--iters I] [--tenants K]
//!             [--models N] [--deadline-ms MS] [--commit-window-ms MS]
//!             [--report-out F] [--bench-out F]
//! mmm tier    --dir D [--keep-hot K]         # demote all but the K newest sets
//! mmm tier    --dir D --promote <set-id>     # pull one set back to the hot tier
//! mmm serve-obs [--listen ADDR] [--duration-ms MS] [--seed S]
//! mmm top     <addr>                         # one-shot /tenants SLO table
//! ```
//!
//! Set ids are printed by `init`/`update`/`list` in the form
//! `approach:key` (e.g. `update:3`).
//!
//! `--approach` takes an approach spec: a kind name optionally followed
//! by `:options` (e.g. `update:snapshot-every=4,delta`). `--backend cas`
//! stores parameter blobs content-addressed — identical layers across
//! sets and versions are stored once — with an LRU recovery cache sized
//! by `--cache-mb`. The backend choice is persisted in the environment
//! and re-adopted on later invocations.
//!
//! Every command accepts `--threads N` to fan the save/recover hot
//! paths (hashing, chunk encoding, delta compression, blob transfers)
//! out over N worker threads. Stored bytes and reported simulated
//! times are identical for every `N`; only wall-clock time changes.
//!
//! `mmm stats` runs a self-contained micro-scenario (all four
//! approaches, U1 + `--cycles` U3 cycles in a temp directory) with full
//! tracing enabled and pretty-prints the per-phase TTS/TTR breakdown in
//! simulated time. `--trace-out FILE` / `--metrics-out FILE` also dump
//! the JSONL span trace and Prometheus metrics text. `mmm stats
//! --from-trace FILE` skips the run and renders the same breakdown
//! offline from a previously dumped trace; a missing or truncated trace
//! is a hard error (non-zero exit), never an empty report.
//!
//! The live introspection plane: `mmm serve-obs` binds a
//! dependency-free HTTP endpoint (std TcpListener) serving `/metrics`
//! (Prometheus text), `/healthz` and `/tenants` (per-tenant SLO
//! snapshots as JSON) while driving deterministic demo fleet traffic;
//! `mmm top <addr>` renders a one-shot SLO table from a running
//! endpoint. Any other command accepts `--obs-listen ADDR` to expose
//! the same endpoints for its own run (e.g. `mmm chaos --obs-listen
//! 127.0.0.1:9184`).

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use mmm::bench::experiment::{run_scenario_in_env, ExperimentConfig};
use mmm::bench::report;
use mmm::core::advisor::{recommend, Priorities, Scenario};
use mmm::core::approach::{ApproachSpec, ModelSetSaver};
use mmm::core::env::ManagementEnv;
use mmm::core::model_set::{ModelSet, ModelSetId};
use mmm::core::{branch, bundle, catalog, fsck, gc, lineage, query, tags, tiering, verify};
use mmm::dnn::{ArchitectureSpec, Architectures, ParamDict};
use mmm::obs::Observer;
use mmm::store::{LatencyProfile, StorageBackend};
use mmm::util::codec::{put_f32_slice, put_str, put_u32, put_u64, Reader};
use mmm::util::{Error, Result, TempDir};
use mmm::workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

// ---------------------------------------------------------------------
// CLI plumbing

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  mmm init    --dir D [--models N] [--arch ffnn48|ffnn69|cifar] [--approach SPEC] [--seed S] [--backend plain|cas|tiered] [--cache-mb N]\n  mmm update  --dir D [--rate R] [--divergence]\n  mmm list    --dir D\n  mmm lineage --dir D <set-id>\n  mmm verify  --dir D <set-id>\n  mmm fsck    --dir D [--repair] [--salvage]\n  mmm recover --dir D <set-id>\n  mmm gc      --dir D --keep-last K\n  mmm fork    --dir D <set-id|branch> <name> [--at N]\n  mmm diff    --dir D <a> <b>          (set ids or branch names)\n  mmm merge   --dir D <base> <ours> <theirs> [--into BRANCH]\n  mmm branch  --dir D [--delete NAME]\n  mmm log     --dir D [--graph] [<set-id|branch>]\n  mmm export  --dir D <set-id> <file>\n  mmm import  --dir D <file>\n  mmm advise  [--priority storage|recovery|balanced]\n  mmm stats   [--models N] [--cycles K] [--setup zero|m1|server] [--trace-out F] [--metrics-out F] [--from-trace F]\n  mmm chaos   [--dir D] [--seed S] [--rounds N] [--threads T] [--iters I] [--tenants K] [--deadline-ms MS] [--commit-window-ms MS] [--report-out F] [--bench-out F]\n  mmm tier    --dir D [--keep-hot K] | --promote <set-id>\n  mmm tag     --dir D <set-id> [<tag>]\n  mmm find-tag --dir D <tag>\n  mmm query   --dir D <expr> [--json]\n  mmm serve-obs [--listen ADDR] [--duration-ms MS] [--seed S]\n  mmm top     <addr>\n\nquery exprs combine and/or/not/parens over kind, approach, key, base,\nn_models, depth, bytes (50MB etc.), tag:NAME, branch:NAME,\ndescendant-of(ID), similar-to(ID, 0.9)\napproach SPEC = kind[:opts], e.g. update, update:delta, update:snapshot-every=4,delta\nall commands accept --threads N (parallel save/recover; default 1),\n--backend/--cache-mb (an environment keeps the backend it was created with),\nand --obs-listen ADDR (serve /metrics /healthz /tenants for this run)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[derive(Default)]
struct Args {
    command: String,
    positional: Vec<String>,
    dir: Option<PathBuf>,
    models: usize,
    arch: String,
    approach: String,
    seed: u64,
    rate: f64,
    divergence: bool,
    all: bool,
    repair: bool,
    keep_last: usize,
    priority: String,
    threads: usize,
    backend: Option<StorageBackend>,
    cache_mb: Option<u64>,
    cycles: usize,
    setup: String,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    models_explicit: bool,
    rounds: usize,
    iters: usize,
    tenants: usize,
    deadline_ms: u64,
    commit_window_ms: u64,
    salvage: bool,
    report_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    keep_hot: usize,
    promote: bool,
    listen: Option<String>,
    duration_ms: u64,
    obs_listen: Option<String>,
    from_trace: Option<PathBuf>,
    at: usize,
    delete: Option<String>,
    graph: bool,
    into: Option<String>,
    json: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        models: 100,
        arch: "ffnn48".into(),
        approach: "update".into(),
        seed: 42,
        rate: 0.10,
        keep_last: 3,
        priority: "storage".into(),
        threads: 1,
        cycles: 2,
        setup: "zero".into(),
        rounds: 13,
        iters: 2,
        tenants: 4,
        deadline_ms: 30_000,
        keep_hot: 2,
        duration_ms: 10_000,
        ..Args::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => a.dir = Some(PathBuf::from(next(&mut it, "--dir"))),
            "--models" => {
                a.models = num(&mut it, "--models");
                a.models_explicit = true;
            }
            "--arch" => a.arch = next(&mut it, "--arch"),
            "--approach" => a.approach = next(&mut it, "--approach"),
            "--seed" => a.seed = num(&mut it, "--seed") as u64,
            "--rate" => {
                a.rate = next(&mut it, "--rate")
                    .parse()
                    .unwrap_or_else(|_| usage("--rate needs a number"))
            }
            "--divergence" => a.divergence = true,
            "--all" => a.all = true,
            "--repair" => a.repair = true,
            "--keep-last" => a.keep_last = num(&mut it, "--keep-last"),
            "--priority" => a.priority = next(&mut it, "--priority"),
            "--threads" => a.threads = num(&mut it, "--threads").max(1),
            "--backend" => {
                let name = next(&mut it, "--backend");
                a.backend = Some(
                    StorageBackend::by_name(&name)
                        .unwrap_or_else(|| usage(&format!("unknown backend {name:?} (plain|cas)"))),
                );
            }
            "--cache-mb" => a.cache_mb = Some(num(&mut it, "--cache-mb") as u64),
            "--cycles" => a.cycles = num(&mut it, "--cycles"),
            "--setup" => a.setup = next(&mut it, "--setup"),
            "--trace-out" => a.trace_out = Some(PathBuf::from(next(&mut it, "--trace-out"))),
            "--metrics-out" => a.metrics_out = Some(PathBuf::from(next(&mut it, "--metrics-out"))),
            "--rounds" => a.rounds = num(&mut it, "--rounds"),
            "--iters" => a.iters = num(&mut it, "--iters"),
            "--tenants" => a.tenants = num(&mut it, "--tenants").max(1),
            "--deadline-ms" => a.deadline_ms = num(&mut it, "--deadline-ms") as u64,
            "--commit-window-ms" => a.commit_window_ms = num(&mut it, "--commit-window-ms") as u64,
            "--salvage" => a.salvage = true,
            "--keep-hot" => a.keep_hot = num(&mut it, "--keep-hot"),
            "--promote" => a.promote = true,
            "--report-out" => a.report_out = Some(PathBuf::from(next(&mut it, "--report-out"))),
            "--bench-out" => a.bench_out = Some(PathBuf::from(next(&mut it, "--bench-out"))),
            "--listen" => a.listen = Some(next(&mut it, "--listen")),
            "--duration-ms" => a.duration_ms = num(&mut it, "--duration-ms") as u64,
            "--obs-listen" => a.obs_listen = Some(next(&mut it, "--obs-listen")),
            "--from-trace" => a.from_trace = Some(PathBuf::from(next(&mut it, "--from-trace"))),
            "--at" => a.at = num(&mut it, "--at"),
            "--delete" => a.delete = Some(next(&mut it, "--delete")),
            "--graph" => a.graph = true,
            "--into" => a.into = Some(next(&mut it, "--into")),
            "--json" => a.json = true,
            "--help" | "-h" => usage(""),
            other if a.command.is_empty() && !other.starts_with('-') => a.command = other.into(),
            other if !other.starts_with('-') => a.positional.push(other.into()),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if a.command.is_empty() {
        usage("no command given");
    }
    a
}

fn next(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn num(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    next(it, flag)
        .parse()
        .unwrap_or_else(|_| usage(&format!("{flag} needs a number")))
}

fn require_dir(a: &Args) -> &Path {
    a.dir.as_deref().unwrap_or_else(|| usage("--dir is required"))
}

/// Process-wide observer: enabled when the command records traces
/// (`stats`, or any command run with `--trace-out`/`--metrics-out`),
/// otherwise a no-op.
static OBSERVER: OnceLock<Observer> = OnceLock::new();

fn obs() -> &'static Observer {
    OBSERVER.get_or_init(Observer::disabled)
}

fn open_env(a: &Args) -> Result<ManagementEnv> {
    let mut builder = ManagementEnv::builder(require_dir(a), LatencyProfile::zero())
        .threads(a.threads)
        .observer(obs().clone());
    // Without --backend the environment re-adopts whatever backend it
    // was created with (persisted marker file).
    if let Some(backend) = a.backend {
        builder = builder.backend(backend);
    }
    if let Some(mb) = a.cache_mb {
        builder = builder.cache_bytes(mb * 1024 * 1024);
    }
    builder.open()
}

fn parse_set_id(s: &str) -> ModelSetId {
    let (approach, key) = s
        .split_once(':')
        .unwrap_or_else(|| usage(&format!("malformed set id {s:?}; expected approach:key")));
    ModelSetId { approach: approach.into(), key: key.into() }
}

fn make_saver(spec: &str) -> Box<dyn ModelSetSaver> {
    ApproachSpec::parse(spec)
        .unwrap_or_else(|e| usage(&e.to_string()))
        .build()
}

// ---------------------------------------------------------------------
// Persistent CLI state: the live fleet + bookkeeping, stored as blobs in
// the environment's file store under a reserved "cli/" prefix (they are
// working state, not archived model sets).

const STATE_KEY: &str = "cli/state.bin";
const STATE_MAGIC: &[u8; 4] = b"MMCL";

struct CliState {
    approach: String,
    seed: u64,
    arch: ArchitectureSpec,
    update_cycle: u64,
    last_set: Option<ModelSetId>,
    history: Vec<ModelSetId>,
    models: Vec<ParamDict>,
}

impl CliState {
    fn save(&self, env: &ManagementEnv) -> Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(STATE_MAGIC);
        put_str(&mut buf, &self.approach);
        put_u64(&mut buf, self.seed);
        put_str(&mut buf, &serde_json::to_string(&self.arch).expect("arch serializes"));
        put_u64(&mut buf, self.update_cycle);
        let ids: Vec<String> = self.history.iter().map(ModelSetId::to_string).collect();
        put_str(&mut buf, &self.last_set.as_ref().map(ModelSetId::to_string).unwrap_or_default());
        put_u32(&mut buf, ids.len() as u32);
        for id in &ids {
            put_str(&mut buf, id);
        }
        put_u32(&mut buf, self.models.len() as u32);
        for m in &self.models {
            put_u32(&mut buf, m.layers.len() as u32);
            for l in &m.layers {
                put_str(&mut buf, &l.name);
                put_u64(&mut buf, l.data.len() as u64);
                put_f32_slice(&mut buf, &l.data);
            }
        }
        env.blobs().put(STATE_KEY, &buf)
    }

    fn load(env: &ManagementEnv) -> Result<CliState> {
        let bytes = env
            .blobs()
            .get(STATE_KEY)
            .map_err(|_| Error::invalid("no fleet here; run `mmm init --dir ...` first"))?;
        let mut r = Reader::new(&bytes);
        if r.bytes(4)? != STATE_MAGIC {
            return Err(Error::corrupt("bad CLI state magic"));
        }
        let approach = r.str()?;
        let seed = r.u64()?;
        let arch: ArchitectureSpec = serde_json::from_str(&r.str()?)
            .map_err(|e| Error::corrupt(format!("bad arch in CLI state: {e}")))?;
        let update_cycle = r.u64()?;
        let last_raw = r.str()?;
        let last_set = if last_raw.is_empty() { None } else { Some(parse_set_id(&last_raw)) };
        let n_ids = r.u32()? as usize;
        let mut history = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            history.push(parse_set_id(&r.str()?));
        }
        let n_models = r.u32()? as usize;
        let mut models = Vec::with_capacity(n_models);
        for _ in 0..n_models {
            let n_layers = r.u32()? as usize;
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let name = r.str()?;
                let n = r.u64()? as usize;
                layers.push(mmm::dnn::LayerParams { name, data: r.f32_slice(n)? });
            }
            models.push(ParamDict { layers });
        }
        Ok(CliState { approach, seed, arch, update_cycle, last_set, history, models })
    }

    fn to_fleet(&self) -> Fleet {
        let mut fleet = Fleet::initial(FleetConfig {
            n_models: self.models.len(),
            seed: self.seed,
            arch: self.arch.clone(),
        });
        fleet.restore(self.models.clone(), self.update_cycle);
        fleet
    }
}

// ---------------------------------------------------------------------
// Commands

fn cmd_init(a: &Args) -> Result<()> {
    let dir = require_dir(a);
    let env = open_env(a)?;
    if env.blobs().exists(STATE_KEY) {
        return Err(Error::invalid(format!("{} already holds a fleet", dir.display())));
    }
    let arch = match a.arch.as_str() {
        "ffnn48" => Architectures::ffnn48(),
        "ffnn69" => Architectures::ffnn69(),
        "cifar" => Architectures::cifar_cnn(),
        other => usage(&format!("unknown architecture {other:?}")),
    };
    let fleet = Fleet::initial(FleetConfig { n_models: a.models, seed: a.seed, arch: arch.clone() });
    let mut saver = make_saver(&a.approach);
    let set = fleet.to_model_set();
    let id = saver.save_initial(&env, &set)?;
    let state = CliState {
        approach: a.approach.clone(),
        seed: a.seed,
        arch,
        update_cycle: 0,
        last_set: Some(id.clone()),
        history: vec![id.clone()],
        models: set.models,
    };
    state.save(&env)?;
    println!(
        "initialized fleet: {} × {} ({} params/model), approach {}",
        a.models,
        state.arch.name,
        state.arch.param_count(),
        a.approach
    );
    println!("U1 archived as {id}");
    Ok(())
}

fn cmd_update(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let mut state = CliState::load(&env)?;
    let mut fleet = state.to_fleet();

    let source = if state.arch.name == "CIFAR" {
        DataSource::Cifar { n_samples: 64 }
    } else {
        DataSource::battery_small()
    };
    let mut policy = UpdatePolicy::paper_default(source).with_update_rate(a.rate);
    if state.arch.name == "CIFAR" {
        policy.train = mmm::dnn::TrainConfig { epochs: 1, ..mmm::dnn::TrainConfig::classification_default(0) };
        policy.partial_layers = vec![1];
    }
    if a.divergence {
        policy = policy.with_divergence_selection(32);
    }

    let record = fleet.run_update_cycle(env.registry(), &policy)?;
    let set = fleet.to_model_set();
    let mut saver = make_saver(&state.approach);
    let base = state
        .last_set
        .clone()
        .ok_or_else(|| Error::invalid("fleet has no archived base set"))?;
    let ((id, m), selection) = (
        env.measure(|| saver.save_set(&env, &set, Some(&record.derivation(base)))),
        if a.divergence { "divergence-driven" } else { "random" },
    );
    let id = id?;
    println!(
        "update cycle {}: {} models retrained ({selection}); archived {:.3} MB in {:.3}s as {id}",
        record.update_cycle,
        record.updates.len(),
        m.bytes_written() as f64 / 1e6,
        m.duration.as_secs_f64()
    );
    state.update_cycle = fleet.update_cycle();
    state.models = set.models;
    state.last_set = Some(id.clone());
    state.history.push(id);
    state.save(&env)
}

fn cmd_list(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    if a.all {
        // Catalog view: every set archived in this environment,
        // including ones created outside this CLI fleet. Served by the
        // query engine (`mmm query true` is the superset view); the
        // line format here is a stable contract.
        for r in query::run(&env, "true")?.records {
            println!(
                "{:<24} kind={:<5} models={:<6} base={}",
                r.id.to_string(),
                r.kind,
                r.n_models,
                r.base.as_deref().unwrap_or("-")
            );
        }
        return Ok(());
    }
    let state = CliState::load(&env)?;
    println!(
        "fleet: {} × {} | approach {} | {} update cycle(s)",
        state.models.len(),
        state.arch.name,
        state.approach,
        state.update_cycle
    );
    for (i, id) in state.history.iter().enumerate() {
        let uc = if i == 0 { "U1".to_string() } else { format!("U3-{i}") };
        println!("  {uc:<6} {id}");
    }
    Ok(())
}

fn cmd_lineage(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("lineage needs a set id")));
    for node in lineage::lineage(&env, &id)? {
        println!(
            "{} kind={} models={} changes={}",
            node.id, node.kind, node.n_models, node.n_changes
        );
    }
    Ok(())
}

/// A positional that names a set: either an explicit `approach:key` id
/// or a branch name (resolved to that branch's head).
fn resolve_set(env: &ManagementEnv, s: &str) -> Result<ModelSetId> {
    if s.contains(':') {
        return Ok(parse_set_id(s));
    }
    Ok(branch::branch_by_name(env, s)?.head)
}

fn cmd_fork(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let source = a.positional.first().unwrap_or_else(|| usage("fork needs a source set or branch"));
    let name = a.positional.get(1).unwrap_or_else(|| usage("fork needs a branch name"));
    let source = resolve_set(&env, source)?;
    let b = branch::fork(&env, &source, a.at, name)?;
    println!("forked branch {:?} at {} (head {})", b.name, b.root, b.head);
    Ok(())
}

fn cmd_diff(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let ia = resolve_set(&env, a.positional.first().unwrap_or_else(|| usage("diff needs two sets")))?;
    let ib = resolve_set(&env, a.positional.get(1).unwrap_or_else(|| usage("diff needs two sets")))?;
    let d = branch::diff(&env, &ia, &ib)?;
    if d.is_empty() {
        println!("{} and {} are identical", d.a, d.b);
        return Ok(());
    }
    for c in &d.changed {
        println!("changed model {} layer {} ({} bytes)", c.model, c.layer, c.bytes);
    }
    println!(
        "{} layer(s) changed ({} bytes), {} model(s) added ({} bytes), {} model(s) removed ({} bytes)",
        d.changed.len(),
        d.bytes_changed,
        d.added_models,
        d.bytes_added,
        d.removed_models,
        d.bytes_removed
    );
    Ok(())
}

fn cmd_merge(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    if a.positional.len() < 3 {
        usage("merge needs <base> <ours> <theirs>");
    }
    let base = resolve_set(&env, &a.positional[0])?;
    let ours = resolve_set(&env, &a.positional[1])?;
    let theirs = resolve_set(&env, &a.positional[2])?;
    let outcome = branch::merge(&env, &base, &ours, &theirs)?;
    if !outcome.is_clean() {
        for c in &outcome.conflicts {
            println!("CONFLICT: model {} layer {} changed on both sides", c.model, c.layer);
        }
        return Err(Error::invalid(format!(
            "{} conflict(s); nothing was written",
            outcome.conflicts.len()
        )));
    }
    let merged = outcome.merged.expect("clean merge produces a set");
    println!(
        "merged {} (ours {} layer(s), theirs {} layer(s))",
        merged, outcome.took_ours, outcome.took_theirs
    );
    if let Some(name) = &a.into {
        let b = branch::advance(&env, name, &merged)?;
        println!("advanced branch {:?} to {}", b.name, b.head);
    }
    Ok(())
}

fn cmd_branch(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    if let Some(name) = &a.delete {
        let r = branch::delete_branch(&env, name)?;
        println!(
            "deleted branch {:?}: {} set(s), {} doc(s), {} blob(s), {} commit(s)",
            name, r.sets_deleted, r.docs_deleted, r.blobs_deleted, r.commits_deleted
        );
        if let Some(id) = r.stopped_on_dependent {
            println!("kept {id}: another set still derives from it");
        }
        return Ok(());
    }
    let all = branch::branches(&env)?;
    if all.is_empty() {
        println!("no branches");
    }
    for b in all {
        println!("{:<16} head={} root={} nodes={}", b.name, b.head, b.root, b.nodes.len());
    }
    Ok(())
}

fn cmd_log(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let branches = branch::branches(&env)?;
    let label = |key: &str| -> String {
        let mut tags: Vec<String> = branches
            .iter()
            .filter(|b| b.head.key == key)
            .map(|b| b.name.clone())
            .collect();
        tags.sort();
        if tags.is_empty() { String::new() } else { format!(" [{}]", tags.join(", ")) }
    };
    if let Some(start) = a.positional.first() {
        // Linear history of one set, newest first (like `git log`).
        let id = resolve_set(&env, start)?;
        for node in lineage::lineage(&env, &id)? {
            println!(
                "{} kind={} models={} changes={}{}",
                node.id,
                node.kind,
                node.n_models,
                node.n_changes,
                label(&node.id.key)
            );
        }
        return Ok(());
    }
    // Whole-store view. With --graph, render the version DAG as a
    // forest: children indent under their base, branch heads annotated.
    let sets = catalog::list_sets(&env)?;
    if !a.graph {
        for s in sets.iter().filter(|s| s.id.approach != "mmlib-base") {
            println!(
                "{:<24} kind={:<5} models={:<6}{}",
                s.id.to_string(),
                s.kind,
                s.n_models,
                label(&s.id.key)
            );
        }
        return Ok(());
    }
    let mut children: std::collections::BTreeMap<&str, Vec<&catalog::SetSummary>> =
        std::collections::BTreeMap::new();
    let mut roots: Vec<&catalog::SetSummary> = Vec::new();
    for s in sets.iter().filter(|s| s.id.approach != "mmlib-base") {
        match s.base.as_deref() {
            Some(base) => children.entry(base).or_default().push(s),
            None => roots.push(s),
        }
    }
    fn render(
        s: &catalog::SetSummary,
        depth: usize,
        last: bool,
        children: &std::collections::BTreeMap<&str, Vec<&catalog::SetSummary>>,
        label: &dyn Fn(&str) -> String,
    ) {
        let lead = if depth == 0 {
            "*".to_string()
        } else {
            format!("{}{}", "  ".repeat(depth - 1), if last { "└─" } else { "├─" })
        };
        let branch_note =
            s.branch.as_ref().map(|b| format!(" (fork -> {b})")).unwrap_or_default();
        println!(
            "{} {} kind={} models={}{}{}",
            lead,
            s.id,
            s.kind,
            s.n_models,
            label(&s.id.key),
            branch_note
        );
        if let Some(kids) = children.get(s.id.key.as_str()) {
            for (i, kid) in kids.iter().enumerate() {
                render(kid, depth + 1, i + 1 == kids.len(), children, label);
            }
        }
    }
    for root in roots {
        render(root, 0, true, &children, &label);
    }
    Ok(())
}

fn cmd_verify(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("verify needs a set id")));
    let report = verify::verify_set(&env, &id)?;
    println!(
        "checked {} documents, {} blobs{}",
        report.docs_checked,
        report.blobs_checked,
        if report.hashes_checked { ", parameter hashes audited" } else { "" }
    );
    if report.is_healthy() {
        println!("OK: {id} is healthy");
        Ok(())
    } else {
        for issue in &report.issues {
            println!("ISSUE: {issue}");
        }
        Err(Error::corrupt(format!("{} issue(s) found", report.issues.len())))
    }
}

fn cmd_fsck(a: &Args) -> Result<()> {
    // --salvage: quarantine unreadable document-log records first, so a
    // store whose strict open fails with Corrupt can be audited at all.
    if a.salvage {
        let dir = a.dir.as_deref().ok_or_else(|| Error::invalid("--salvage needs --dir"))?;
        let s = fsck::salvage_docs(dir)?;
        if s.is_noop() {
            println!("salvage: document logs already clean ({} collection(s))", s.collections);
        } else {
            println!(
                "salvage: kept {} record(s), quarantined {} bad record(s) and {} torn tail(s)",
                s.records_kept, s.records_dropped, s.torn_tails
            );
        }
    }
    let env = open_env(a)?;
    let report = fsck::fsck(&env)?;
    println!("checked {} set(s), {} blob(s)", report.sets_checked, report.blobs_checked);
    if report.is_clean() {
        println!("OK: environment is clean");
        return Ok(());
    }
    for damage in &report.damage {
        println!("DAMAGE: {}", damage.describe());
    }
    if !a.repair {
        return Err(Error::corrupt(format!(
            "{} problem(s) found; rerun with --repair to fix",
            report.damage.len()
        )));
    }
    let fixed = fsck::repair(&env, &report)?;
    println!(
        "repair: {} uncommitted doc(s) and {} uncommitted blob(s) collected, \
         {} orphan blob(s) and {} orphan chunk(s) deleted, \
         {} dangling commit(s) removed, {} set(s) quarantined",
        fixed.uncommitted_docs_deleted,
        fixed.uncommitted_blobs_deleted,
        fixed.orphan_blobs_deleted,
        fixed.orphan_chunks_deleted,
        fixed.dangling_commits_removed,
        fixed.sets_quarantined
    );
    let after = fsck::fsck(&env)?;
    if after.is_clean() {
        println!("OK: environment is clean after repair");
        Ok(())
    } else {
        for damage in &after.damage {
            println!("REMAINING: {}", damage.describe());
        }
        Err(Error::corrupt(format!("{} problem(s) remain after repair", after.damage.len())))
    }
}

fn cmd_recover(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("recover needs a set id")));
    let saver = make_saver(&id.approach);
    let (set, m): (Result<ModelSet>, _) = env.measure(|| saver.recover_set(&env, &id));
    let set = set?;
    println!(
        "recovered {} models × {} params in {:.3}s ({} store ops)",
        set.len(),
        set.arch.param_count(),
        m.duration.as_secs_f64(),
        m.stats.total_ops()
    );
    Ok(())
}

fn cmd_gc(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let mut state = CliState::load(&env)?;
    let deleted = gc::apply_retention(&env, &state.history, a.keep_last)?;
    for id in &deleted {
        println!("deleted {id}");
    }
    println!("{} set(s) deleted, {} retained", deleted.len(), state.history.len() - deleted.len());
    state.history.retain(|id| !deleted.contains(id));
    state.save(&env)?;
    // Reclaim datasets no surviving provenance record references.
    let (n, bytes) = gc::collect_unreferenced_datasets(&env)?;
    if n > 0 {
        println!("reclaimed {n} unreferenced dataset(s), {:.2} MB", bytes as f64 / 1e6);
    }
    // On the cas backend, sweep chunk payloads no manifest references.
    let (chunks, chunk_bytes) = gc::reclaim_orphan_chunks(&env)?;
    if chunks > 0 {
        println!(
            "reclaimed {chunks} unreferenced chunk(s), {:.2} MB",
            chunk_bytes as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_tier(a: &Args) -> Result<()> {
    use mmm::store::StorageTier;
    let env = open_env(a)?;
    if a.promote {
        let id = parse_set_id(
            a.positional.first().unwrap_or_else(|| usage("tier --promote needs a set id")),
        );
        let (blobs, bytes) = tiering::promote_set(&env, &id)?;
        println!("promoted {id}: {blobs} blob(s), {:.3} MB back on the hot tier", bytes as f64 / 1e6);
    } else {
        let state = CliState::load(&env)?;
        let report = tiering::demote_old_sets(&env, &state.history, a.keep_hot)?;
        for id in &report.demoted {
            println!("demoted {id}");
        }
        println!(
            "{} set(s) demoted ({} blob(s), {:.3} MB); {} kept hot",
            report.demoted.len(),
            report.blobs_demoted,
            report.bytes_demoted as f64 / 1e6,
            state.history.len().min(a.keep_hot)
        );
    }
    let tiered = env.tiered().expect("tier commands require the tiered backend");
    for tier in [StorageTier::Hot, StorageTier::Cold] {
        let snap = tiered.tier_stats(tier);
        println!(
            "{:<4} tier: {:.3} MB on disk | session traffic: {} get(s), {} put(s)",
            tier.name(),
            tiered.tier_disk_bytes(tier) as f64 / 1e6,
            snap.blob_gets,
            snap.blob_puts,
        );
    }
    Ok(())
}

fn cmd_info(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("info needs a set id")));
    let chain = lineage::lineage(&env, &id)?;
    let head = &chain[0];
    println!("set:      {id}");
    println!("kind:     {}", head.kind);
    println!("models:   {}", head.n_models);
    println!("depth:    {} (chain of {})", chain.len() - 1, chain.len());
    let t = tags::tags_of(&env, &id)?;
    println!("tags:     {}", if t.is_empty() { "-".into() } else { t.join(", ") });
    let report = verify::verify_set(&env, &id)?;
    println!(
        "health:   {} ({} docs, {} blobs checked)",
        if report.is_healthy() { "OK" } else { "ISSUES" },
        report.docs_checked,
        report.blobs_checked
    );
    for issue in &report.issues {
        println!("  ISSUE: {issue}");
    }
    Ok(())
}

fn cmd_tag(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("tag needs a set id")));
    match a.positional.get(1) {
        Some(tag) => {
            tags::tag_set(&env, &id, tag)?;
            println!("tagged {id} with {tag:?}");
        }
        None => {
            for t in tags::tags_of(&env, &id)? {
                println!("{t}");
            }
        }
    }
    Ok(())
}

fn cmd_find_tag(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let tag = a.positional.first().unwrap_or_else(|| usage("find-tag needs a tag"));
    // Thin sugar over the query engine's tag index probe. Output stays
    // one id per line; only committed sets are listed (a tag left on a
    // deleted set no longer prints a dangling id).
    let q = query::Query::from_expr(query::Expr::Tag(tag.clone()));
    for r in q.run(&env)?.records {
        println!("{}", r.id);
    }
    Ok(())
}

/// Render a [`query::QueryOutput`] as the stable `--json` document.
fn query_json(expr: &str, out: &mmm::core::query::QueryOutput) -> serde_json::Value {
    serde_json::json!({
        "query": expr,
        "count": out.records.len(),
        "scanned": out.scanned,
        "probes": out.probes,
        "sets": out.records.iter().map(|r| serde_json::json!({
            "id": r.id.to_string(),
            "approach": r.id.approach,
            "key": r.id.key,
            "kind": r.kind.as_str(),
            "n_models": r.n_models,
            "base": r.base,
            "fork_of": r.fork_of,
            "tags": r.tags,
            "branches": r.branches,
            "depth": r.depth,
            "bytes": serde_json::json!({
                "total": r.bytes_stored.total,
                "hot": r.bytes_stored.hot,
                "cold": r.bytes_stored.cold,
            }),
            "similarity": r.similarity,
        })).collect::<Vec<_>>(),
    })
}

fn cmd_query(a: &Args) -> Result<()> {
    // Join the positionals so lightly-quoted shells still work:
    // `mmm query tag:prod and depth >= 2`.
    let expr_text = a.positional.join(" ");
    if expr_text.trim().is_empty() {
        usage("query needs an expression, e.g. 'kind = \"diff\" and tag:prod'");
    }
    let q = match query::Query::parse(&expr_text) {
        Ok(q) => q,
        Err(e) => {
            // Point at the offending byte before the error line.
            eprintln!("  {expr_text}");
            eprintln!("  {}^", " ".repeat(e.offset.min(expr_text.len())));
            return Err(Error::invalid(e.to_string()));
        }
    };
    let env = open_env(a)?;
    let out = q.run(&env)?;
    if a.json {
        println!("{}", query_json(&expr_text, &out));
        return Ok(());
    }
    for r in &out.records {
        let tags = if r.tags.is_empty() { "-".to_string() } else { r.tags.join(",") };
        let branches =
            if r.branches.is_empty() { "-".to_string() } else { r.branches.join(",") };
        let sim = r.similarity.map(|s| format!(" sim={s:.3}")).unwrap_or_default();
        println!(
            "{:<24} kind={:<5} models={:<6} depth={:<3} bytes={:<10} base={:<8} tags={} branches={}{}",
            r.id.to_string(),
            r.kind,
            r.n_models,
            r.depth,
            r.bytes_stored.total,
            r.base.as_deref().unwrap_or("-"),
            tags,
            branches,
            sim
        );
    }
    let probes = if out.probes.is_empty() {
        String::new()
    } else {
        format!("; probes: {}", out.probes.join(", "))
    };
    println!("{} set(s) matched of {} scanned{probes}", out.records.len(), out.scanned);
    Ok(())
}

fn cmd_export(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let id = parse_set_id(a.positional.first().unwrap_or_else(|| usage("export needs a set id")));
    let path = a.positional.get(1).unwrap_or_else(|| usage("export needs an output file"));
    let bytes = bundle::export_set(&env, &id)?;
    std::fs::write(path, &bytes)?;
    println!("exported {id} ({:.3} MB) to {path}", bytes.len() as f64 / 1e6);
    Ok(())
}

fn cmd_import(a: &Args) -> Result<()> {
    let env = open_env(a)?;
    let path = a.positional.first().unwrap_or_else(|| usage("import needs a bundle file"));
    let bytes = std::fs::read(path)?;
    let id = bundle::import_set(&env, &bytes)?;
    println!("imported as {id}");
    Ok(())
}

fn cmd_advise(a: &Args) -> Result<()> {
    let priorities = match a.priority.as_str() {
        "storage" => Priorities::storage_first(),
        "recovery" => Priorities::recovery_first(),
        "balanced" => Priorities::balanced(),
        other => usage(&format!("unknown priority {other:?}")),
    };
    let scenario = Scenario { n_models: a.models.max(1), ..Scenario::default() };
    let rec = recommend(&scenario, &priorities);
    for (approach, score) in &rec.ranking {
        println!("{:<12} score {score:.2}", approach.name());
    }
    println!("-> use the {} approach", rec.best().name());
    Ok(())
}

/// Offline `mmm stats --from-trace`: render the per-phase breakdown
/// from a previously dumped JSONL span trace. A missing, empty, or
/// mid-record-truncated trace is a hard error (non-zero exit), never a
/// silently empty report.
fn stats_from_trace(path: &Path) -> Result<()> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        Error::invalid(format!(
            "cannot read trace file {} ({e}); expected JSONL from --trace-out",
            path.display()
        ))
    })?;
    let records = mmm::obs::parse_trace_jsonl(&text)
        .map_err(|e| Error::corrupt(format!("trace {} is unusable: {e}", path.display())))?;
    if records.is_empty() {
        return Err(Error::invalid(format!(
            "trace {} holds no spans (empty or events-only file)",
            path.display()
        )));
    }
    println!(
        "=== per-phase TTS/TTR breakdown (simulated time) — {} span(s) from {} ===",
        records.len(),
        path.display()
    );
    print!("{}", mmm::obs::render_breakdown(&mmm::obs::breakdown(&records)));
    Ok(())
}

fn cmd_stats(a: &Args) -> Result<()> {
    if let Some(path) = &a.from_trace {
        return stats_from_trace(path);
    }
    let profile = LatencyProfile::by_name(&a.setup)
        .unwrap_or_else(|| usage(&format!("unknown setup {:?}; expected zero|m1|server", a.setup)));
    let cfg = ExperimentConfig {
        profile,
        ..ExperimentConfig::small(a.models, a.cycles)
    }
    .with_threads(a.threads)
    .with_observer(obs().clone());
    let dir = TempDir::new("mmm-stats")?;
    let env = ManagementEnv::open(dir.path(), profile)?
        .with_threads(cfg.threads)
        .with_observer(obs().clone());
    println!(
        "micro-scenario: {} models × {} ({} params/model), U1 + {} U3 cycle(s)",
        cfg.n_models,
        cfg.arch.name,
        cfg.arch.param_count(),
        cfg.n_cycles
    );
    let r = run_scenario_in_env(&cfg, &env)?;
    print!("{}", report::run_header(env.profile().name, cfg.threads, &env.store_stats().lane_history()));
    println!("\n=== storage (MB) ===\n{}", report::storage_table(&r));
    println!("=== TTS (s) ===\n{}", report::tts_table(&r));
    println!("=== TTR (s) ===\n{}", report::ttr_table(&r));
    println!("=== per-phase TTS/TTR breakdown (simulated time) ===");
    print!("{}", report::phase_table(obs()));
    Ok(())
}

fn cmd_chaos(a: &Args) -> Result<()> {
    use mmm::workload::chaos::{self, ChaosConfig};
    use std::time::Duration;

    let config = ChaosConfig {
        seed: a.seed,
        threads: a.threads.max(1),
        tenants: a.tenants,
        rounds: a.rounds,
        iters: a.iters,
        // Chaos exercises the control plane; tiny sets keep the storm
        // schedule dense. An explicit --models overrides.
        n_models: if a.models_explicit { a.models.max(1) } else { 2 },
        deadline: Duration::from_millis(a.deadline_ms),
        commit_window: Duration::from_millis(a.commit_window_ms),
        ..ChaosConfig::default()
    };
    // --dir reuses (and further batters) an existing store; default is a
    // throwaway directory.
    let tmp;
    let dir: &Path = match &a.dir {
        Some(d) => d,
        None => {
            tmp = TempDir::new("mmm-chaos")?;
            tmp.path()
        }
    };

    println!(
        "chaos: seed {} · {} round(s) × {} thread(s) × {} iter(s) = {} tenant-iterations",
        config.seed,
        config.rounds,
        config.threads,
        config.iters,
        config.tenant_iterations()
    );
    let report = chaos::run_chaos_observed(dir, &config, obs())?;
    println!(
        "requests {} · saves ok {} · errors {} · recovers fresh {} / stale {}",
        report.requests,
        report.saves_ok,
        report.request_errors,
        report.recovers_fresh,
        report.recovers_stale
    );
    println!(
        "commit batches {} covering {} save(s) · crash debris {} · flip-lost saves {}",
        report.commit_batches, report.commit_members, report.debris_entries, report.saves_lost_to_flips
    );

    if let Some(path) = &a.bench_out {
        let bench = chaos::service_bench(dir, &[1, 4], 25, &config)?;
        let doc = chaos::service_bench_json(&config, 25, &bench);
        let text = serde_json::to_string(&doc)
            .map_err(|e| Error::invalid(format!("unserializable bench report: {e}")))?;
        std::fs::write(path, text)?;
        println!("wrote service bench to {}", path.display());
    }

    if let Some(path) = &a.report_out {
        let doc = chaos::report_json(&config, &report);
        let text = serde_json::to_string(&doc)
            .map_err(|e| Error::invalid(format!("unserializable chaos report: {e}")))?;
        std::fs::write(path, text)?;
        println!("wrote chaos report to {}", path.display());
    }

    if report.passed() {
        println!("OK: every invariant held across {} round(s)", report.rounds);
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        Err(Error::corrupt(format!("{} invariant violation(s)", report.violations.len())))
    }
}

/// `mmm serve-obs`: bind the introspection endpoint and drive
/// deterministic demo fleet traffic (three tenants saving/recovering
/// tiny sets through the frontend) until `--duration-ms` elapses, so
/// `/metrics` and `/tenants` have live data to show.
fn cmd_serve_obs(a: &Args) -> Result<()> {
    use mmm::core::fleet::FleetFrontend;
    use std::time::{Duration, Instant};

    let addr = a.listen.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
    // The demo environment exists before the server so the /query
    // route can capture a handle: the server thread runs queries
    // against the same store the demo traffic writes to.
    let tmp = TempDir::new("mmm-serve-obs")?;
    let env = std::sync::Arc::new(
        ManagementEnv::builder(tmp.path(), LatencyProfile::m1())
            .threads(a.threads)
            .observer(obs().clone())
            .commit_window(Duration::from_millis(2))
            .open()?,
    );
    let qenv = env.clone();
    let handler: mmm::obs::QueryHandler = std::sync::Arc::new(move |expr: &str| {
        query::run(&qenv, expr)
            .map(|out| query_json(expr, &out).to_string())
            .map_err(|e| e.to_string())
    });
    let server = mmm::obs::ObsServer::start_with_query(
        addr.as_str(),
        obs().clone(),
        mmm::obs::slo::DEFAULT_OBJECTIVE,
        Some(handler),
    )
    .map_err(|e| Error::invalid(format!("cannot bind {addr}: {e}")))?;
    // The bound address line is the contract scripts scrape for; flush
    // it before the (long) serving window starts.
    println!("obs: serving on http://{}", server.local_addr());
    println!(
        "obs: endpoints /metrics /healthz /tenants /query; serving for {} ms",
        a.duration_ms
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let frontend = FleetFrontend::new(&env);
    let tenants = ["acme", "globex", "initech"];
    let arch = Architectures::ffnn48();
    let set =
        Fleet::initial(FleetConfig { n_models: 2, seed: a.seed, arch: arch.clone() }).to_model_set();
    let deadline = Some(Duration::from_secs(30));
    let mut ids = Vec::new();
    for tenant in tenants {
        let mut saver = make_saver("baseline");
        ids.push(frontend.save_initial(tenant, saver.as_mut(), &set, deadline)?);
    }
    frontend.publish_health();

    let start = Instant::now();
    let mut i = 0usize;
    while start.elapsed() < Duration::from_millis(a.duration_ms) {
        let tenant = tenants[i % tenants.len()];
        let saver = make_saver("baseline");
        let _ = frontend.recover(tenant, saver.as_ref(), &ids[i % ids.len()], deadline);
        if i % 5 == 4 {
            let mut saver = make_saver("baseline");
            if let Ok(id) = frontend.save_set(tenant, saver.as_mut(), &set, None, deadline) {
                let slot = i % ids.len();
                ids[slot] = id;
            }
        }
        frontend.publish_health();
        std::thread::sleep(Duration::from_millis(10));
        i += 1;
    }
    frontend.publish_health();
    drop(frontend);
    server.shutdown();
    println!("obs: served {} request(s) over {:.1}s", i, start.elapsed().as_secs_f64());
    Ok(())
}

/// Minimal HTTP/1.1 GET against the introspection endpoint; returns
/// the response body.
fn http_get(addr: &str, path: &str) -> Result<String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| Error::invalid(format!("cannot connect to {addr}: {e}")))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).ok();
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5))).ok();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| Error::corrupt(format!("malformed HTTP response from {addr}")))
}

/// `mmm top <addr>`: one-shot render of a running endpoint's `/tenants`
/// SLO snapshot.
fn cmd_top(a: &Args) -> Result<()> {
    let addr =
        a.positional.first().unwrap_or_else(|| usage("top needs the endpoint address (host:port)"));
    let body = http_get(addr, "/tenants")?;
    let doc: serde_json::Value = serde_json::from_str(&body)
        .map_err(|e| Error::corrupt(format!("bad /tenants JSON from {addr}: {e}")))?;
    let objective = doc
        .get("objective")
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(mmm::obs::slo::DEFAULT_OBJECTIVE);
    let rows: Vec<mmm::obs::TenantSlo> = serde_json::from_value(
        doc.get("tenants").cloned().unwrap_or(serde_json::Value::Array(Vec::new())),
    )
    .map_err(|e| Error::corrupt(format!("bad tenant rows from {addr}: {e}")))?;
    println!("tenants @ {addr} (objective {:.2}%)", objective * 100.0);
    print!("{}", mmm::obs::render_tenants(&rows));
    Ok(())
}

fn main() {
    let args = parse_args();
    if args.command == "stats"
        || args.command == "serve-obs"
        || args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.obs_listen.is_some()
    {
        let _ = OBSERVER.set(Observer::new());
    }
    // --obs-listen exposes this run's observer over HTTP for its whole
    // duration (serve-obs manages its own listener via --listen).
    let obs_server = args.obs_listen.as_ref().map(|addr| {
        mmm::obs::ObsServer::start(
            addr.as_str(),
            obs().clone(),
            mmm::obs::slo::DEFAULT_OBJECTIVE,
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(2);
        })
    });
    if let Some(server) = &obs_server {
        eprintln!("obs: serving on http://{}", server.local_addr());
    }
    let result = match args.command.as_str() {
        "init" => cmd_init(&args),
        "update" => cmd_update(&args),
        "list" => cmd_list(&args),
        "lineage" => cmd_lineage(&args),
        "fork" => cmd_fork(&args),
        "diff" => cmd_diff(&args),
        "merge" => cmd_merge(&args),
        "branch" => cmd_branch(&args),
        "log" => cmd_log(&args),
        "verify" => cmd_verify(&args),
        "fsck" => cmd_fsck(&args),
        "recover" => cmd_recover(&args),
        "gc" => cmd_gc(&args),
        "info" => cmd_info(&args),
        "export" => cmd_export(&args),
        "import" => cmd_import(&args),
        "tag" => cmd_tag(&args),
        "find-tag" => cmd_find_tag(&args),
        "query" => cmd_query(&args),
        "advise" => cmd_advise(&args),
        "stats" => cmd_stats(&args),
        "chaos" => cmd_chaos(&args),
        "tier" => cmd_tier(&args),
        "serve-obs" => cmd_serve_obs(&args),
        "top" => cmd_top(&args),
        other => usage(&format!("unknown command {other:?}")),
    };
    // Dump observability artifacts even when the command failed — the
    // trace of a failed run is exactly what one wants to look at.
    if let Some(path) = &args.trace_out {
        match obs().write_trace(path) {
            Ok(()) => eprintln!("wrote span trace to {}", path.display()),
            Err(e) => eprintln!("error: cannot write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.metrics_out {
        match obs().write_metrics(path) {
            Ok(()) => eprintln!("wrote metrics to {}", path.display()),
            Err(e) => eprintln!("error: cannot write {}: {e}", path.display()),
        }
    }
    if let Some(server) = obs_server {
        server.shutdown();
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
