#![warn(missing_docs)]

//! # mmm — Efficient Multi-Model Management
//!
//! A Rust implementation of the multi-model management approaches from
//! *"Efficient Multi-Model Management"* (EDBT 2023): persisting, versioning
//! and recovering **fleets of thousands of small deep-learning models**
//! that share one architecture but have different parameters.
//!
//! This root crate re-exports the workspace's public API:
//!
//! * [`core`] — the contribution: the [`core::approach::MmlibBaseSaver`],
//!   [`core::approach::BaselineSaver`], [`core::approach::UpdateSaver`] and
//!   [`core::approach::ProvenanceSaver`] model-set savers plus the
//!   recovery engine (full, selective, and batch with memoized chains),
//!   lineage tracking, integrity verification, lineage-aware GC,
//!   portable bundles, set tagging, a catalog, delta compression, and
//!   the approach advisor.
//! * [`dnn`] / [`tensor`] — a deterministic, dependency-free deep-learning
//!   substrate (the paper's PyTorch stand-in).
//! * [`battery`] — the car-battery running example: a second-order
//!   equivalent-circuit cell model and synthetic driving cycles.
//! * [`data`] — datasets, the content-addressed dataset registry, and the
//!   synthetic CIFAR-like image generator.
//! * [`store`] — the storage substrate: blob file store and document store
//!   with configurable latency profiles (`m1`, `server`).
//! * [`workload`] — the paper's U1/U3 evaluation scenario driver.
//! * [`obs`] — structured tracing, metrics and the per-phase TTS/TTR
//!   breakdown (spans measure both wall-clock and simulated store time).
//! * [`mod@bench`] — the scenario harness and report tables behind the
//!   `repro` binary and `mmm stats`.
//!
//! ## Quickstart
//!
//! ```
//! use mmm::prelude::*;
//!
//! // An environment with in-memory-speed stores and a model fleet.
//! let dir = mmm::util::TempDir::new("mmm-doc").unwrap();
//! let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
//! let fleet = Fleet::initial(FleetConfig { n_models: 8, seed: 1, arch: Architectures::ffnn48() });
//!
//! // Save the initial set with the Baseline approach and recover it.
//! let mut baseline = BaselineSaver::new();
//! let id = baseline.save_initial(&env, &fleet.to_model_set()).unwrap();
//! let recovered = baseline.recover_set(&env, &id).unwrap();
//! assert_eq!(recovered.models().len(), 8);
//! ```

pub use mmm_battery as battery;
pub use mmm_bench as bench;
pub use mmm_core as core;
pub use mmm_obs as obs;
pub use mmm_data as data;
pub use mmm_dnn as dnn;
pub use mmm_store as store;
pub use mmm_tensor as tensor;
pub use mmm_util as util;
pub use mmm_workload as workload;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use mmm_core::advisor::{recommend, Priorities, Scenario};
    pub use mmm_core::approach::{
        BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
    };
    pub use mmm_core::env::ManagementEnv;
    pub use mmm_core::model_set::{Derivation, ModelSet, ModelSetId, ModelUpdate, UpdateKind};
    pub use mmm_core::{bundle, commit, fsck, gc, lineage, verify};
    pub use mmm_dnn::architectures::Architectures;
    pub use mmm_store::profile::LatencyProfile;
    pub use mmm_workload::fleet::{Fleet, FleetConfig, SelectionStrategy, UpdatePolicy};
    pub use mmm_workload::DataSource;
}
