//! Finished-span records, deterministic trace ordering, and the
//! per-phase TTS/TTR breakdown derived from them.
//!
//! # Ordering
//!
//! A trace must diff cleanly across runs and thread counts, so spans are
//! never emitted in wall-clock (close) order. Instead the forest is
//! rebuilt from parent links and walked depth-first with children sorted
//! by `(op_index, open order)`: `op_index` is the deterministic item
//! index a parallel section assigns to its per-item spans (the
//! round-robin partition makes item→lane assignment a pure function of
//! the index), and open order breaks ties for sequential siblings, which
//! always open on one thread and are therefore deterministic relative to
//! each other. Roots are grouped by context (iteration) in first-opened
//! order. Lane numbers are annotations only and carry no ordering.

use std::collections::{BTreeMap, HashMap};

use serde::Serialize;

/// One finished span, as stored in the observer's ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Open-order sequence number, unique per observer.
    pub id: u64,
    /// Enclosing span, if any (same observer, any thread).
    pub parent: Option<u64>,
    /// Static span name, e.g. `"encode"`.
    pub name: &'static str,
    /// Iteration context active when the span opened, e.g. `"update/U3-2/save"`.
    pub ctx: String,
    /// Worker lane the span ran on, if inside a parallel section.
    pub lane: Option<u32>,
    /// Deterministic item index within a parallel section, if any.
    pub op_index: Option<u64>,
    /// Free-form causal annotation (e.g. a request id, or the
    /// comma-joined request ids a commit batch coalesced).
    pub tag: Option<String>,
    /// Real wall-clock duration in nanoseconds.
    pub real_ns: u64,
    /// Simulated (`VirtualClock`) duration in nanoseconds, as charged to
    /// the opening thread's account (lane accumulator on workers).
    pub sim_ns: u64,
}

/// A span plus its depth in the deterministically ordered trace.
#[derive(Debug, Clone, Serialize)]
pub struct OrderedSpan {
    /// Position in the ordered trace (0-based).
    pub seq: usize,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Iteration context.
    pub ctx: String,
    /// Span name.
    pub name: &'static str,
    /// Lane annotation, if the span ran on a worker lane.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub lane: Option<u32>,
    /// Item index within a parallel section, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub op: Option<u64>,
    /// Causal annotation (request id(s)), if the span carries one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tag: Option<String>,
    /// Simulated duration (ns) — deterministic.
    pub sim_ns: u64,
    /// Real duration (ns) — informational, varies run to run.
    pub real_ns: u64,
}

/// Arrange `records` into the deterministic trace order described in the
/// module docs. Records whose parent is missing (e.g. evicted from the
/// ring buffer) are treated as roots.
pub fn ordered(records: &[SpanRecord]) -> Vec<OrderedSpan> {
    let present: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        match r.parent.filter(|p| present.contains_key(p)) {
            Some(p) => children.entry(p).or_default().push(r),
            None => roots.push(r),
        }
    }
    let sort_key = |r: &SpanRecord| (r.op_index.unwrap_or(u64::MAX), r.id);
    for list in children.values_mut() {
        list.sort_by_key(|r| sort_key(r));
    }
    // Contexts in order of their first-opened span; roots within a
    // context by (op_index, open order).
    let mut ctx_rank: HashMap<&str, u64> = HashMap::new();
    for r in records {
        let e = ctx_rank.entry(r.ctx.as_str()).or_insert(r.id);
        *e = (*e).min(r.id);
    }
    roots.sort_by_key(|r| (ctx_rank[r.ctx.as_str()], sort_key(r)));

    let mut out = Vec::with_capacity(records.len());
    let mut stack: Vec<(&SpanRecord, usize)> = roots.iter().rev().map(|r| (*r, 0)).collect();
    while let Some((r, depth)) = stack.pop() {
        out.push(OrderedSpan {
            seq: out.len(),
            depth,
            ctx: r.ctx.clone(),
            name: r.name,
            lane: r.lane,
            op: r.op_index,
            tag: r.tag.clone(),
            sim_ns: r.sim_ns,
            real_ns: r.real_ns,
        });
        if let Some(kids) = children.get(&r.id) {
            for k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// Render the deterministic trace as JSON Lines, one span per line.
pub fn trace_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in ordered(records) {
        out.push_str(&serde_json::to_string(&span).expect("span serializes"));
        out.push('\n');
    }
    out
}

/// Intern a span name read back from disk. Trace names come from a
/// small fixed vocabulary, so the leaked set stays tiny; interning keeps
/// re-parsed records compatible with the `&'static str` span schema.
fn intern_name(name: &str) -> &'static str {
    use std::sync::OnceLock;
    static NAMES: OnceLock<parking_lot::Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut map = NAMES.get_or_init(|| parking_lot::Mutex::new(BTreeMap::new())).lock();
    if let Some(s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), leaked);
    leaked
}

/// Parse a JSONL trace written by [`trace_jsonl`] /
/// `Observer::write_trace` back into span records (event lines are
/// skipped). Parent links are rebuilt from the depth column, which the
/// deterministic depth-first ordering makes unambiguous. Fails with the
/// offending 1-based line number on malformed or truncated input, so a
/// half-written trace is a clear error instead of a silently short
/// report.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out: Vec<SpanRecord> = Vec::new();
    // Open ancestry: (depth, synthetic id) of the spans above the cursor.
    let mut stack: Vec<(u64, u64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("line {lineno}: malformed or truncated record: {e}"))?;
        if v.get("level").is_some() && v.get("message").is_some() {
            continue; // event line
        }
        let field = |k: &str| v.get(k).ok_or(format!("line {lineno}: span missing `{k}`"));
        let name = field("name")?
            .as_str()
            .ok_or(format!("line {lineno}: `name` is not a string"))?;
        let ctx = field("ctx")?
            .as_str()
            .ok_or(format!("line {lineno}: `ctx` is not a string"))?;
        let depth = field("depth")?
            .as_u64()
            .ok_or(format!("line {lineno}: `depth` is not an integer"))?;
        let num = |k: &str| -> Result<u64, String> {
            field(k)?.as_u64().ok_or(format!("line {lineno}: `{k}` is not an integer"))
        };
        let id = out.len() as u64 + 1;
        stack.retain(|&(d, _)| d < depth);
        let parent = stack.last().map(|&(_, id)| id);
        stack.push((depth, id));
        out.push(SpanRecord {
            id,
            parent,
            name: intern_name(name),
            ctx: ctx.to_owned(),
            lane: v.get("lane").and_then(serde_json::Value::as_u64).map(|l| l as u32),
            op_index: v.get("op").and_then(serde_json::Value::as_u64),
            tag: v.get("tag").and_then(serde_json::Value::as_str).map(str::to_owned),
            real_ns: num("real_ns")?,
            sim_ns: num("sim_ns")?,
        });
    }
    Ok(out)
}

/// Aggregated time of one phase (direct child spans of an op, by name).
#[derive(Debug, Clone, Serialize)]
pub struct PhaseCell {
    /// Phase name (child span name).
    pub name: &'static str,
    /// Number of child spans aggregated.
    pub count: u64,
    /// Total simulated ns across those spans.
    pub sim_ns: u64,
    /// Total real ns across those spans.
    pub real_ns: u64,
}

/// Per-(context, op) phase breakdown: where the simulated and real time
/// of an end-to-end save/recover went.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Iteration context, e.g. `"baseline/U1"`.
    pub ctx: String,
    /// Root span name, e.g. `"save"` or `"recover"`.
    pub op: &'static str,
    /// Number of root spans aggregated into this row.
    pub count: u64,
    /// End-to-end simulated ns (sum over the root spans).
    pub total_sim_ns: u64,
    /// End-to-end real ns.
    pub total_real_ns: u64,
    /// Named phases in first-executed order.
    pub phases: Vec<PhaseCell>,
    /// Residual: total minus the named phases (simulated). Zero when the
    /// phases tile the op exactly, so `Σ phases + other == total` always.
    pub other_sim_ns: u64,
    /// Residual real time.
    pub other_real_ns: u64,
}

/// Compute per-(ctx, op) breakdown rows from finished spans. Roots are
/// the ops; their direct children are the phases, aggregated by name.
/// Row and phase order follow first-opened span order, so output is
/// deterministic.
pub fn breakdown(records: &[SpanRecord]) -> Vec<BreakdownRow> {
    let present: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    // (min root id) → row grouping key, to keep deterministic row order.
    let mut rows: BTreeMap<u64, BreakdownRow> = BTreeMap::new();
    let mut row_key: HashMap<(String, &'static str), u64> = HashMap::new();
    for r in records {
        if r.parent.filter(|p| present.contains_key(p)).is_some() {
            continue;
        }
        let key = (r.ctx.clone(), r.name);
        let id = *row_key.entry(key).or_insert(r.id);
        let row = rows.entry(id).or_insert_with(|| BreakdownRow {
            ctx: r.ctx.clone(),
            op: r.name,
            count: 0,
            total_sim_ns: 0,
            total_real_ns: 0,
            phases: Vec::new(),
            other_sim_ns: 0,
            other_real_ns: 0,
        });
        row.count += 1;
        row.total_sim_ns += r.sim_ns;
        row.total_real_ns += r.real_ns;
    }
    // Phases: direct children of any root, attributed to their root's row.
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.id);
    for r in &sorted {
        let Some(parent) = r.parent.and_then(|p| present.get(&p)) else { continue };
        if parent.parent.filter(|p| present.contains_key(p)).is_some() {
            continue; // parent is not a root → this span is not a phase
        }
        let Some(&id) = row_key.get(&(parent.ctx.clone(), parent.name)) else { continue };
        let row = rows.get_mut(&id).expect("row exists for key");
        match row.phases.iter_mut().find(|p| p.name == r.name) {
            Some(cell) => {
                cell.count += 1;
                cell.sim_ns += r.sim_ns;
                cell.real_ns += r.real_ns;
            }
            None => row.phases.push(PhaseCell {
                name: r.name,
                count: 1,
                sim_ns: r.sim_ns,
                real_ns: r.real_ns,
            }),
        }
    }
    let mut out: Vec<BreakdownRow> = rows.into_values().collect();
    for row in &mut out {
        let phase_sim: u64 = row.phases.iter().map(|p| p.sim_ns).sum();
        let phase_real: u64 = row.phases.iter().map(|p| p.real_ns).sum();
        row.other_sim_ns = row.total_sim_ns.saturating_sub(phase_sim);
        row.other_real_ns = row.total_real_ns.saturating_sub(phase_real);
    }
    out
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.4}s", ns as f64 / 1e9)
}

/// Pretty-print breakdown rows as an indented per-phase table with a
/// simulated-time percentage column. Phase sums plus the `other`
/// residual equal the op total by construction.
pub fn render_breakdown(rows: &[BreakdownRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "{}/{}: total sim {} (real {}, {} op{})\n",
            row.ctx,
            row.op,
            fmt_secs(row.total_sim_ns),
            fmt_secs(row.total_real_ns),
            row.count,
            if row.count == 1 { "" } else { "s" },
        ));
        let pct = |sim: u64| {
            if row.total_sim_ns == 0 {
                0.0
            } else {
                100.0 * sim as f64 / row.total_sim_ns as f64
            }
        };
        for p in &row.phases {
            out.push_str(&format!(
                "    {:<16} {:>12} {:>6.1}%  (x{})\n",
                p.name,
                fmt_secs(p.sim_ns),
                pct(p.sim_ns),
                p.count
            ));
        }
        if row.other_sim_ns > 0 || row.other_real_ns > 0 {
            out.push_str(&format!(
                "    {:<16} {:>12} {:>6.1}%\n",
                "other",
                fmt_secs(row.other_sim_ns),
                pct(row.other_sim_ns)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        ctx: &str,
        op_index: Option<u64>,
        sim_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            ctx: ctx.to_owned(),
            lane: None,
            op_index,
            tag: None,
            real_ns: 1,
            sim_ns,
        }
    }

    #[test]
    fn ordered_sorts_by_op_index_not_id() {
        // Two parallel item spans close in reverse order (ids 3 then 2
        // finishing under root 1); op_index restores item order.
        let records = vec![
            rec(1, None, "save", "a/U1", None, 100),
            rec(3, Some(1), "item", "a/U1", Some(0), 10),
            rec(2, Some(1), "item", "a/U1", Some(1), 20),
        ];
        let o = ordered(&records);
        assert_eq!(o.len(), 3);
        assert_eq!((o[0].name, o[0].depth), ("save", 0));
        assert_eq!(o[1].op, Some(0));
        assert_eq!(o[2].op, Some(1));
        assert_eq!(o[1].seq, 1);
    }

    #[test]
    fn ordered_groups_roots_by_context_first_seen() {
        let records = vec![
            rec(1, None, "save", "b/U1", None, 1),
            rec(2, None, "save", "a/U1", None, 1),
            rec(3, None, "recover", "b/U1", None, 1),
        ];
        let ctxs: Vec<String> = ordered(&records).into_iter().map(|s| s.ctx).collect();
        assert_eq!(ctxs, vec!["b/U1", "b/U1", "a/U1"]);
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let records = vec![rec(5, Some(999), "encode", "x", None, 7)];
        let o = ordered(&records);
        assert_eq!(o[0].depth, 0);
    }

    #[test]
    fn breakdown_sums_phases_and_residual() {
        let records = vec![
            rec(1, None, "save", "u/U1", None, 100),
            rec(2, Some(1), "hash", "u/U1", None, 30),
            rec(3, Some(1), "blob_put", "u/U1", None, 50),
            rec(4, Some(3), "inner", "u/U1", None, 50), // nested: not a phase
            rec(5, Some(1), "blob_put", "u/U1", None, 10),
        ];
        let rows = breakdown(&records);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.op, "save");
        assert_eq!(row.total_sim_ns, 100);
        let names: Vec<&str> = row.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["hash", "blob_put"]);
        assert_eq!(row.phases[1].sim_ns, 60);
        assert_eq!(row.phases[1].count, 2);
        assert_eq!(row.other_sim_ns, 10);
        let sum: u64 = row.phases.iter().map(|p| p.sim_ns).sum::<u64>() + row.other_sim_ns;
        assert_eq!(sum, row.total_sim_ns);
    }

    #[test]
    fn breakdown_aggregates_repeated_ops() {
        let records = vec![
            rec(1, None, "recover", "p/U1", None, 40),
            rec(2, None, "recover", "p/U1", None, 60),
        ];
        let rows = breakdown(&records);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_sim_ns, 100);
    }

    #[test]
    fn parse_round_trips_structure_and_flags_truncation() {
        let records = vec![
            rec(1, None, "save", "a/U1", None, 100),
            rec(2, Some(1), "encode", "a/U1", None, 40),
            rec(3, Some(2), "inner", "a/U1", Some(2), 40),
            rec(4, Some(1), "blob_put", "a/U1", None, 60),
            rec(5, None, "recover", "a/U1", None, 9),
        ];
        let text = trace_jsonl(&records);
        let back = parse_trace_jsonl(&text).unwrap();
        assert_eq!(back.len(), records.len());
        // Same breakdown (structure survives the id-free round trip).
        let (a, b) = (breakdown(&records), breakdown(&back));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.ctx.as_str(), x.op, x.total_sim_ns), (y.ctx.as_str(), y.op, y.total_sim_ns));
            assert_eq!(x.phases.len(), y.phases.len());
        }
        assert_eq!(back[2].op_index, Some(2));
        assert_eq!(back[2].parent, Some(back[1].id));

        // Truncation mid-record names the bad line.
        let cut = &text[..text.len() - 10];
        let err = parse_trace_jsonl(cut).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        // A span line with a mangled field is rejected, not skipped.
        let err = parse_trace_jsonl("{\"depth\":0,\"ctx\":\"x\"}\n").unwrap_err();
        assert!(err.contains("missing `name`"), "{err}");
    }

    #[test]
    fn parse_skips_event_lines() {
        let mut text = trace_jsonl(&[rec(1, None, "save", "a", None, 5)]);
        text.push_str("{\"seq\":9,\"level\":\"Warn\",\"ctx\":\"a\",\"message\":\"m\"}\n");
        assert_eq!(parse_trace_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn trace_jsonl_is_one_object_per_line() {
        let records = vec![rec(1, None, "save", "a", None, 5), rec(2, Some(1), "enc", "a", None, 5)];
        let text = trace_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("seq").is_some() && v.get("depth").is_some());
        }
    }
}
