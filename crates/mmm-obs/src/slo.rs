//! Per-tenant SLO accounting derived from the labelled metrics the
//! fleet frontend records.
//!
//! Nothing here keeps its own state: a [`TenantSlo`] snapshot is a pure
//! read of the [`MetricsRegistry`] at a point in time. Tenants are
//! discovered from the `mmm_tenant_requests_total{tenant="..."}` family
//! (bounded by the registry's label-cardinality cap, so a tenant flood
//! yields at most `cap` rows plus the `other` overflow row).
//!
//! # Digest math
//!
//! Latency quantiles come from the log-linear
//! [`Histogram`](crate::metrics::Histogram) behind
//! `mmm_tenant_request_sim_ns{tenant=...}`: `quantile(q)` returns the
//! lower bound of the bucket holding the `ceil(q·count)`-th observation,
//! so p50/p99 carry the histogram's ≤ ~25% relative bucket error and are
//! deterministic for a deterministic run. The error budget compares the
//! failure ratio against the objective: with objective `o` (e.g. 0.999),
//! the budget is `1 − o` and
//! `error_budget_used = (failures / requests) / (1 − o)` —
//! `1.0` means the budget is exactly spent, above `1.0` the tenant is
//! out of SLO. Sheds, deadline overruns, unavailability, and plain
//! failures all count against the budget; degraded stale serves are
//! reported but *not* charged (the request was answered).

use serde::{Deserialize, Serialize};

use crate::metrics::{label_value, MetricsRegistry};

/// Default SLO objective: 99.9% of requests succeed.
pub const DEFAULT_OBJECTIVE: f64 = 0.999;

/// Point-in-time SLO snapshot for one tenant. `Deserialize` lets
/// offline renderers (`mmm top`) read the `/tenants` endpoint body
/// back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Tenant name (label value; `other` is the overflow bucket).
    pub tenant: String,
    /// Requests that reached the frontend (admitted or shed).
    pub requests: u64,
    /// Requests acknowledged OK.
    pub ok: u64,
    /// Requests shed at admission (queue full / quota).
    pub shed: u64,
    /// Requests that ran out of deadline budget.
    pub deadline_exceeded: u64,
    /// Requests rejected by an open circuit breaker.
    pub unavailable: u64,
    /// Requests failed for any other reason.
    pub failed: u64,
    /// Degraded recovers served from the stale cache.
    pub stale_serves: u64,
    /// Store-op retries charged to this tenant.
    pub retries: u64,
    /// Median simulated end-to-end latency (ns), 0 if unobserved.
    pub p50_sim_ns: u64,
    /// 99th-percentile simulated end-to-end latency (ns).
    pub p99_sim_ns: u64,
    /// Fraction of the error budget spent (1.0 = exactly spent).
    pub error_budget_used: f64,
}

impl TenantSlo {
    /// Failures charged against the error budget. Every stale serve
    /// rescued exactly one already-classified failure (the column keeps
    /// the event visible; the budget nets it out — the tenant got an
    /// answer).
    pub fn failures(&self) -> u64 {
        (self.shed + self.deadline_exceeded + self.unavailable + self.failed)
            .saturating_sub(self.stale_serves)
    }
}

/// Snapshot every tenant's SLO state from `registry` against a success
/// `objective` in `(0, 1)`. Rows are sorted by tenant name.
pub fn tenant_slos(registry: &MetricsRegistry, objective: f64) -> Vec<TenantSlo> {
    let budget = (1.0 - objective.clamp(0.0, 1.0)).max(f64::MIN_POSITIVE);
    let mut out = Vec::new();
    for key in registry.counter_keys() {
        if !key.starts_with("mmm_tenant_requests_total{") {
            continue;
        }
        let Some(tenant) = label_value(&key, "tenant") else {
            continue;
        };
        let c = |family: &str| registry.counter(&format!("{family}{{tenant=\"{tenant}\"}}"));
        let requests = registry.counter(&key);
        let hist = registry.histogram(&format!("mmm_tenant_request_sim_ns{{tenant=\"{tenant}\"}}"));
        let q = |q: f64| hist.as_ref().and_then(|h| h.quantile(q)).unwrap_or(0);
        let mut slo = TenantSlo {
            tenant: tenant.clone(),
            requests,
            ok: c("mmm_tenant_ok_total"),
            shed: c("mmm_tenant_shed_total"),
            deadline_exceeded: c("mmm_tenant_deadline_exceeded_total"),
            unavailable: c("mmm_tenant_unavailable_total"),
            failed: c("mmm_tenant_failed_total"),
            stale_serves: c("mmm_tenant_stale_serves_total"),
            retries: c("mmm_tenant_retries_total"),
            p50_sim_ns: q(0.5),
            p99_sim_ns: q(0.99),
            error_budget_used: 0.0,
        };
        if requests > 0 {
            slo.error_budget_used = (slo.failures() as f64 / requests as f64) / budget;
        }
        out.push(slo);
    }
    out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    out
}

/// The SLO snapshot as a JSON value (the `/tenants` endpoint body):
/// `{"objective": .., "tenants": [TenantSlo, ..]}`.
pub fn tenant_slos_json(registry: &MetricsRegistry, objective: f64) -> serde_json::Value {
    serde_json::json!({
        "objective": objective,
        "tenants": tenant_slos(registry, objective),
    })
}

/// Render SLO rows as a fixed-width table (the `mmm top` view).
pub fn render_tenants(rows: &[TenantSlo]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>9}{:>7}{:>6}{:>6}{:>7}{:>7}{:>7}{:>12}{:>12}{:>9}",
        "tenant",
        "requests",
        "ok",
        "shed",
        "ddl",
        "unavl",
        "fail",
        "stale",
        "p50 sim",
        "p99 sim",
        "budget"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14}{:>9}{:>7}{:>6}{:>6}{:>7}{:>7}{:>7}{:>11.3}s{:>11.3}s{:>8.0}%",
            r.tenant,
            r.requests,
            r.ok,
            r.shed,
            r.deadline_exceeded,
            r.unavailable,
            r.failed,
            r.stale_serves,
            r.p50_sim_ns as f64 / 1e9,
            r.p99_sim_ns as f64 / 1e9,
            100.0 * r.error_budget_used
        );
    }
    if rows.is_empty() {
        out.push_str("(no tenant traffic recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        for (t, n) in [("a", 10u64), ("b", 4)] {
            r.inc(&format!("mmm_tenant_requests_total{{tenant=\"{t}\"}}"), n);
            r.inc(&format!("mmm_tenant_ok_total{{tenant=\"{t}\"}}"), n - 1);
        }
        r.inc("mmm_tenant_shed_total{tenant=\"a\"}", 1);
        r.inc("mmm_tenant_deadline_exceeded_total{tenant=\"b\"}", 1);
        for v in [1_000u64, 2_000, 4_000, 1 << 20] {
            r.observe("mmm_tenant_request_sim_ns{tenant=\"a\"}", v);
        }
        r
    }

    #[test]
    fn snapshots_cover_every_tenant_sorted() {
        let rows = tenant_slos(&seeded(), DEFAULT_OBJECTIVE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "a");
        assert_eq!(rows[1].tenant, "b");
        assert_eq!(rows[0].requests, 10);
        assert_eq!(rows[0].ok, 9);
        assert_eq!(rows[0].shed, 1);
        assert_eq!(rows[1].deadline_exceeded, 1);
    }

    #[test]
    fn budget_math_is_failures_over_budget() {
        let rows = tenant_slos(&seeded(), 0.9);
        // tenant a: 1 failure / 10 requests = 10% failed; budget 10% → 1.0
        assert!(
            (rows[0].error_budget_used - 1.0).abs() < 1e-9,
            "{}",
            rows[0].error_budget_used
        );
        // tenant b: 1/4 = 25% over a 10% budget → 2.5
        assert!((rows[1].error_budget_used - 2.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_come_from_the_histogram() {
        let rows = tenant_slos(&seeded(), DEFAULT_OBJECTIVE);
        assert!(rows[0].p50_sim_ns > 0);
        assert!(rows[0].p50_sim_ns <= rows[0].p99_sim_ns);
        // Unobserved tenant reports zero latency, not a panic.
        assert_eq!(rows[1].p50_sim_ns, 0);
    }

    #[test]
    fn json_and_table_render() {
        let r = seeded();
        let v = tenant_slos_json(&r, DEFAULT_OBJECTIVE);
        assert_eq!(v["tenants"].as_array().unwrap().len(), 2);
        assert_eq!(v["tenants"][0]["tenant"], "a");
        let table = render_tenants(&tenant_slos(&r, DEFAULT_OBJECTIVE));
        assert!(table.contains("tenant"), "{table}");
        assert!(table.lines().count() >= 3);
        assert!(render_tenants(&[]).contains("no tenant traffic"));
    }
}
