//! Dependency-free live introspection endpoint.
//!
//! [`ObsServer`] serves an [`Observer`]'s state over plain
//! `std::net::TcpListener` — no async runtime, no HTTP crate. Four
//! routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the registry
//! * `GET /healthz` — liveness probe (`ok`)
//! * `GET /tenants` — JSON per-tenant SLO snapshots ([`crate::slo`])
//! * `GET /query?q=<expr>` — model-lake queries, when a
//!   [`QueryHandler`] was installed (the obs crate cannot see the
//!   management environment, so the engine is injected by the caller)
//!
//! The accept loop runs on one spawned thread and handles one
//! connection at a time: introspection traffic is a human or a scraper,
//! not the data path, and serialized handling keeps the server trivially
//! race-free. Requests are parsed only as far as the request line;
//! anything but a known `GET` target gets a 404.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::slo::tenant_slos_json;
use crate::Observer;

/// Per-connection I/O timeout: a stalled scraper cannot wedge the loop.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Evaluates one query expression (already percent-decoded) to a JSON
/// body, or a plain-text error message served as 400.
pub type QueryHandler = Arc<dyn Fn(&str) -> Result<String, String> + Send + Sync>;

/// A running introspection server; shuts down when dropped or via
/// [`ObsServer::shutdown`].
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `obs` until shutdown. `objective` parameterizes the `/tenants`
    /// error-budget math. `/query` answers 404.
    pub fn start(addr: impl ToSocketAddrs, obs: Observer, objective: f64) -> std::io::Result<Self> {
        Self::start_with_query(addr, obs, objective, None)
    }

    /// Like [`ObsServer::start`], additionally routing `GET /query?q=`
    /// through `query` when one is given.
    pub fn start_with_query(
        addr: impl ToSocketAddrs,
        obs: Observer,
        objective: f64,
        query: Option<QueryHandler>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mmm-obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Best effort: a broken scraper connection is its
                        // problem, not the server's.
                        let _ = serve_one(stream, &obs, objective, query.as_ref());
                    }
                }
            })?;
        Ok(ObsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Decode the percent-encoding of one query-string value (`+` means
/// space). Malformed escapes are passed through literally rather than
/// rejected — the expression parser reports its own, better error.
fn percent_decode(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < b.len() || i + 2 == b.len() => {
                let hex = b.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Extract and decode the `q` parameter from a target's query string.
fn q_param(target: &str) -> Option<String> {
    let (_, qs) = target.split_once('?')?;
    qs.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == "q").then(|| percent_decode(v))
    })
}

fn serve_one(
    stream: TcpStream,
    obs: &Observer,
    objective: f64,
    query: Option<&QueryHandler>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let target = request_line
        .strip_prefix("GET ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or("");
    let (status, content_type, body) = match target {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", obs.prometheus_text()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
        "/tenants" => {
            let v = match obs.metrics() {
                Some(m) => tenant_slos_json(m, objective),
                None => serde_json::json!({
                    "objective": objective,
                    "tenants": serde_json::Value::Array(Vec::new()),
                }),
            };
            ("200 OK", "application/json", format!("{v}\n"))
        }
        t if t == "/query" || t.starts_with("/query?") => match query {
            None => ("404 Not Found", "text/plain", "no query engine attached\n".to_owned()),
            Some(handler) => match q_param(t) {
                None => ("400 Bad Request", "text/plain", "missing q parameter\n".to_owned()),
                Some(expr) => match handler(&expr) {
                    Ok(json) => ("200 OK", "application/json", format!("{json}\n")),
                    Err(msg) => ("400 Bad Request", "text/plain", format!("{msg}\n")),
                },
            },
        },
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 2 {
            line.clear();
        }
        let mut body = String::new();
        use std::io::Read as _;
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_owned(), body)
    }

    #[test]
    fn serves_metrics_healthz_and_tenants() {
        let obs = Observer::new();
        obs.inc("mmm_tenant_requests_total{tenant=\"t-0\"}", 3);
        obs.inc("mmm_tenant_ok_total{tenant=\"t-0\"}", 3);
        let server = ObsServer::start("127.0.0.1:0", obs, 0.999).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"));
        assert!(
            body.contains("# TYPE mmm_tenant_requests_total counter"),
            "{body}"
        );
        assert!(
            body.contains("mmm_tenant_requests_total{tenant=\"t-0\"} 3"),
            "{body}"
        );

        let (status, body) = get(addr, "/tenants");
        assert!(status.contains("200"));
        let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(v["tenants"][0]["tenant"], "t-0");
        assert_eq!(v["tenants"][0]["requests"], 3);

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        // No query engine attached: /query is a 404, not a crash.
        let (status, _) = get(addr, "/query?q=true");
        assert!(status.contains("404"), "{status}");
        server.shutdown();
    }

    #[test]
    fn disabled_observer_still_answers() {
        let server = ObsServer::start("127.0.0.1:0", Observer::disabled(), 0.999).unwrap();
        let (status, body) = get(server.local_addr(), "/tenants");
        assert!(status.contains("200"));
        let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(v["tenants"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn query_route_decodes_and_dispatches() {
        let handler: QueryHandler = Arc::new(|expr: &str| {
            if expr.starts_with("bad") {
                Err(format!("parse error at byte 0: {expr}"))
            } else {
                Ok(serde_json::json!({ "echo": expr }).to_string())
            }
        });
        let server = ObsServer::start_with_query(
            "127.0.0.1:0",
            Observer::disabled(),
            0.999,
            Some(handler),
        )
        .unwrap();
        let addr = server.local_addr();

        // `+` and %XX decode before the handler sees the expression.
        let (status, body) = get(addr, "/query?q=kind+%3D+%22diff%22");
        assert!(status.contains("200"), "{status}");
        let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(v["echo"], "kind = \"diff\"");

        let (status, body) = get(addr, "/query?q=bad%20expr");
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("parse error"), "{body}");

        let (status, body) = get(addr, "/query");
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("missing q"), "{body}");
        server.shutdown();
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%3d"), "=");
    }
}
