//! Dependency-free live introspection endpoint.
//!
//! [`ObsServer`] serves an [`Observer`]'s state over plain
//! `std::net::TcpListener` — no async runtime, no HTTP crate. Three
//! routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the registry
//! * `GET /healthz` — liveness probe (`ok`)
//! * `GET /tenants` — JSON per-tenant SLO snapshots ([`crate::slo`])
//!
//! The accept loop runs on one spawned thread and handles one
//! connection at a time: introspection traffic is a human or a scraper,
//! not the data path, and serialized handling keeps the server trivially
//! race-free. Requests are parsed only as far as the request line;
//! anything but a known `GET` target gets a 404.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::slo::tenant_slos_json;
use crate::Observer;

/// Per-connection I/O timeout: a stalled scraper cannot wedge the loop.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A running introspection server; shuts down when dropped or via
/// [`ObsServer::shutdown`].
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `obs` until shutdown. `objective` parameterizes the `/tenants`
    /// error-budget math.
    pub fn start(addr: impl ToSocketAddrs, obs: Observer, objective: f64) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mmm-obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Best effort: a broken scraper connection is its
                        // problem, not the server's.
                        let _ = serve_one(stream, &obs, objective);
                    }
                }
            })?;
        Ok(ObsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(stream: TcpStream, obs: &Observer, objective: f64) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let target = request_line
        .strip_prefix("GET ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or("");
    let (status, content_type, body) = match target {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", obs.prometheus_text()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
        "/tenants" => {
            let v = match obs.metrics() {
                Some(m) => tenant_slos_json(m, objective),
                None => serde_json::json!({
                    "objective": objective,
                    "tenants": serde_json::Value::Array(Vec::new()),
                }),
            };
            ("200 OK", "application/json", format!("{v}\n"))
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 2 {
            line.clear();
        }
        let mut body = String::new();
        use std::io::Read as _;
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_owned(), body)
    }

    #[test]
    fn serves_metrics_healthz_and_tenants() {
        let obs = Observer::new();
        obs.inc("mmm_tenant_requests_total{tenant=\"t-0\"}", 3);
        obs.inc("mmm_tenant_ok_total{tenant=\"t-0\"}", 3);
        let server = ObsServer::start("127.0.0.1:0", obs, 0.999).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"));
        assert!(
            body.contains("# TYPE mmm_tenant_requests_total counter"),
            "{body}"
        );
        assert!(
            body.contains("mmm_tenant_requests_total{tenant=\"t-0\"} 3"),
            "{body}"
        );

        let (status, body) = get(addr, "/tenants");
        assert!(status.contains("200"));
        let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(v["tenants"][0]["tenant"], "t-0");
        assert_eq!(v["tenants"][0]["requests"], 3);

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        server.shutdown();
    }

    #[test]
    fn disabled_observer_still_answers() {
        let server = ObsServer::start("127.0.0.1:0", Observer::disabled(), 0.999).unwrap();
        let (status, body) = get(server.local_addr(), "/tenants");
        assert!(status.contains("200"));
        let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert_eq!(v["tenants"].as_array().unwrap().len(), 0);
    }
}
