//! Counters and log-linear-bucket histograms with Prometheus text export.
//!
//! Metrics are keyed by their full Prometheus sample name including
//! labels, e.g. `mmm_store_op_sim_ns{op="blob_put"}`. Keys live in
//! `BTreeMap`s so the exported text is deterministically ordered.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Sub-bucket resolution of the histogram: each power-of-two range is
/// split into `2^SUB_BITS` linear sub-buckets (≤ ~25% relative error).
const SUB_BITS: u32 = 2;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: unit buckets for
/// `0..SUB`, then `SUB` sub-buckets for each exponent `SUB_BITS..=63`,
/// i.e. indexes `0..=(63-1)*SUB + (SUB-1)`.
pub const BUCKETS: usize = 63 * SUB as usize;

/// Index of the bucket that `v` falls into.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let sub = ((v >> (e - SUB_BITS)) & (SUB - 1)) as usize;
    (e as usize - 1) * SUB as usize + sub
}

/// Smallest value that falls into bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let e = (idx / SUB as usize + 1) as u32;
    let sub = (idx % SUB as usize) as u64;
    (1u64 << e) + (sub << (e - SUB_BITS))
}

/// Largest value that falls into bucket `idx` (inclusive).
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 < BUCKETS {
        bucket_lower(idx + 1) - 1
    } else {
        u64::MAX
    }
}

/// A fixed-layout log-linear histogram over the full `u64` range.
///
/// Layout: values `0..4` get exact unit buckets; every power-of-two range
/// above that is split into 4 linear sub-buckets, so any recorded value
/// is attributed with at most ~25% relative error while the whole range
/// (including `u64::MAX`) needs only [`BUCKETS`] slots.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    /// `u128` so even `u64::MAX`-sized observations cannot overflow.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the lower bound of the
    /// bucket containing the `ceil(q·count)`-th observation.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower(idx));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower, upper_inclusive, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_lower(idx), bucket_upper(idx), c))
    }
}

/// Split a metric key `name{a="b",...}` into `(name, labels)` where
/// `labels` excludes the surrounding braces (empty if unlabelled).
fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// Value of label `label` in a full metric key `name{a="b",...}`, if
/// present. Quote-aware, so values may contain `,` or `=`.
pub fn label_value(key: &str, label: &str) -> Option<String> {
    let (_, labels) = split_key(key);
    for (name, value) in iter_labels(labels) {
        if name == label {
            return Some(value.to_owned());
        }
    }
    None
}

/// Iterate `(name, value)` pairs of a label string `a="b",c="d"`.
fn iter_labels(labels: &str) -> impl Iterator<Item = (&str, &str)> {
    let mut rest = labels;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let eq = rest.find('=')?;
        let name = &rest[..eq];
        let after = rest[eq + 1..].strip_prefix('"')?;
        let close = after.find('"')?;
        let value = &after[..close];
        rest = after[close + 1..].strip_prefix(',').unwrap_or(&after[close + 1..]);
        Some((name, value))
    })
}

/// Rewrite every label value in `key` to `other`, preserving label
/// names and order: the overflow bucket a capped family collapses into.
fn collapse_key(key: &str) -> String {
    let (name, labels) = split_key(key);
    let mut out = String::with_capacity(key.len());
    out.push_str(name);
    out.push('{');
    for (i, (lname, _)) in iter_labels(labels).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(lname);
        out.push_str("=\"other\"");
    }
    out.push('}');
    out
}

/// Counter bumped whenever a labelled sample is collapsed into the
/// `other` bucket because its family hit the cardinality cap.
pub const LABELS_DROPPED_TOTAL: &str = "mmm_metric_labels_dropped_total";

/// Default per-family cap on distinct labelled keys (see
/// [`MetricsRegistry::with_label_cap`]).
pub const DEFAULT_LABEL_CAP: usize = 64;

/// Thread-safe registry of named counters and histograms.
///
/// Keys are full Prometheus sample names (`name{label="v"}`); the label
/// part is parsed only at export time. Deterministic iteration order.
///
/// Labelled cardinality is bounded: each family admits at most
/// `label_cap` distinct labelled keys per kind (counter / histogram /
/// gauge); overflow collapses every label value to `other` and bumps
/// [`LABELS_DROPPED_TOTAL`], so a tenant flood cannot grow the
/// exporter without bound.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    label_cap: usize,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::with_label_cap(DEFAULT_LABEL_CAP)
    }
}

/// Resolve `key` against the cardinality cap: an unlabelled or
/// already-present key passes through; a new labelled key in a family
/// that already holds `cap` labelled keys collapses to the `other`
/// bucket. Returns the admitted key and whether a collapse happened.
fn admit<V>(map: &BTreeMap<String, V>, key: &str, cap: usize) -> (String, bool) {
    let (name, labels) = split_key(key);
    if labels.is_empty() || map.contains_key(key) {
        return (key.to_owned(), false);
    }
    let prefix = format!("{name}{{");
    let labelled =
        map.range(prefix.clone()..).take_while(|(k, _)| k.starts_with(&prefix)).take(cap).count();
    if labelled < cap {
        (key.to_owned(), false)
    } else {
        (collapse_key(key), true)
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry with the default label-cardinality cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh registry admitting at most `cap` distinct labelled keys
    /// per family (minimum 1; the `other` overflow bucket rides on top).
    pub fn with_label_cap(cap: usize) -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            label_cap: cap.max(1),
        }
    }

    /// The per-family labelled-key cap.
    pub fn label_cap(&self) -> usize {
        self.label_cap
    }

    /// Add `v` to the counter `key`.
    pub fn inc(&self, key: &str, v: u64) {
        let mut c = self.counters.lock();
        let (key, dropped) = admit(&c, key, self.label_cap);
        let bump = |c: &mut BTreeMap<String, u64>, key: String, v: u64| match c.get_mut(&key) {
            Some(slot) => *slot = slot.saturating_add(v),
            None => {
                c.insert(key, v);
            }
        };
        bump(&mut c, key, v);
        if dropped {
            bump(&mut c, LABELS_DROPPED_TOTAL.to_owned(), 1);
        }
    }

    /// Record `v` into the histogram `key`.
    pub fn observe(&self, key: &str, v: u64) {
        let dropped = {
            let mut h = self.histograms.lock();
            let (key, dropped) = admit(&h, key, self.label_cap);
            h.entry(key).or_default().record(v);
            dropped
        };
        if dropped {
            self.inc(LABELS_DROPPED_TOTAL, 1);
        }
    }

    /// Set the gauge `key` to `v` (last write wins — gauges report
    /// point-in-time state such as a circuit-breaker position or a
    /// queue depth, unlike monotone counters).
    pub fn set_gauge(&self, key: &str, v: u64) {
        let dropped = {
            let mut g = self.gauges.lock();
            let (key, dropped) = admit(&g, key, self.label_cap);
            g.insert(key, v);
            dropped
        };
        if dropped {
            self.inc(LABELS_DROPPED_TOTAL, 1);
        }
    }

    /// Current value of gauge `key` (0 if never set).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.lock().get(key).copied().unwrap_or(0)
    }

    /// Names (with labels) of all registered gauges.
    pub fn gauge_keys(&self) -> Vec<String> {
        self.gauges.lock().keys().cloned().collect()
    }

    /// Current value of counter `key` (0 if never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.lock().get(key).copied().unwrap_or(0)
    }

    /// Snapshot of histogram `key`, if it has been observed.
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        self.histograms.lock().get(key).cloned()
    }

    /// Names (with labels) of all registered counters.
    pub fn counter_keys(&self) -> Vec<String> {
        self.counters.lock().keys().cloned().collect()
    }

    /// Names (with labels) of all registered histograms.
    pub fn histogram_keys(&self) -> Vec<String> {
        self.histograms.lock().keys().cloned().collect()
    }

    /// Render everything in the Prometheus text exposition format.
    /// Counters come first, then histograms; families are emitted in
    /// sorted order with one `# TYPE` header each, so the output is
    /// deterministic for a deterministic run.
    pub fn prometheus_text(&self) -> String {
        // Group samples by family so each family name gets exactly one
        // `# TYPE` header even when labelled and unlabelled keys of the
        // same family are interleaved with other families in sort order.
        let mut out = String::new();
        let counters = self.counters.lock().clone();
        let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for (key, value) in &counters {
            let (name, _) = split_key(key);
            families.entry(name.to_owned()).or_default().push((key.clone(), *value));
        }
        for (name, samples) in &families {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (key, value) in samples {
                out.push_str(&format!("{key} {value}\n"));
            }
        }
        let gauges = self.gauges.lock().clone();
        let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for (key, value) in &gauges {
            let (name, _) = split_key(key);
            families.entry(name.to_owned()).or_default().push((key.clone(), *value));
        }
        for (name, samples) in &families {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (key, value) in samples {
                out.push_str(&format!("{key} {value}\n"));
            }
        }
        let histograms = self.histograms.lock().clone();
        let mut families: BTreeMap<String, Vec<(String, &Histogram)>> = BTreeMap::new();
        for (key, hist) in &histograms {
            let (name, _) = split_key(key);
            families.entry(name.to_owned()).or_default().push((key.clone(), hist));
        }
        for (name, samples) in &families {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (key, hist) in samples {
                let (_, labels) = split_key(key);
                let sep = if labels.is_empty() { "" } else { "," };
                let mut cumulative = 0u64;
                for (_, upper, count) in hist.nonzero_buckets() {
                    cumulative += count;
                    out.push_str(&format!(
                        "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"
                ));
                let braces =
                    if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
                out.push_str(&format!("{name}_sum{braces} {}\n", hist.sum()));
                out.push_str(&format!("{name}_count{braces} {}\n", hist.count()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_zero_is_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 0);
    }

    #[test]
    fn small_values_get_unit_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_tight() {
        // Every bucket's lower bound maps back to that bucket, and the
        // value just below it maps to the previous bucket.
        for idx in 1..BUCKETS {
            let lb = bucket_lower(idx);
            assert_eq!(bucket_index(lb), idx, "lower bound of bucket {idx}");
            assert_eq!(bucket_index(lb - 1), idx - 1, "predecessor of bucket {idx}");
        }
        // Boundaries are contiguous: upper(i) + 1 == lower(i+1).
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(idx) + 1, bucket_lower(idx + 1));
        }
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2 * u64::MAX as u128);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(bucket_lower(BUCKETS - 1)));
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any value's bucket lower bound is within 25% of the value.
        for &v in &[5u64, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let lb = bucket_lower(bucket_index(v));
            assert!(lb <= v);
            assert!((v - lb) as f64 / v as f64 <= 0.25, "value {v} lb {lb}");
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.quantile(0.0), Some(0));
        // 4th of 7 observations is the value 3.
        assert_eq!(h.quantile(0.5), Some(3));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(50);
        let mut b = Histogram::new();
        b.record(0);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(u64::MAX));
    }

    #[test]
    fn registry_counters_saturate_and_sort() {
        let r = MetricsRegistry::new();
        r.inc("b_total", 1);
        r.inc("a_total", u64::MAX);
        r.inc("a_total", 5); // saturates, doesn't wrap
        assert_eq!(r.counter("a_total"), u64::MAX);
        assert_eq!(r.counter_keys(), vec!["a_total".to_owned(), "b_total".to_owned()]);
    }

    #[test]
    fn prometheus_text_shape() {
        let r = MetricsRegistry::new();
        r.inc("mmm_retries_total", 2);
        r.observe("mmm_op_ns{op=\"put\"}", 5);
        r.observe("mmm_op_ns{op=\"put\"}", 9);
        r.observe("mmm_op_ns", 1); // unlabelled variant of another family
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE mmm_retries_total counter\n"));
        assert!(text.contains("mmm_retries_total 2\n"));
        assert!(text.contains("# TYPE mmm_op_ns histogram\n"));
        assert!(text.contains("mmm_op_ns_bucket{op=\"put\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("mmm_op_ns_sum{op=\"put\"} 14\n"));
        assert!(text.contains("mmm_op_ns_count{op=\"put\"} 2\n"));
        assert!(text.contains("mmm_op_ns_bucket{le=\"+Inf\"} 1\n"));
        // Cumulative bucket counts are monotone.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("mmm_op_ns_bucket{op=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
    }

    #[test]
    fn label_value_parses_quoted_labels() {
        let key = "mmm_x_total{tenant=\"t-1\",op=\"a,b=c\"}";
        assert_eq!(label_value(key, "tenant").as_deref(), Some("t-1"));
        assert_eq!(label_value(key, "op").as_deref(), Some("a,b=c"));
        assert_eq!(label_value(key, "missing"), None);
        assert_eq!(label_value("mmm_x_total", "tenant"), None);
    }

    #[test]
    fn counter_flood_collapses_to_other_at_the_cap() {
        let r = MetricsRegistry::with_label_cap(4);
        for i in 0..100 {
            r.inc(&format!("mmm_t_total{{tenant=\"t-{i}\"}}"), 1);
        }
        // 4 distinct tenants admitted, 96 collapsed into `other`.
        let keys = r.counter_keys();
        let family: Vec<_> = keys.iter().filter(|k| k.starts_with("mmm_t_total{")).collect();
        assert_eq!(family.len(), 5, "{family:?}");
        assert_eq!(r.counter("mmm_t_total{tenant=\"other\"}"), 96);
        assert_eq!(r.counter(LABELS_DROPPED_TOTAL), 96);
        // Admitted keys keep counting without further drops.
        r.inc("mmm_t_total{tenant=\"t-0\"}", 1);
        assert_eq!(r.counter("mmm_t_total{tenant=\"t-0\"}"), 2);
        assert_eq!(r.counter(LABELS_DROPPED_TOTAL), 96);
    }

    #[test]
    fn histogram_and_gauge_floods_are_capped_too() {
        let r = MetricsRegistry::with_label_cap(2);
        for i in 0..10 {
            r.observe(&format!("mmm_lat_ns{{tenant=\"t-{i}\"}}"), i);
            r.set_gauge(&format!("mmm_depth{{tenant=\"t-{i}\"}}"), i);
        }
        let other = r.histogram("mmm_lat_ns{tenant=\"other\"}").expect("overflow histogram");
        assert_eq!(other.count(), 8);
        assert_eq!(r.histogram_keys().iter().filter(|k| k.starts_with("mmm_lat_ns")).count(), 3);
        assert_eq!(r.gauge_keys().iter().filter(|k| k.starts_with("mmm_depth")).count(), 3);
        // Last overflow write wins on the collapsed gauge.
        assert_eq!(r.gauge("mmm_depth{tenant=\"other\"}"), 9);
        assert_eq!(r.counter(LABELS_DROPPED_TOTAL), 16);
    }

    #[test]
    fn unlabelled_keys_and_multi_label_collapse_behave() {
        let r = MetricsRegistry::with_label_cap(1);
        for i in 0..5 {
            r.inc("mmm_plain_total", 1); // unlabelled: never capped
            r.inc(&format!("mmm_two_total{{a=\"x{i}\",b=\"y{i}\"}}"), 1);
        }
        assert_eq!(r.counter("mmm_plain_total"), 5);
        assert_eq!(r.counter("mmm_two_total{a=\"other\",b=\"other\"}"), 4);
    }
}
