#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Observability for the mmm workspace.
//!
//! The design goal is *zero interference*: a disabled [`Observer`]
//! (the default) is a `None` and every call on it is a no-op, and even
//! an enabled observer never writes through the stores or charges the
//! [`VirtualClock`], so stored bytes, `StoreStats` sums, and TTS/TTR
//! accounting are bit-identical with or without tracing.
//!
//! # Spans
//!
//! A span is an RAII guard over a named section:
//!
//! ```
//! let obs = mmm_obs::Observer::new();
//! {
//!     let _op = obs.span("save");
//!     let _phase = obs.span("encode"); // nests under "save"
//! }
//! assert_eq!(obs.finished_spans().len(), 2);
//! ```
//!
//! Each finished span records its real wall-clock duration and, when a
//! `VirtualClock` is attached, the simulated time charged to the opening
//! thread's account during the span (the lane accumulator on worker
//! threads — see [`VirtualClock::thread_simulated`]). Nesting is
//! tracked per thread; [`LaneHook`] extends the tree across
//! `mmm_util::parallel` workers so spans opened on a worker lane hang
//! off the span that launched the parallel section.
//!
//! # Events and metrics
//!
//! [`Observer::event`] is the quiet-by-default logging path: events are
//! counted in the [`MetricsRegistry`], kept in a bounded ring, and only
//! echoed to stderr when [`Observer::set_stderr_events`] turned that
//! sink on. The registry also collects counters and log-linear-bucket
//! histograms from any layer, exported in Prometheus text format.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmm_util::parallel::WorkerHook;
use mmm_util::VirtualClock;
use parking_lot::Mutex;
use serde::Serialize;

pub mod http;
pub mod metrics;
pub mod slo;
pub mod span;

pub use http::{ObsServer, QueryHandler};
pub use metrics::{label_value, Histogram, MetricsRegistry};
pub use slo::{render_tenants, tenant_slos, tenant_slos_json, TenantSlo};
pub use span::{
    breakdown, parse_trace_jsonl, render_breakdown, trace_jsonl, BreakdownRow, PhaseCell,
    SpanRecord,
};

/// Default capacity of the finished-span ring buffer.
const DEFAULT_SPAN_CAPACITY: usize = 1 << 18;
/// Capacity of the event ring buffer.
const EVENT_CAPACITY: usize = 4096;

static NEXT_OBSERVER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span frames on this thread, across all observers.
    /// Guards push/pop in LIFO order, so frames from interleaved
    /// observers stay consistent; parent lookup filters by observer id.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// Stack of active request contexts on this thread. The top entry
    /// attributes store ops and retries to a tenant/request; `LaneHook`
    /// carries it onto parallel worker threads.
    static REQUESTS: RefCell<Vec<RequestContext>> = const { RefCell::new(Vec::new()) };
}

/// Identity of the fleet request the current thread is working for:
/// minted at admission, threaded through queues, worker lanes, and the
/// group committer so traces and metrics can answer "who spent this".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestContext {
    /// Tenant that issued the request.
    pub tenant: String,
    /// Request id minted at admission (`rq-<tenant>-<n>`).
    pub request_id: String,
}

/// Push a request context onto the current thread; popped when the
/// returned guard drops. Nested requests stack (innermost wins).
pub fn enter_request(tenant: impl Into<String>, request_id: impl Into<String>) -> RequestGuard {
    REQUESTS.with(|r| {
        r.borrow_mut().push(RequestContext {
            tenant: tenant.into(),
            request_id: request_id.into(),
        })
    });
    RequestGuard { _priv: () }
}

/// The request context the current thread is attributed to, if any.
pub fn current_request() -> Option<RequestContext> {
    REQUESTS.with(|r| r.borrow().last().cloned())
}

/// RAII guard returned by [`enter_request`]; pops the context on drop.
#[derive(Debug)]
pub struct RequestGuard {
    _priv: (),
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        REQUESTS.with(|r| {
            r.borrow_mut().pop();
        });
    }
}

#[derive(Clone, Copy)]
struct Frame {
    obs: u64,
    /// Open span id, or `None` for a synthetic lane frame that only
    /// carries parent/lane context onto a worker thread.
    span: Option<u64>,
    /// Parent for spans opened above this frame.
    parent: Option<u64>,
    lane: Option<u32>,
}

/// Severity of an [`Observer::event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum EventLevel {
    /// Developer chatter (per-item progress).
    Debug,
    /// Run milestones.
    Info,
    /// Something recoverable went wrong (fault activation, retry).
    Warn,
}

impl EventLevel {
    fn as_str(self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Serialize)]
pub struct EventRecord {
    /// Sequence number (shared with span ids, so events interleave
    /// deterministically with span opens).
    pub seq: u64,
    /// Severity.
    pub level: EventLevel,
    /// Iteration context active when the event fired.
    pub ctx: String,
    /// Message text.
    pub message: String,
}

#[derive(Debug)]
struct Inner {
    id: u64,
    clock: Mutex<Option<VirtualClock>>,
    next_seq: AtomicU64,
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
    events: Mutex<VecDeque<EventRecord>>,
    ctx: Mutex<String>,
    metrics: MetricsRegistry,
    stderr_events: AtomicBool,
}

/// Handle to the observability pipeline. Cheap to clone; clones share
/// state. `Observer::default()` is *disabled*: every operation on it is
/// a no-op, so library code can call into it unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Inner>>,
}

impl Observer {
    /// An enabled observer with the default span ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled observer whose span ring holds at most `capacity`
    /// finished spans (oldest are evicted and counted as dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        Observer {
            inner: Some(Arc::new(Inner {
                id: NEXT_OBSERVER_ID.fetch_add(1, Ordering::Relaxed),
                clock: Mutex::new(None),
                next_seq: AtomicU64::new(1),
                capacity: capacity.max(1),
                spans: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
                events: Mutex::new(VecDeque::new()),
                ctx: Mutex::new(String::new()),
                metrics: MetricsRegistry::new(),
                stderr_events: AtomicBool::new(false),
            })),
        }
    }

    /// A disabled observer; all operations are no-ops.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// Whether this observer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach the clock used to measure simulated span durations.
    /// Called by `ManagementEnv::with_observer`; spans opened before a
    /// clock is attached report zero simulated time.
    pub fn attach_clock(&self, clock: &VirtualClock) {
        if let Some(inner) = &self.inner {
            *inner.clock.lock() = Some(clock.clone());
        }
    }

    /// Set the iteration context recorded on subsequently opened spans
    /// and events, e.g. `"update/U3-2"`. Deterministic trace ordering
    /// groups by this string.
    pub fn set_context(&self, ctx: impl Into<String>) {
        if let Some(inner) = &self.inner {
            *inner.ctx.lock() = ctx.into();
        }
    }

    /// Open a span; it closes (and is recorded) when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_open(name, None, None)
    }

    /// Open a span annotated with a deterministic item index (used for
    /// per-item spans inside parallel sections, where the round-robin
    /// partition makes the index — not the lane — the stable identity).
    pub fn span_idx(&self, name: &'static str, op_index: u64) -> SpanGuard {
        self.span_open(name, Some(op_index), None)
    }

    /// Open a span carrying a causal tag — a request id, or the
    /// comma-joined request ids a commit batch coalesced. The tag is
    /// recorded verbatim on the finished span.
    pub fn span_tagged(&self, name: &'static str, tag: impl Into<String>) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard { inner: None, open: None };
        }
        self.span_open(name, None, Some(tag.into()))
    }

    fn span_open(&self, name: &'static str, op_index: Option<u64>, tag: Option<String>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None, open: None };
        };
        let id = inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let (parent, lane) = FRAMES.with(|f| {
            let frames = f.borrow();
            let top = frames.iter().rev().find(|fr| fr.obs == inner.id);
            match top {
                Some(fr) => (fr.span.or(fr.parent), fr.lane),
                None => (None, None),
            }
        });
        FRAMES.with(|f| {
            f.borrow_mut().push(Frame { obs: inner.id, span: Some(id), parent, lane })
        });
        let sim_start = inner.clock.lock().as_ref().map(|c| c.thread_simulated());
        SpanGuard {
            inner: Some(inner.clone()),
            open: Some(OpenSpan {
                id,
                parent,
                name,
                ctx: inner.ctx.lock().clone(),
                lane,
                op_index,
                tag,
                real_start: Instant::now(),
                sim_start,
            }),
        }
    }

    /// Record an event. The message closure only runs when the observer
    /// is enabled, so callers may format freely. Events are counted in
    /// the metrics registry and echoed to stderr only when the stderr
    /// sink is on — quiet by default.
    pub fn event(&self, level: EventLevel, message: impl FnOnce() -> String) {
        let Some(inner) = &self.inner else { return };
        let message = message();
        inner.metrics.inc(&format!("mmm_events_total{{level=\"{}\"}}", level.as_str()), 1);
        if inner.stderr_events.load(Ordering::Relaxed) {
            eprintln!("[{}] {}", level.as_str(), message);
        }
        let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let ctx = inner.ctx.lock().clone();
        let mut events = inner.events.lock();
        if events.len() == EVENT_CAPACITY {
            events.pop_front();
        }
        events.push_back(EventRecord { seq, level, ctx, message });
    }

    /// Turn the stderr event sink on or off (off by default).
    pub fn set_stderr_events(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.stderr_events.store(on, Ordering::Relaxed);
        }
    }

    /// Add `v` to counter `key` (no-op when disabled).
    pub fn inc(&self, key: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.inc(key, v);
        }
    }

    /// Record `v` into histogram `key` (no-op when disabled).
    pub fn observe(&self, key: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(key, v);
        }
    }

    /// Set gauge `key` to `v` (no-op when disabled). Gauges report
    /// point-in-time service state — breaker positions, queue depths,
    /// shed rates — where the last write wins.
    pub fn gauge(&self, key: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(key, v);
        }
    }

    /// Record one store operation: simulated latency histogram plus a
    /// byte counter, labelled by op kind (`doc_insert`, `blob_put`, …).
    /// When a [`RequestContext`] is active on the calling thread the op
    /// is additionally attributed to that tenant.
    pub fn store_op(&self, op: &'static str, bytes: u64, sim: Duration) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .observe(&format!("mmm_store_op_sim_ns{{op=\"{op}\"}}"), sim.as_nanos() as u64);
            inner.metrics.inc(&format!("mmm_store_op_bytes_total{{op=\"{op}\"}}"), bytes);
            if let Some(req) = current_request() {
                let t = &req.tenant;
                inner.metrics.inc(&format!("mmm_tenant_store_ops_total{{tenant=\"{t}\"}}"), 1);
                inner
                    .metrics
                    .inc(&format!("mmm_tenant_store_bytes_total{{tenant=\"{t}\"}}"), bytes);
                inner.metrics.inc(
                    &format!("mmm_tenant_store_sim_ns_total{{tenant=\"{t}\"}}"),
                    sim.as_nanos() as u64,
                );
            }
        }
    }

    /// Record one recovery-cache hit: `bytes` served from memory and the
    /// simulated store latency `saved` by not re-reading the blob store.
    /// Counter names mirror the `mmm_store_op_*` family so dashboards can
    /// put hit traffic next to real store traffic (no-op when disabled).
    pub fn cache_hit(&self, bytes: u64, saved: Duration) {
        if let Some(inner) = &self.inner {
            inner.metrics.inc("mmm_cache_hits_total", 1);
            inner.metrics.inc("mmm_cache_hit_bytes_total", bytes);
            inner.metrics.observe("mmm_cache_saved_sim_ns", saved.as_nanos() as u64);
        }
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Snapshot of the finished-span ring, in close order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Number of finished spans evicted from the ring buffer.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(inner) => inner.events.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Per-(context, op) phase breakdown of all finished spans.
    pub fn breakdown(&self) -> Vec<BreakdownRow> {
        span::breakdown(&self.finished_spans())
    }

    /// The deterministic JSONL trace: spans in (iteration, op index)
    /// order, followed by events in sequence order.
    pub fn trace_jsonl(&self) -> String {
        let mut out = span::trace_jsonl(&self.finished_spans());
        for ev in self.events() {
            out.push_str(&serde_json::to_string(&ev).expect("event serializes"));
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition of the metrics registry (empty when
    /// disabled).
    pub fn prometheus_text(&self) -> String {
        self.metrics().map(|m| m.prometheus_text()).unwrap_or_default()
    }

    /// Write the JSONL trace to `path`.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.trace_jsonl().as_bytes())?;
        f.sync_all()
    }

    /// Write the Prometheus metrics text to `path`.
    pub fn write_metrics(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.prometheus_text().as_bytes())?;
        f.sync_all()
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    ctx: String,
    lane: Option<u32>,
    op_index: Option<u64>,
    tag: Option<String>,
    real_start: Instant,
    sim_start: Option<Duration>,
}

/// RAII guard for an open span; recording happens on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(open)) = (self.inner.take(), self.open.take()) else {
            return;
        };
        let real_ns = open.real_start.elapsed().as_nanos() as u64;
        let sim_ns = match open.sim_start {
            Some(start) => {
                let now = inner.clock.lock().as_ref().map(|c| c.thread_simulated());
                now.map_or(0, |n| n.saturating_sub(start).as_nanos() as u64)
            }
            None => 0,
        };
        FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            if let Some(pos) = frames
                .iter()
                .rposition(|fr| fr.obs == inner.id && fr.span == Some(open.id))
            {
                frames.remove(pos);
            }
        });
        inner
            .metrics
            .observe(&format!("mmm_span_sim_ns{{name=\"{}\"}}", open.name), sim_ns);
        inner
            .metrics
            .observe(&format!("mmm_span_real_ns{{name=\"{}\"}}", open.name), real_ns);
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            ctx: open.ctx,
            lane: open.lane,
            op_index: open.op_index,
            tag: open.tag,
            real_ns,
            sim_ns,
        };
        let mut spans = inner.spans.lock();
        if spans.len() == inner.capacity {
            spans.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(record);
    }
}

/// [`WorkerHook`] that carries span context across a parallel section:
/// spans opened on worker threads become children of the span that was
/// open on the launching thread, annotated with a lane number.
///
/// Lane numbers are assigned in worker start order and are therefore
/// *not* deterministic across runs — they are annotations; deterministic
/// identity comes from `span_idx` item indices.
#[derive(Debug)]
pub struct LaneHook {
    inner: Option<Arc<Inner>>,
    parent: Option<u64>,
    request: Option<RequestContext>,
    lane_seq: AtomicU32,
}

impl LaneHook {
    /// Capture the calling thread's current span (if any) as the parent
    /// for all spans the workers will open, plus the active request
    /// context so per-tenant attribution crosses the parallel section.
    pub fn current(obs: &Observer) -> LaneHook {
        let inner = obs.inner.clone();
        let parent = inner.as_ref().and_then(|i| {
            FRAMES.with(|f| {
                f.borrow()
                    .iter()
                    .rev()
                    .find(|fr| fr.obs == i.id)
                    .and_then(|fr| fr.span.or(fr.parent))
            })
        });
        LaneHook { inner, parent, request: current_request(), lane_seq: AtomicU32::new(0) }
    }
}

/// Guard returned by [`LaneHook::enter`]; pops the synthetic lane frame
/// from the worker's stack when the worker finishes.
struct LaneFrameGuard {
    obs: u64,
    parent: Option<u64>,
    lane: u32,
}

impl Drop for LaneFrameGuard {
    fn drop(&mut self) {
        FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            if let Some(pos) = frames.iter().rposition(|fr| {
                fr.obs == self.obs
                    && fr.span.is_none()
                    && fr.parent == self.parent
                    && fr.lane == Some(self.lane)
            }) {
                frames.remove(pos);
            }
        });
    }
}

impl WorkerHook for LaneHook {
    fn enter(&self) -> Box<dyn std::any::Any + Send> {
        let req_guard = self
            .request
            .as_ref()
            .map(|r| enter_request(r.tenant.clone(), r.request_id.clone()));
        match &self.inner {
            None => Box::new(req_guard),
            Some(inner) => {
                let lane = self.lane_seq.fetch_add(1, Ordering::Relaxed);
                FRAMES.with(|f| {
                    f.borrow_mut().push(Frame {
                        obs: inner.id,
                        span: None,
                        parent: self.parent,
                        lane: Some(lane),
                    })
                });
                Box::new((LaneFrameGuard { obs: inner.id, parent: self.parent, lane }, req_guard))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        {
            let _g = obs.span("anything");
            obs.inc("c", 1);
            obs.observe("h", 1);
            obs.event(EventLevel::Warn, || panic!("closure must not run"));
        }
        assert!(obs.finished_spans().is_empty());
        assert!(obs.prometheus_text().is_empty());
        assert!(obs.trace_jsonl().is_empty());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let obs = Observer::new();
        {
            let _a = obs.span("outer");
            let _b = obs.span("inner");
        }
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 2);
        // Close order: inner first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let obs = Observer::new();
        {
            let _a = obs.span("op");
            drop(obs.span("p1"));
            drop(obs.span("p2"));
        }
        let spans = obs.finished_spans();
        let op = spans.iter().find(|s| s.name == "op").unwrap();
        for name in ["p1", "p2"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(op.id), "{name}");
        }
    }

    #[test]
    fn spans_measure_simulated_time() {
        let clock = VirtualClock::new();
        let obs = Observer::new();
        obs.attach_clock(&clock);
        clock.charge(Duration::from_millis(50)); // before: excluded
        {
            let _g = obs.span("charged");
            clock.charge(Duration::from_millis(7));
        }
        let s = &obs.finished_spans()[0];
        assert_eq!(s.sim_ns, 7_000_000);
        assert!(s.real_ns > 0);
    }

    #[test]
    fn two_observers_on_one_thread_do_not_cross_link() {
        let a = Observer::new();
        let b = Observer::new();
        {
            let _ga = a.span("a_root");
            let _gb = b.span("b_root");
            let _ga2 = a.span("a_child");
        }
        let spans_b = b.finished_spans();
        assert_eq!(spans_b.len(), 1);
        assert_eq!(spans_b[0].parent, None);
        let spans_a = a.finished_spans();
        let child = spans_a.iter().find(|s| s.name == "a_child").unwrap();
        let root = spans_a.iter().find(|s| s.name == "a_root").unwrap();
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let obs = Observer::with_capacity(2);
        for _ in 0..5 {
            drop(obs.span("s"));
        }
        assert_eq!(obs.finished_spans().len(), 2);
        assert_eq!(obs.dropped_spans(), 3);
    }

    #[test]
    fn events_count_and_stay_quiet() {
        let obs = Observer::new();
        obs.set_context("c1");
        obs.event(EventLevel::Warn, || "retrying".to_owned());
        obs.event(EventLevel::Info, || "done".to_owned());
        let evs = obs.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].ctx, "c1");
        assert_eq!(
            obs.metrics().unwrap().counter("mmm_events_total{level=\"warn\"}"),
            1
        );
    }

    /// The satellite invariant: a span tree reconstructed from a
    /// 4-thread parallel run equals the 1-thread tree modulo lane
    /// annotations (and real durations).
    #[test]
    fn parallel_span_tree_matches_sequential_tree() {
        fn run(threads: usize) -> Vec<(usize, &'static str, Option<u64>, u64)> {
            let clock = VirtualClock::new();
            let obs = Observer::new();
            obs.attach_clock(&clock);
            obs.set_context("tree");
            {
                let _op = obs.span("op");
                let hook = LaneHook::current(&obs);
                let c = clock.clone();
                let o = obs.clone();
                mmm_util::parallel::try_map_timed(&clock, threads, &[&hook], 8, move |i| {
                    let _item = o.span_idx("item", i as u64);
                    c.charge(Duration::from_millis(1 + i as u64));
                    let _sub = o.span("sub");
                    c.charge(Duration::from_millis(1));
                    Ok::<_, mmm_util::Error>(i)
                })
                .unwrap();
            }
            span::ordered(&obs.finished_spans())
                .into_iter()
                .map(|s| (s.depth, s.name, s.op, s.sim_ns))
                .collect()
        }
        let seq = run(1);
        let par = run(4);
        // Tree shape, names, and item indices are identical, and so are
        // the simulated durations of every span *inside* the parallel
        // section (measured on each worker's own lane account).
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq[0].0, 0);
        assert_eq!(seq[0].1, "op");
        for (s, p) in seq.iter().zip(&par).skip(1) {
            assert_eq!(s, p);
        }
        // The enclosing op span is the one legitimate difference: the
        // sequential run charges the sum of all item work, the 4-thread
        // run charges the critical path (max lane: items {3,7} → 14ms).
        // item i charges (1+i)+1 ms, so the sum over 0..8 is 44ms.
        assert_eq!(seq[0].3, 44_000_000);
        assert_eq!(par[0].3, 14_000_000);
        // Shape sanity: op root + 8 items + 8 subs, items in index order.
        assert_eq!(seq.len(), 17);
        assert_eq!(seq[1], (1, "item", Some(0), 2_000_000));
        assert_eq!(seq[2], (2, "sub", None, 1_000_000));
    }
}
