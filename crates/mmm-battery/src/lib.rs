#![warn(missing_docs)]

//! Battery-cell simulation substrate for the paper's running example.
//!
//! The paper (§4.1) generates its training data with "a second-order
//! equivalent circuit model of a 18650 battery cell, which maps an input
//! current to the voltage response, cell temperature, and cell charge",
//! driven by "records of real-world driving discharge cycles". Neither the
//! authors' ECM implementation nor the real driving records are available,
//! so this crate provides faithful synthetic equivalents:
//!
//! * [`ecm`] — a full second-order (2-RC) equivalent circuit model with an
//!   OCV(SoC) curve, coulomb-counting charge integration, a lumped thermal
//!   node, and state-of-health (SoH) aging that scales capacity and
//!   internal resistance.
//! * [`cycles`] — a synthetic driving-current generator with WLTP-like
//!   phase structure (idle / urban / rural / highway / regenerative
//!   braking) and seeded stochastic micro-transients.
//! * [`data`] — turns (cycle, cell) pairs into normalized training samples
//!   `(current, temperature, charge, SoC) → voltage`, including the
//!   paper's per-cell parameter perturbation, per-update-cycle SoH
//!   decrement, and measurement noise.

pub mod cycles;
pub mod data;
pub mod ecm;
pub mod pack;

pub use cycles::{generate_driving_cycle, CycleConfig};
pub use data::{generate_cell_data, CellDataConfig, RawSamples, FEATURES};
pub use ecm::{CellParams, CellState, EcmCell};
pub use pack::{Pack, PackConfig};
