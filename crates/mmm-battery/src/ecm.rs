//! Second-order (2-RC) equivalent circuit model of an 18650 Li-ion cell.
//!
//! The model follows the standard formulation used by the work the paper
//! cites (Neupert & Kowal 2018): a series resistance `R0`, two RC pairs
//! `(R1, C1)` and `(R2, C2)` capturing fast and slow polarization, an
//! open-circuit-voltage curve `OCV(SoC)`, coulomb-counting charge
//! integration, a lumped thermal node heated by ohmic losses, and SoH
//! aging that shrinks capacity and grows resistance.
//!
//! Sign convention: **positive current = discharge** (amperes).

/// Electrical and thermal parameters of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Nominal capacity in ampere-hours.
    pub capacity_ah: f32,
    /// Series resistance in ohms.
    pub r0: f32,
    /// Fast polarization resistance (ohms) and capacitance (farads).
    pub r1: f32,
    /// Fast polarization capacitance (farads).
    pub c1: f32,
    /// Slow polarization resistance (ohms).
    pub r2: f32,
    /// Slow polarization capacitance (farads).
    pub c2: f32,
    /// Thermal mass times specific heat, J/K.
    pub heat_capacity: f32,
    /// Thermal coupling to ambient, W/K.
    pub thermal_conductance: f32,
    /// Ambient temperature, °C.
    pub ambient_c: f32,
    /// Resistance growth factor per unit SoH loss
    /// (`r = r_nominal * (1 + k * (1 - soh))`).
    pub aging_resistance_factor: f32,
    /// Arrhenius-style temperature sensitivity of the series resistance:
    /// `r(T) = r · exp(k_T · (T_ref − T))` with `T_ref = 25 °C`. Cold
    /// cells have markedly higher internal resistance; ~0.02/K is a
    /// typical Li-ion value.
    pub temp_resistance_factor: f32,
    /// OCV hysteresis half-width (volts): the open-circuit voltage relaxes
    /// toward `ocv(soc) + h` after charging and `ocv(soc) − h` after
    /// discharging. Set 0 to disable.
    pub hysteresis_v: f32,
}

impl Default for CellParams {
    /// Typical values for a 3.0 Ah 18650 NMC cell.
    fn default() -> Self {
        CellParams {
            capacity_ah: 3.0,
            r0: 0.030,
            r1: 0.015,
            c1: 2_000.0,
            r2: 0.025,
            c2: 60_000.0,
            heat_capacity: 45.0,
            thermal_conductance: 0.08,
            ambient_c: 23.0,
            aging_resistance_factor: 1.5,
            temp_resistance_factor: 0.02,
            hysteresis_v: 0.008,
        }
    }
}

impl CellParams {
    /// Perturb electrical parameters by the given relative fractions (the
    /// paper "generates each cycle with slightly altered model
    /// parameters" to diversify the data).
    pub fn perturbed(mut self, rel: impl Fn(usize) -> f32) -> Self {
        self.capacity_ah *= 1.0 + rel(0);
        self.r0 *= 1.0 + rel(1);
        self.r1 *= 1.0 + rel(2);
        self.c1 *= 1.0 + rel(3);
        self.r2 *= 1.0 + rel(4);
        self.c2 *= 1.0 + rel(5);
        self
    }
}

/// Dynamic state of a simulated cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellState {
    /// State of charge in `[0, 1]`.
    pub soc: f32,
    /// Voltage across the fast RC pair (V).
    pub v1: f32,
    /// Voltage across the slow RC pair (V).
    pub v2: f32,
    /// Cell temperature (°C).
    pub temperature_c: f32,
    /// Cumulative discharged charge (Ah) since reset.
    pub discharged_ah: f32,
    /// Hysteresis state in `[-1, 1]`: −1 after sustained discharge, +1
    /// after sustained charge (scales the configured hysteresis width).
    pub hysteresis: f32,
}

/// Open-circuit voltage of an NMC 18650 cell as a piecewise-linear curve
/// over SoC (typical datasheet shape, 3.0 V at empty to 4.2 V at full).
pub fn ocv(soc: f32) -> f32 {
    const POINTS: [(f32, f32); 9] = [
        (0.00, 3.00),
        (0.05, 3.30),
        (0.10, 3.45),
        (0.25, 3.55),
        (0.50, 3.68),
        (0.75, 3.85),
        (0.90, 4.00),
        (0.95, 4.08),
        (1.00, 4.20),
    ];
    let s = soc.clamp(0.0, 1.0);
    for w in POINTS.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if s <= x1 {
            return y0 + (y1 - y0) * (s - x0) / (x1 - x0);
        }
    }
    POINTS[POINTS.len() - 1].1
}

/// A simulated cell: parameters + aging + dynamic state.
#[derive(Debug, Clone)]
pub struct EcmCell {
    params: CellParams,
    /// State of health in `(0, 1]`; scales capacity, grows resistance.
    soh: f32,
    state: CellState,
}

impl EcmCell {
    /// A fresh, fully charged cell at ambient temperature.
    pub fn new(params: CellParams) -> Self {
        EcmCell {
            state: CellState {
                soc: 1.0,
                v1: 0.0,
                v2: 0.0,
                temperature_c: params.ambient_c,
                discharged_ah: 0.0,
                hysteresis: 0.0,
            },
            soh: 1.0,
            params,
        }
    }

    /// Current dynamic state.
    pub fn state(&self) -> &CellState {
        &self.state
    }

    /// Current state of health.
    pub fn soh(&self) -> f32 {
        self.soh
    }

    /// Parameters (nominal, before aging effects).
    pub fn params(&self) -> &CellParams {
        &self.params
    }

    /// Effective capacity after aging (Ah).
    pub fn effective_capacity_ah(&self) -> f32 {
        self.params.capacity_ah * self.soh
    }

    /// Effective series resistance after aging (ohms), at 25 °C.
    pub fn effective_r0(&self) -> f32 {
        self.params.r0 * (1.0 + self.params.aging_resistance_factor * (1.0 - self.soh))
    }

    /// Series resistance including the temperature effect at the cell's
    /// current temperature (cold cells resist more).
    pub fn effective_r0_at_temp(&self) -> f32 {
        self.effective_r0() * (self.params.temp_resistance_factor * (25.0 - self.state.temperature_c)).exp()
    }

    /// Age the cell by reducing its SoH (clamped to `[0.05, 1]`) —
    /// the paper "decrements the state of health of the batteries every
    /// update cycle".
    pub fn age(&mut self, soh_decrement: f32) {
        self.soh = (self.soh - soh_decrement).clamp(0.05, 1.0);
    }

    /// Reset dynamic state to fully charged at ambient (start of a cycle).
    pub fn reset_full(&mut self) {
        self.state = CellState {
            soc: 1.0,
            v1: 0.0,
            v2: 0.0,
            temperature_c: self.params.ambient_c,
            discharged_ah: 0.0,
            hysteresis: 0.0,
        };
    }

    /// Advance the cell by `dt` seconds under `current` amperes
    /// (positive = discharge) and return the terminal voltage.
    pub fn step(&mut self, current: f32, dt: f32) -> f32 {
        assert!(dt > 0.0, "dt must be positive");
        let p = &self.params;
        // Temperature-dependent series resistance (Arrhenius-style).
        let r0 = self.effective_r0_at_temp();
        let cap_as = self.effective_capacity_ah() * 3600.0; // ampere-seconds

        // Coulomb counting.
        let s = &mut self.state;
        s.soc = (s.soc - current * dt / cap_as).clamp(0.0, 1.0);
        s.discharged_ah += current.max(0.0) * dt / 3600.0;

        // RC pairs: forward-Euler, stable for dt << R*C.
        s.v1 += dt * (current / p.c1 - s.v1 / (p.r1 * p.c1));
        s.v2 += dt * (current / p.c2 - s.v2 / (p.r2 * p.c2));

        // OCV hysteresis: the state relaxes toward −sign(I) at a rate
        // proportional to the charge throughput (Plett-style one-state
        // hysteresis model).
        if p.hysteresis_v > 0.0 && current != 0.0 {
            let target = if current > 0.0 { -1.0 } else { 1.0 };
            let rate = (current.abs() * dt / (0.05 * cap_as)).min(1.0);
            s.hysteresis += rate * (target - s.hysteresis);
        }

        // Lumped thermal node: ohmic heating minus convection.
        let heat_w = current * current * (r0 + p.r1 + p.r2);
        s.temperature_c += dt
            * (heat_w - p.thermal_conductance * (s.temperature_c - p.ambient_c))
            / p.heat_capacity;

        ocv(s.soc) + p.hysteresis_v * s.hysteresis - current * r0 - s.v1 - s.v2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocv_is_monotone_and_bounded() {
        let mut prev = ocv(0.0);
        assert!((prev - 3.0).abs() < 1e-6);
        for i in 1..=100 {
            let v = ocv(i as f32 / 100.0);
            assert!(v >= prev, "OCV must be non-decreasing in SoC");
            prev = v;
        }
        assert!((ocv(1.0) - 4.2).abs() < 1e-6);
        // Out-of-range SoC clamps.
        assert_eq!(ocv(-0.5), ocv(0.0));
        assert_eq!(ocv(1.5), ocv(1.0));
    }

    #[test]
    fn discharge_lowers_soc_and_voltage() {
        let mut cell = EcmCell::new(CellParams::default());
        let v_start = cell.step(1.0, 1.0);
        // Discharge at 1C for ~15 minutes.
        let mut v_end = v_start;
        for _ in 0..900 {
            v_end = cell.step(3.0, 1.0);
        }
        assert!(cell.state().soc < 0.8, "soc {}", cell.state().soc);
        assert!(v_end < v_start, "{v_end} < {v_start}");
        assert!(cell.state().discharged_ah > 0.7);
    }

    #[test]
    fn rest_relaxes_polarization() {
        let mut cell = EcmCell::new(CellParams::default());
        for _ in 0..300 {
            cell.step(5.0, 1.0);
        }
        let v1_loaded = cell.state().v1;
        assert!(v1_loaded > 0.0);
        for _ in 0..3600 {
            cell.step(0.0, 1.0);
        }
        assert!(
            cell.state().v1 < v1_loaded * 0.05,
            "RC voltage should decay at rest: {} -> {}",
            v1_loaded,
            cell.state().v1
        );
    }

    #[test]
    fn heavy_load_heats_the_cell() {
        let mut cell = EcmCell::new(CellParams::default());
        for _ in 0..600 {
            cell.step(9.0, 1.0); // 3C
        }
        assert!(
            cell.state().temperature_c > cell.params().ambient_c + 1.0,
            "temperature {}",
            cell.state().temperature_c
        );
    }

    #[test]
    fn temperature_returns_toward_ambient_at_rest() {
        let mut cell = EcmCell::new(CellParams::default());
        for _ in 0..600 {
            cell.step(9.0, 1.0);
        }
        let hot = cell.state().temperature_c;
        for _ in 0..7200 {
            cell.step(0.0, 1.0);
        }
        assert!(cell.state().temperature_c < hot);
        assert!((cell.state().temperature_c - cell.params().ambient_c).abs() < 2.0);
    }

    #[test]
    fn aging_reduces_capacity_and_raises_resistance() {
        let mut cell = EcmCell::new(CellParams::default());
        let cap0 = cell.effective_capacity_ah();
        let r0_0 = cell.effective_r0();
        cell.age(0.1);
        assert!(cell.effective_capacity_ah() < cap0);
        assert!(cell.effective_r0() > r0_0);
        assert!((cell.soh() - 0.9).abs() < 1e-6);
        // SoH never collapses below the floor.
        for _ in 0..100 {
            cell.age(0.1);
        }
        assert!(cell.soh() >= 0.05);
    }

    #[test]
    fn aged_cell_sags_more_under_load() {
        let params = CellParams::default();
        let mut fresh = EcmCell::new(params);
        let mut aged = EcmCell::new(params);
        aged.age(0.3);
        let vf = fresh.step(6.0, 1.0);
        let va = aged.step(6.0, 1.0);
        assert!(va < vf, "aged cell must show larger IR drop: {va} vs {vf}");
    }

    #[test]
    fn charge_current_raises_soc() {
        let mut cell = EcmCell::new(CellParams::default());
        // Discharge some first.
        for _ in 0..1800 {
            cell.step(3.0, 1.0);
        }
        let soc = cell.state().soc;
        for _ in 0..600 {
            cell.step(-2.0, 1.0); // regen / charging
        }
        assert!(cell.state().soc > soc);
    }

    #[test]
    fn soc_clamps_at_empty() {
        let mut cell = EcmCell::new(CellParams::default());
        for _ in 0..36_000 {
            cell.step(10.0, 1.0);
        }
        assert_eq!(cell.state().soc, 0.0);
    }

    #[test]
    fn cold_cell_has_higher_resistance() {
        let params = CellParams { ambient_c: -10.0, ..CellParams::default() };
        let cold = EcmCell::new(params);
        let warm = EcmCell::new(CellParams::default());
        assert!(
            cold.effective_r0_at_temp() > warm.effective_r0_at_temp() * 1.5,
            "cold {} vs warm {}",
            cold.effective_r0_at_temp(),
            warm.effective_r0_at_temp()
        );
        // Which shows up as deeper voltage sag under the same load.
        let mut cold = cold;
        let mut warm = warm;
        assert!(cold.step(6.0, 1.0) < warm.step(6.0, 1.0));
    }

    #[test]
    fn hysteresis_shifts_rest_voltage_by_direction() {
        // Discharge to ~50% SoC, rest, note voltage; then reach the same
        // SoC by overshooting and charging back up — rest voltage must be
        // higher on the charge branch.
        let params = CellParams::default();
        let mut discharge_branch = EcmCell::new(params);
        while discharge_branch.state().soc > 0.5 {
            discharge_branch.step(3.0, 1.0);
        }
        let mut charge_branch = EcmCell::new(params);
        while charge_branch.state().soc > 0.4 {
            charge_branch.step(3.0, 1.0);
        }
        while charge_branch.state().soc < 0.5 {
            charge_branch.step(-3.0, 1.0);
        }
        // Long rest to let polarization die out; hysteresis persists.
        let mut vd = 0.0;
        let mut vc = 0.0;
        for _ in 0..7200 {
            vd = discharge_branch.step(0.0, 1.0);
            vc = charge_branch.step(0.0, 1.0);
        }
        assert!(
            vc > vd + 0.005,
            "charge-branch rest voltage {vc} should exceed discharge-branch {vd}"
        );
    }

    #[test]
    fn perturbed_changes_parameters() {
        let p = CellParams::default();
        let q = p.perturbed(|i| if i == 1 { 0.1 } else { 0.0 });
        assert!((q.r0 - p.r0 * 1.1).abs() < 1e-9);
        assert_eq!(q.c1, p.c1);
    }

    mod properties {
        use super::*;
        use mmm_util::{Rng, Xoshiro256pp};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Under any bounded current profile the simulation stays
            /// physical: finite voltage in a plausible window, SoC in
            /// [0,1], temperature bounded, hysteresis state in [-1,1].
            #[test]
            fn simulation_stays_physical(seed in 0u64..10_000, steps in 1usize..2_000) {
                let mut rng = Xoshiro256pp::new(seed);
                let mut cell = EcmCell::new(CellParams::default());
                for _ in 0..steps {
                    let current = rng.uniform(-6.0, 9.0);
                    let v = cell.step(current, 1.0);
                    prop_assert!(v.is_finite());
                    prop_assert!((1.5..5.5).contains(&v), "voltage {v} out of window");
                    let s = cell.state();
                    prop_assert!((0.0..=1.0).contains(&s.soc));
                    prop_assert!((-1.0..=1.0).contains(&s.hysteresis));
                    prop_assert!((-40.0..150.0).contains(&s.temperature_c));
                }
            }

            /// Pure discharge never raises SoC; pure charge never lowers it.
            #[test]
            fn soc_is_monotone_in_current_sign(seed in 0u64..10_000) {
                let mut rng = Xoshiro256pp::new(seed);
                let mut cell = EcmCell::new(CellParams::default());
                let mut prev = cell.state().soc;
                for _ in 0..300 {
                    let i = rng.uniform(0.1, 8.0);
                    cell.step(i, 1.0);
                    prop_assert!(cell.state().soc <= prev);
                    prev = cell.state().soc;
                }
                for _ in 0..300 {
                    let i = rng.uniform(0.1, 5.0);
                    cell.step(-i, 1.0);
                    prop_assert!(cell.state().soc >= prev);
                    prev = cell.state().soc;
                }
            }

            /// The step function is deterministic for any input sequence.
            #[test]
            fn step_is_deterministic(seed in 0u64..10_000) {
                let mut rng = Xoshiro256pp::new(seed);
                let currents: Vec<f32> = (0..200).map(|_| rng.uniform(-5.0, 8.0)).collect();
                let run = |currents: &[f32]| {
                    let mut cell = EcmCell::new(CellParams::default());
                    currents.iter().map(|&i| cell.step(i, 1.0)).collect::<Vec<f32>>()
                };
                prop_assert_eq!(run(&currents), run(&currents));
            }
        }
    }

    #[test]
    fn reset_full_restores_initial_state() {
        let mut cell = EcmCell::new(CellParams::default());
        for _ in 0..100 {
            cell.step(5.0, 1.0);
        }
        cell.age(0.05);
        cell.reset_full();
        assert_eq!(cell.state().soc, 1.0);
        assert_eq!(cell.state().v1, 0.0);
        assert_eq!(cell.state().discharged_ah, 0.0);
        assert!((cell.soh() - 0.95).abs() < 1e-6, "aging survives reset");
    }
}
