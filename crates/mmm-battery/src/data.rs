//! Training-data synthesis for battery cell models.
//!
//! Mirrors the paper's data pipeline (§4.1): run the ECM over a driving
//! cycle, record the inputs the FFNN sees — current, temperature, charge
//! and state of charge — and the voltage response as the target; perturb
//! cell parameters per cycle, decrement SoH per update cycle to create
//! aging trends, corrupt with measurement noise, and normalize features
//! to an equal scale.

use crate::cycles::{generate_driving_cycle, CycleConfig};
use crate::ecm::{CellParams, EcmCell};
use mmm_util::{Rng, SplitMix64, Xoshiro256pp};

/// Number of input features per sample:
/// `(current, temperature, discharged charge, SoC)`.
pub const FEATURES: usize = 4;

/// Flat sample storage: `features` is row-major `[n, FEATURES]`,
/// `targets` is `[n]` voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSamples {
    /// Row-major feature matrix, `n * FEATURES` values, normalized.
    pub features: Vec<f32>,
    /// Voltage targets, `n` values, normalized.
    pub targets: Vec<f32>,
}

impl RawSamples {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Append another batch of samples.
    pub fn extend(&mut self, other: &RawSamples) {
        self.features.extend_from_slice(&other.features);
        self.targets.extend_from_slice(&other.targets);
    }
}

/// Configuration of per-cell data generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDataConfig {
    /// Driving cycle shape.
    pub cycle: CycleConfig,
    /// How many discharge cycles to simulate.
    pub n_cycles: usize,
    /// Keep every k-th simulation step as a training sample (the paper's
    /// 342 M raw samples are downsampled the same way in spirit: we never
    /// need every 1 Hz step to fit a 5k-parameter model).
    pub sample_every: usize,
    /// SoH lost per update cycle ("different aging trends from the
    /// initial SoH until the battery's end-of-life").
    pub soh_decrement: f32,
    /// Standard deviation of additive measurement noise on the voltage
    /// target (volts), "to prevent models from training with equal data".
    pub noise_v: f32,
    /// Relative magnitude of the per-cycle cell-parameter perturbation.
    pub param_jitter: f32,
}

impl Default for CellDataConfig {
    fn default() -> Self {
        CellDataConfig {
            cycle: CycleConfig::default(),
            n_cycles: 2,
            sample_every: 5,
            soh_decrement: 0.02,
            noise_v: 0.005,
            param_jitter: 0.03,
        }
    }
}

/// Feature normalization constants (fixed, so every model of the fleet
/// sees the same scale — "we normalize the data to provide an equal
/// feature scale").
mod norm {
    /// (offset, scale) per feature: x' = (x - offset) / scale.
    pub const CURRENT: (f32, f32) = (2.0, 4.0);
    pub const TEMPERATURE: (f32, f32) = (25.0, 10.0);
    pub const CHARGE: (f32, f32) = (1.5, 1.5);
    pub const SOC: (f32, f32) = (0.5, 0.5);
    pub const VOLTAGE: (f32, f32) = (3.7, 0.6);
}

/// Normalize one feature row in place order: current, temp, charge, SoC.
fn push_sample(out: &mut RawSamples, current: f32, temp: f32, charge: f32, soc: f32, voltage: f32) {
    out.features.push((current - norm::CURRENT.0) / norm::CURRENT.1);
    out.features.push((temp - norm::TEMPERATURE.0) / norm::TEMPERATURE.1);
    out.features.push((charge - norm::CHARGE.0) / norm::CHARGE.1);
    out.features.push((soc - norm::SOC.0) / norm::SOC.1);
    out.targets.push((voltage - norm::VOLTAGE.0) / norm::VOLTAGE.1);
}

/// Denormalize a model output back to volts (for reporting/metrics).
pub fn denormalize_voltage(v_norm: f32) -> f32 {
    v_norm * norm::VOLTAGE.1 + norm::VOLTAGE.0
}

/// Generate training samples for one cell at one update cycle.
///
/// * `cell_id` individualizes the cell (parameter perturbation, noise).
/// * `update_cycle` selects the aging state: the cell's SoH is
///   `1 - update_cycle * soh_decrement`, so data drifts between update
///   cycles exactly like the paper's aging trends.
///
/// Deterministic in `(cfg, cell_id, update_cycle, seed)`.
pub fn generate_cell_data(cfg: &CellDataConfig, cell_id: u64, update_cycle: u64, seed: u64) -> RawSamples {
    assert!(cfg.sample_every > 0, "sample_every must be positive");
    let mut out = RawSamples { features: Vec::new(), targets: Vec::new() };

    for cycle_idx in 0..cfg.n_cycles {
        // Per-cell, per-cycle generators.
        let mix = SplitMix64::derive(seed, "cell-data", cell_id ^ (update_cycle << 32) ^ ((cycle_idx as u64) << 48));
        let mut jitter_rng = Xoshiro256pp::new(SplitMix64::derive(mix, "param-jitter", 0));
        let mut noise_rng = Xoshiro256pp::new(SplitMix64::derive(mix, "noise", 0));

        let jitter = cfg.param_jitter;
        let mut draws = [0f32; 6];
        for d in draws.iter_mut() {
            *d = jitter * jitter_rng.normal();
        }
        let params = CellParams::default().perturbed(|i| draws[i]);
        let mut cell = EcmCell::new(params);
        // Apply the aging state for this update cycle.
        cell.age(cfg.soh_decrement * update_cycle as f32);
        cell.reset_full();

        let cycle = generate_driving_cycle(&cfg.cycle, mix);
        for (t, &current) in cycle.iter().enumerate() {
            let v = cell.step(current, 1.0);
            if t % cfg.sample_every == 0 {
                let s = cell.state();
                let v_noisy = v + cfg.noise_v * noise_rng.normal();
                push_sample(&mut out, current, s.temperature_c, s.discharged_ah, s.soc, v_noisy);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CellDataConfig {
        CellDataConfig {
            cycle: CycleConfig { duration_s: 300, load_scale: 1.0 },
            n_cycles: 1,
            sample_every: 3,
            ..CellDataConfig::default()
        }
    }

    #[test]
    fn sample_counts_match_config() {
        let cfg = small_cfg();
        let d = generate_cell_data(&cfg, 0, 0, 1);
        assert_eq!(d.len(), 100); // 300 steps / every 3
        assert_eq!(d.features.len(), d.len() * FEATURES);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg();
        assert_eq!(generate_cell_data(&cfg, 5, 1, 9), generate_cell_data(&cfg, 5, 1, 9));
    }

    #[test]
    fn cells_see_different_data() {
        let cfg = small_cfg();
        let a = generate_cell_data(&cfg, 1, 0, 9);
        let b = generate_cell_data(&cfg, 2, 0, 9);
        assert_ne!(a, b, "per-cell perturbation and noise must differ");
    }

    #[test]
    fn update_cycles_shift_the_distribution() {
        let cfg = small_cfg();
        let young = generate_cell_data(&cfg, 1, 0, 9);
        let old = generate_cell_data(&cfg, 1, 10, 9);
        assert_ne!(young, old, "aging must change the data");
        // Older cell has lower average voltage under the same load model.
        let mean = |d: &RawSamples| d.targets.iter().sum::<f32>() / d.len() as f32;
        assert!(mean(&old) < mean(&young) + 0.05);
    }

    #[test]
    fn features_are_normalized_to_sane_range() {
        let cfg = small_cfg();
        let d = generate_cell_data(&cfg, 3, 2, 4);
        for &f in &d.features {
            assert!(f.abs() < 10.0, "normalized feature out of range: {f}");
        }
        for &t in &d.targets {
            assert!(t.abs() < 10.0, "normalized target out of range: {t}");
        }
    }

    #[test]
    fn denormalize_inverts_target_scale() {
        // A normalized value of 0 maps back to the nominal 3.7 V.
        assert!((denormalize_voltage(0.0) - 3.7).abs() < 1e-6);
        assert!((denormalize_voltage(1.0) - 4.3).abs() < 1e-6);
    }

    #[test]
    fn extend_concatenates() {
        let cfg = small_cfg();
        let mut a = generate_cell_data(&cfg, 1, 0, 9);
        let b = generate_cell_data(&cfg, 2, 0, 9);
        let n = a.len();
        a.extend(&b);
        assert_eq!(a.len(), n + b.len());
    }
}
