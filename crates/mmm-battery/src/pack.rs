//! Battery-pack simulation with cell inhomogeneities.
//!
//! The paper's motivation (§1) is that "electric car batteries can
//! consist of thousands of individual cells, each possibly being
//! associated with its own DL model", because per-cell models "provide a
//! spatial resolution regarding, for instance, temperature evolution,
//! cell aging, or current distribution". Its data-generation cites
//! Neupert & Kowal, *Inhomogeneities in Battery Packs* — exactly what
//! this module reproduces: a series string of 2-RC cells with
//! manufacturing parameter spread, a position-dependent thermal
//! environment (center cells run hotter), and per-cell aging rates, so
//! each cell genuinely needs its own model.

use crate::ecm::{CellParams, CellState, EcmCell};
use mmm_util::{Rng, SplitMix64, Xoshiro256pp};

/// Configuration of a simulated pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackConfig {
    /// Number of series-connected cells.
    pub n_cells: usize,
    /// Relative σ of the manufacturing parameter spread (capacity and
    /// resistances), e.g. 0.02 = 2 %.
    pub param_spread: f32,
    /// Extra ambient temperature at the pack center relative to the
    /// edges (°C); real packs cool worst in the middle.
    pub center_temp_rise_c: f32,
    /// Relative σ of per-cell aging-rate variation.
    pub aging_spread: f32,
}

impl Default for PackConfig {
    fn default() -> Self {
        PackConfig {
            n_cells: 96, // a typical series string
            param_spread: 0.02,
            center_temp_rise_c: 6.0,
            aging_spread: 0.25,
        }
    }
}

/// A series string of inhomogeneous cells sharing one current.
#[derive(Debug, Clone)]
pub struct Pack {
    cells: Vec<EcmCell>,
    aging_rates: Vec<f32>,
}

impl Pack {
    /// Build a pack with seed-derived inhomogeneities.
    pub fn new(cfg: &PackConfig, seed: u64) -> Self {
        assert!(cfg.n_cells > 0, "a pack needs at least one cell");
        let mut cells = Vec::with_capacity(cfg.n_cells);
        let mut aging_rates = Vec::with_capacity(cfg.n_cells);
        for i in 0..cfg.n_cells {
            let mut rng = Xoshiro256pp::new(SplitMix64::derive(seed, "pack-cell", i as u64));
            let mut draws = [0f32; 6];
            for d in draws.iter_mut() {
                *d = cfg.param_spread * rng.normal();
            }
            let mut params = CellParams::default().perturbed(|j| draws[j]);
            // Position-dependent ambient: a parabola peaking mid-string.
            let x = if cfg.n_cells == 1 {
                0.0
            } else {
                i as f32 / (cfg.n_cells - 1) as f32
            };
            params.ambient_c += cfg.center_temp_rise_c * (1.0 - (2.0 * x - 1.0).powi(2));
            cells.push(EcmCell::new(params));
            // Aging rate multiplier: hotter + weaker cells age faster.
            aging_rates.push((1.0 + cfg.aging_spread * rng.normal()).max(0.2));
        }
        Pack { cells, aging_rates }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the pack has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Immutable access to one cell.
    pub fn cell(&self, i: usize) -> &EcmCell {
        &self.cells[i]
    }

    /// Step the whole string by `dt` seconds under the shared `current`;
    /// returns each cell's terminal voltage.
    pub fn step(&mut self, current: f32, dt: f32) -> Vec<f32> {
        self.cells.iter_mut().map(|c| c.step(current, dt)).collect()
    }

    /// Pack terminal voltage: sum over the series string.
    pub fn pack_voltage(&mut self, current: f32, dt: f32) -> f32 {
        self.step(current, dt).iter().sum()
    }

    /// Age every cell by `base_decrement` scaled by its individual
    /// aging rate (one update cycle of calendar+cycle aging).
    pub fn age_cycle(&mut self, base_decrement: f32) {
        for (cell, &rate) in self.cells.iter_mut().zip(&self.aging_rates) {
            cell.age(base_decrement * rate);
        }
    }

    /// Reset all cells to fully charged (keeps aging state).
    pub fn reset_full(&mut self) {
        for c in &mut self.cells {
            c.reset_full();
        }
    }

    /// Spread of state-of-health across the pack: `(min, max)`.
    pub fn soh_range(&self) -> (f32, f32) {
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for c in &self.cells {
            lo = lo.min(c.soh());
            hi = hi.max(c.soh());
        }
        (lo, hi)
    }

    /// Per-cell dynamic states (for spatial-resolution analyses).
    pub fn states(&self) -> Vec<&CellState> {
        self.cells.iter().map(|c| c.state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic() {
        let cfg = PackConfig { n_cells: 8, ..PackConfig::default() };
        let mut a = Pack::new(&cfg, 5);
        let mut b = Pack::new(&cfg, 5);
        let va = a.step(3.0, 1.0);
        let vb = b.step(3.0, 1.0);
        assert_eq!(va, vb);
        let mut c = Pack::new(&cfg, 6);
        assert_ne!(va, c.step(3.0, 1.0));
    }

    #[test]
    fn cells_are_inhomogeneous() {
        let cfg = PackConfig { n_cells: 12, ..PackConfig::default() };
        let mut pack = Pack::new(&cfg, 1);
        let v = pack.step(5.0, 1.0);
        let (min, max) = v.iter().fold((f32::MAX, f32::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!(max - min > 1e-4, "parameter spread must show in the voltages");
    }

    #[test]
    fn center_cells_run_hotter() {
        let cfg = PackConfig { n_cells: 11, param_spread: 0.0, ..PackConfig::default() };
        let mut pack = Pack::new(&cfg, 2);
        // Heavy load for 10 minutes.
        for _ in 0..600 {
            pack.step(9.0, 1.0);
        }
        let states = pack.states();
        let edge = states[0].temperature_c;
        let center = states[5].temperature_c;
        assert!(
            center > edge + 2.0,
            "center {center} °C should exceed edge {edge} °C"
        );
    }

    #[test]
    fn pack_voltage_is_sum_of_cells() {
        let cfg = PackConfig { n_cells: 4, ..PackConfig::default() };
        let mut a = Pack::new(&cfg, 3);
        let mut b = Pack::new(&cfg, 3);
        let sum: f32 = a.step(2.0, 1.0).iter().sum();
        assert!((b.pack_voltage(2.0, 1.0) - sum).abs() < 1e-5);
        // Roughly 4 × one cell's ~4.2 V at full charge.
        assert!((14.0..18.0).contains(&sum), "pack voltage {sum}");
    }

    #[test]
    fn aging_diverges_across_cells() {
        let cfg = PackConfig { n_cells: 16, ..PackConfig::default() };
        let mut pack = Pack::new(&cfg, 4);
        for _ in 0..10 {
            pack.age_cycle(0.01);
        }
        let (lo, hi) = pack.soh_range();
        assert!(hi > lo, "aging spread must open a SoH gap");
        assert!(hi <= 1.0 && lo >= 0.05);
    }

    #[test]
    fn single_cell_pack_is_valid() {
        let cfg = PackConfig { n_cells: 1, ..PackConfig::default() };
        let mut pack = Pack::new(&cfg, 9);
        assert_eq!(pack.len(), 1);
        let v = pack.pack_voltage(1.0, 1.0);
        assert!((3.0..4.5).contains(&v));
    }
}
