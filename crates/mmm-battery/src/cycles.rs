//! Synthetic driving-current cycles.
//!
//! The paper drives its ECM with "records of real-world driving discharge
//! cycles provided by Steinstraeter et al." — a dataset we do not have.
//! This generator substitutes a stochastic cycle with the same structure
//! real drive logs show: alternating phases (idle, urban stop-and-go,
//! rural, highway) with phase-dependent mean load, second-scale
//! micro-transients, and occasional regenerative-braking (negative
//! current) events. Everything is a pure function of the seed.

use mmm_util::{Rng, SplitMix64, Xoshiro256pp};

/// Configuration of the cycle generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleConfig {
    /// Cycle length in seconds (one sample per second).
    pub duration_s: usize,
    /// Scale factor on all currents (1.0 = one 18650 cell's share of a
    /// mid-size EV's load, roughly 0–3 C).
    pub load_scale: f32,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig { duration_s: 1800, load_scale: 1.0 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Urban,
    Rural,
    Highway,
}

impl Phase {
    /// Mean current (A) and fluctuation scale for each phase.
    fn profile(self) -> (f32, f32) {
        match self {
            Phase::Idle => (0.05, 0.02),
            Phase::Urban => (1.2, 0.9),
            Phase::Rural => (2.4, 0.7),
            Phase::Highway => (4.5, 1.0),
        }
    }

    /// Phase transition table: (next phase, probability weight).
    fn next(self, r: f32) -> Phase {
        // Simple Markov structure biased toward staying off-idle.
        match self {
            Phase::Idle => {
                if r < 0.6 {
                    Phase::Urban
                } else if r < 0.85 {
                    Phase::Rural
                } else {
                    Phase::Idle
                }
            }
            Phase::Urban => {
                if r < 0.35 {
                    Phase::Urban
                } else if r < 0.6 {
                    Phase::Rural
                } else if r < 0.8 {
                    Phase::Idle
                } else {
                    Phase::Highway
                }
            }
            Phase::Rural => {
                if r < 0.4 {
                    Phase::Highway
                } else if r < 0.7 {
                    Phase::Urban
                } else {
                    Phase::Rural
                }
            }
            Phase::Highway => {
                if r < 0.5 {
                    Phase::Highway
                } else if r < 0.8 {
                    Phase::Rural
                } else {
                    Phase::Urban
                }
            }
        }
    }
}

/// Generate one driving discharge cycle: a current time-series in amperes
/// at 1 Hz, positive = discharge, negative = regenerative braking.
pub fn generate_driving_cycle(cfg: &CycleConfig, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256pp::new(SplitMix64::derive(seed, "driving-cycle", 0));
    let mut out = Vec::with_capacity(cfg.duration_s);
    let mut phase = Phase::Urban;
    let mut remaining = 0usize;
    let mut smooth = 0.0f32; // low-pass state so current moves like a vehicle

    for _ in 0..cfg.duration_s {
        if remaining == 0 {
            phase = phase.next(rng.next_f32());
            // Phase lengths: 30 s – 3 min.
            remaining = 30 + rng.below(150) as usize;
        }
        remaining -= 1;

        let (mean, fluct) = phase.profile();
        let mut target = mean + fluct * rng.normal();
        // Occasional regenerative braking while moving.
        if phase != Phase::Idle && rng.next_f32() < 0.06 {
            target = -(0.5 + 1.5 * rng.next_f32());
        }
        // First-order lag (~5 s) toward the target.
        smooth += 0.2 * (target - smooth);
        out.push(smooth * cfg.load_scale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_deterministic() {
        let cfg = CycleConfig::default();
        assert_eq!(generate_driving_cycle(&cfg, 1), generate_driving_cycle(&cfg, 1));
        assert_ne!(generate_driving_cycle(&cfg, 1), generate_driving_cycle(&cfg, 2));
    }

    #[test]
    fn cycle_has_requested_length() {
        let cfg = CycleConfig { duration_s: 123, load_scale: 1.0 };
        assert_eq!(generate_driving_cycle(&cfg, 0).len(), 123);
    }

    #[test]
    fn cycle_is_mostly_discharge_with_some_regen() {
        let cfg = CycleConfig { duration_s: 3600, load_scale: 1.0 };
        let cycle = generate_driving_cycle(&cfg, 7);
        let mean: f32 = cycle.iter().sum::<f32>() / cycle.len() as f32;
        assert!(mean > 0.3, "net discharge expected, mean={mean}");
        assert!(cycle.iter().any(|&i| i < -0.1), "some regenerative braking expected");
        assert!(
            cycle.iter().all(|&i| i.abs() < 12.0),
            "currents stay in a physical range"
        );
    }

    #[test]
    fn load_scale_scales_linearly() {
        let base = CycleConfig { duration_s: 200, load_scale: 1.0 };
        let doubled = CycleConfig { duration_s: 200, load_scale: 2.0 };
        let a = generate_driving_cycle(&base, 3);
        let b = generate_driving_cycle(&doubled, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((y - 2.0 * x).abs() < 1e-5);
        }
    }

    #[test]
    fn current_moves_smoothly() {
        let cfg = CycleConfig { duration_s: 1000, load_scale: 1.0 };
        let cycle = generate_driving_cycle(&cfg, 11);
        let max_jump = cycle
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f32, f32::max);
        assert!(max_jump < 3.0, "1-second current jumps stay vehicle-like: {max_jump}");
    }
}
