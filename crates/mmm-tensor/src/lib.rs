#![warn(missing_docs)]

//! Dense `f32` tensors and the numeric kernels used by `mmm-dnn`.
//!
//! This crate is the workspace's PyTorch stand-in for *storage and
//! management* purposes: the model-management layer only cares about
//! parameter counts, layouts and bytes, while the Provenance approach needs
//! deterministic forward/backward passes. Tensors are owned, contiguous,
//! row-major `Vec<f32>` buffers — no views, no autograd graph; backprop is
//! written explicitly per layer in `mmm-dnn`.
//!
//! Kernels are deliberately straightforward (blocked matmul, direct
//! convolution): models in the paper have 5k–10k parameters, so clarity and
//! bit-determinism beat BLAS-level throughput here.

mod conv;
mod matmul;
mod ops;
mod pool;
mod tensor;

pub use conv::{conv2d, conv2d_backward, conv2d_im2col, Conv2dGrads};
pub use matmul::{matmul, matmul_nt, matmul_tn};
pub use pool::{maxpool2d, maxpool2d_backward};
pub use tensor::Tensor;
