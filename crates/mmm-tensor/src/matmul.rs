//! Matrix multiplication kernels.
//!
//! Three variants cover everything a fully-connected layer's forward and
//! backward passes need without materializing transposes:
//!
//! * [`matmul`]    — `C = A · B`
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients)
//!
//! The kernels use the classic i-k-j loop order so the inner loop streams
//! over contiguous rows — good cache behaviour without unsafe code or
//! explicit SIMD. Accumulation order is fixed, keeping results
//! bit-deterministic across runs (required by the Provenance approach).

use crate::Tensor;

/// `C[m,n] = A[m,k] · B[k,n]`.
///
/// # Panics
/// Panics if the operands are not matrices with compatible inner dims.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul: B must be 2-D");
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(ka, kb, "matmul: inner dims differ ({ka} vs {kb})");

    let mut c = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for k in 0..ka {
            let aik = ad[i * ka + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    Tensor::from_vec([m, n], c)
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_tn: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_tn: B must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (mb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(m, mb, "matmul_tn: outer dims differ ({m} vs {mb})");

    let mut c = vec![0.0f32; k * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let brow = &bd[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    Tensor::from_vec([k, n], c)
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_nt: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_nt: B must be 2-D");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let (k, nb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(n, nb, "matmul_nt: inner dims differ ({n} vs {nb})");

    let mut c = vec![0.0f32; m * k];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * n..(i + 1) * n];
        for j in 0..k {
            let brow = &bd[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * k + j] = acc;
        }
    }
    Tensor::from_vec([m, k], c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::{Rng, Xoshiro256pp};
    use proptest::prelude::*;

    fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256pp::new(1);
        let a = Tensor::rand_normal([4, 4], 0.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros([4, 4]);
        for i in 0..4 {
            eye.set2(i, i, 1.0);
        }
        assert!(approx_eq(&matmul(&a, &eye), &a, 1e-6));
        assert!(approx_eq(&matmul(&eye, &a), &a, 1e-6));
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Xoshiro256pp::new(2);
        let a = Tensor::rand_normal([5, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([5, 4], 0.0, 1.0, &mut rng);
        assert!(approx_eq(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5));
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Xoshiro256pp::new(3);
        let a = Tensor::rand_normal([5, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([4, 3], 0.0, 1.0, &mut rng);
        assert!(approx_eq(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn empty_dims_are_fine() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        assert_eq!(matmul(&a, &b).shape(), &[0, 2]);
        let c = Tensor::zeros([2, 0]);
        let d = Tensor::zeros([0, 5]);
        let e = matmul(&c, &d);
        assert_eq!(e.shape(), &[2, 5]);
        assert!(e.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = Xoshiro256pp::new(9);
        let a = Tensor::rand_normal([16, 16], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal([16, 16], 0.0, 1.0, &mut r1);
        let c1 = matmul(&a, &b);
        let c2 = matmul(&a, &b);
        assert_eq!(c1.data(), c2.data(), "bit-identical accumulation");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matmul_distributes_over_add(seed in 0u64..1000) {
            let mut rng = Xoshiro256pp::new(seed);
            let m = 1 + (rng.below(6) as usize);
            let k = 1 + (rng.below(6) as usize);
            let n = 1 + (rng.below(6) as usize);
            let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            let c = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            let lhs = matmul(&a, &b.add(&c));
            let rhs = matmul(&a, &b).add(&matmul(&a, &c));
            prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
        }
    }
}
