//! Elementwise and reduction operations on [`Tensor`].
//!
//! Implemented as inherent methods so call sites read naturally
//! (`x.add(&y)`, `x.map(f)`). All binary ops require identical shapes
//! except the explicitly-named broadcast helpers used by bias addition.

use crate::Tensor;

impl Tensor {
    /// Elementwise sum; shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.shape().to_vec(), self.data().iter().map(|&x| f(x)).collect())
    }

    /// Apply `f` in place to every element.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combine two same-shape tensors elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.shape().to_vec(),
            self.data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// `self += k * other`, in place (the SGD update kernel).
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += k * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Add a `[cols]` bias vector to every row of a `[rows, cols]` matrix.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "add_row_broadcast requires a matrix");
        assert_eq!(
            bias.len(),
            self.shape()[1],
            "bias length {} does not match row width {}",
            bias.len(),
            self.shape()[1]
        );
        let mut out = self.clone();
        let w = out.shape()[1];
        let rows = out.shape()[0];
        for r in 0..rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.data()) {
                *o += b;
            }
        }
        let _ = w;
        out
    }

    /// Column-wise sum of a `[rows, cols]` matrix, giving a `[cols]` vector
    /// (the bias-gradient kernel).
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_rows requires a matrix");
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x;
            }
        }
        Tensor::from_vec([c], out)
    }

    /// Index of the maximum element in each row of a `[rows, cols]` matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a matrix");
        (0..self.shape()[0])
            .map(|i| {
                let row = self.row(i);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate().skip(1) {
                    // Strict > keeps the first maximum on ties.
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec([data.len()], data.to_vec())
    }

    #[test]
    fn binary_ops() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let _ = t(&[1., 2.]).add(&t(&[1., 2., 3.]));
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut w = t(&[1., 1., 1.]);
        let g = t(&[1., 2., 3.]);
        w.axpy(-0.5, &g);
        assert_eq!(w.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sq_norm(), 30.0);
        assert_eq!(Tensor::zeros([0]).mean(), 0.0);
    }

    #[test]
    fn row_broadcast_and_sum_rows() {
        let m = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(&[10., 20., 30.]);
        let y = m.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(m.sum_rows().data(), &[5., 7., 9.]);
    }

    #[test]
    fn argmax_rows_picks_first_max_on_ties() {
        let m = Tensor::from_vec([2, 3], vec![0., 5., 5., 7., 1., 2.]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn map_inplace_matches_map() {
        let a = Tensor::from_vec([2, 2], vec![-1., 2., -3., 4.]);
        let mut b = a.clone();
        b.map_inplace(|x| x.max(0.0));
        assert_eq!(b, a.map(|x| x.max(0.0)));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(xs in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
            let a = t(&xs);
            let b = a.scale(0.5);
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_sub_then_add_roundtrips(xs in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
            let a = t(&xs);
            let b = a.map(|x| x * 0.25 + 1.0);
            let c = a.sub(&b).add(&b);
            for (x, y) in c.data().iter().zip(a.data()) {
                prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5));
            }
        }
    }
}
