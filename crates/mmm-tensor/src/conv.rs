//! Direct 2-D convolution (forward and backward).
//!
//! Layout follows the PyTorch convention: inputs are `[N, C, H, W]`,
//! weights are `[O, C, KH, KW]`, bias is `[O]`. Stride and symmetric zero
//! padding are supported — sufficient for the paper's CIFAR model.

use crate::Tensor;

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the weights, `[O, C, KH, KW]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub bias: Tensor,
}

fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if kernel > padded {
        // No valid placement: an empty output (saturating arithmetic
        // would wrongly report a 1-wide output here).
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

/// Forward 2-D convolution.
///
/// # Panics
/// Panics on mismatched channel counts or non-4-D operands.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, stride: usize, pad: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d: input must be [N,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d: weight must be [O,C,KH,KW]");
    assert!(stride > 0, "conv2d: stride must be positive");
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (o, cw, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    assert_eq!(c, cw, "conv2d: channel mismatch ({c} vs {cw})");
    assert_eq!(bias.len(), o, "conv2d: bias length must equal out channels");

    let oh = out_dim(h, kh, stride, pad);
    let ow = out_dim(w, kw, stride, pad);
    let mut out = vec![0.0f32; n * o * oh * ow];
    let id = input.data();
    let wd = weight.data();
    let bd = bias.data();

    for ni in 0..n {
        for oi in 0..o {
            let b = bd[oi];
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = b;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (y * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (x * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let iv = id[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                                let wv = wd[((oi * c + ci) * kh + ky) * kw + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[((ni * o + oi) * oh + y) * ow + x] = acc;
                }
            }
        }
    }
    Tensor::from_vec([n, o, oh, ow], out)
}

/// Forward convolution via im2col + GEMM: lower each receptive field
/// into a row of a `[N·OH·OW, C·KH·KW]` matrix, multiply by the weights
/// with the blocked matmul kernel, then scatter back to `[N,O,OH,OW]`.
///
/// Bit-identical to [`conv2d`] is **not** guaranteed (different
/// accumulation order), but results agree to floating-point tolerance;
/// use the direct kernel wherever replay-exactness matters (training),
/// and this one for bulk inference. Typically faster for larger
/// channel counts because the inner loop becomes a dense GEMM.
pub fn conv2d_im2col(input: &Tensor, weight: &Tensor, bias: &Tensor, stride: usize, pad: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d_im2col: input must be [N,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d_im2col: weight must be [O,C,KH,KW]");
    assert!(stride > 0, "conv2d_im2col: stride must be positive");
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (o, cw, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    assert_eq!(c, cw, "conv2d_im2col: channel mismatch ({c} vs {cw})");
    assert_eq!(bias.len(), o, "conv2d_im2col: bias length must equal out channels");

    let oh = out_dim(h, kh, stride, pad);
    let ow = out_dim(w, kw, stride, pad);
    let k = c * kh * kw;
    let rows = n * oh * ow;

    // Lower: cols[row, c*kh*kw + ky*kw + kx] = input patch value.
    let mut cols = vec![0.0f32; rows * k];
    let id = input.data();
    for ni in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = (ni * oh + y) * ow + x;
                let base = row * k;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (y * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (x * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cols[base + (ci * kh + ky) * kw + kx] =
                                id[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    }

    // GEMM: [rows, k] · [o, k]ᵀ = [rows, o].
    let cols_t = Tensor::from_vec([rows, k], cols);
    let w_mat = weight.clone().reshape([o, k]);
    let prod = crate::matmul_nt(&cols_t, &w_mat);

    // Scatter to [N, O, OH, OW] and add bias.
    let mut out = vec![0.0f32; n * o * oh * ow];
    let pd = prod.data();
    let bd = bias.data();
    for ni in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = (ni * oh + y) * ow + x;
                for oi in 0..o {
                    out[((ni * o + oi) * oh + y) * ow + x] = pd[row * o + oi] + bd[oi];
                }
            }
        }
    }
    Tensor::from_vec([n, o, oh, ow], out)
}

/// Backward pass of [`conv2d`]: given `grad_out` (`[N, O, OH, OW]`),
/// compute gradients w.r.t. input, weight, and bias.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Conv2dGrads {
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (o, _, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    assert_eq!(grad_out.shape()[0], n, "conv2d_backward: batch mismatch");
    assert_eq!(grad_out.shape()[1], o, "conv2d_backward: out-channel mismatch");

    let mut gi = vec![0.0f32; n * c * h * w];
    let mut gw = vec![0.0f32; weight.len()];
    let mut gb = vec![0.0f32; o];
    let id = input.data();
    let wd = weight.data();
    let god = grad_out.data();

    for ni in 0..n {
        for oi in 0..o {
            for y in 0..oh {
                for x in 0..ow {
                    let g = god[((ni * o + oi) * oh + y) * ow + x];
                    if g == 0.0 {
                        continue;
                    }
                    gb[oi] += g;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (y * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (x * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let i_idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                                let w_idx = ((oi * c + ci) * kh + ky) * kw + kx;
                                gw[w_idx] += g * id[i_idx];
                                gi[i_idx] += g * wd[w_idx];
                            }
                        }
                    }
                }
            }
        }
    }

    Conv2dGrads {
        input: Tensor::from_vec([n, c, h, w], gi),
        weight: Tensor::from_vec(weight.shape().to_vec(), gw),
        bias: Tensor::from_vec([o], gb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::Xoshiro256pp;

    #[test]
    fn known_3x3_kernel_on_4x4() {
        // Single channel, identity-ish: kernel picks the center pixel.
        let input = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let mut k = vec![0.0f32; 9];
        k[4] = 1.0; // center tap
        let weight = Tensor::from_vec([1, 1, 3, 3], k);
        let bias = Tensor::zeros([1]);
        let out = conv2d(&input, &weight, &bias, 1, 1);
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        assert_eq!(out.data(), input.data(), "center-tap kernel with pad 1 is identity");
    }

    #[test]
    fn output_shape_with_stride_and_pad() {
        let input = Tensor::zeros([2, 3, 32, 32]);
        let weight = Tensor::zeros([8, 3, 5, 5]);
        let bias = Tensor::zeros([8]);
        let out = conv2d(&input, &weight, &bias, 2, 2);
        assert_eq!(out.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn bias_reaches_every_output() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        let weight = Tensor::zeros([2, 1, 3, 3]);
        let bias = Tensor::from_vec([2], vec![1.5, -2.0]);
        let out = conv2d(&input, &weight, &bias, 1, 1);
        for oi in 0..2 {
            for i in 0..16 {
                assert_eq!(out.data()[oi * 16 + i], bias.data()[oi]);
            }
        }
    }

    /// Finite-difference check of all three gradients on a small problem.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Xoshiro256pp::new(42);
        let input = Tensor::rand_normal([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal([3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::rand_normal([3], 0.0, 0.5, &mut rng);
        let (stride, pad) = (1, 1);

        // Loss = sum(conv output); then dL/dout = 1 everywhere.
        let out = conv2d(&input, &weight, &bias, stride, pad);
        let grad_out = Tensor::full(out.shape().to_vec(), 1.0);
        let grads = conv2d_backward(&input, &weight, &grad_out, stride, pad);

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, w: &Tensor, b: &Tensor| conv2d(inp, w, b, stride, pad).sum();

        // Check a sample of input positions.
        for &idx in &[0usize, 7, 24, 49] {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let an = grads.input.data()[idx];
            assert!((fd - an).abs() < 2e-2, "input grad at {idx}: fd={fd} an={an}");
        }
        // Check a sample of weight positions.
        for &idx in &[0usize, 5, 17, 53] {
            let mut plus = weight.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = weight.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let an = grads.weight.data()[idx];
            assert!((fd - an).abs() < 2e-2, "weight grad at {idx}: fd={fd} an={an}");
        }
        // Bias gradient = number of output positions per channel.
        let per_channel = (out.len() / 3) as f32;
        for oi in 0..3 {
            assert!((grads.bias.data()[oi] - per_channel).abs() < 1e-3);
        }
    }

    /// The im2col path must agree with the direct kernel across shapes,
    /// strides and paddings.
    #[test]
    fn im2col_matches_direct_conv() {
        let mut rng = Xoshiro256pp::new(17);
        for &(n, c, h, o, k, stride, pad) in &[
            (1usize, 1usize, 5usize, 1usize, 3usize, 1usize, 0usize),
            (2, 3, 8, 4, 3, 1, 1),
            (1, 3, 32, 6, 5, 1, 0),
            (2, 2, 9, 3, 3, 2, 1),
            (1, 4, 6, 2, 5, 2, 2),
        ] {
            let input = Tensor::rand_normal([n, c, h, h], 0.0, 1.0, &mut rng);
            let weight = Tensor::rand_normal([o, c, k, k], 0.0, 0.5, &mut rng);
            let bias = Tensor::rand_normal([o], 0.0, 0.5, &mut rng);
            let a = conv2d(&input, &weight, &bias, stride, pad);
            let b = conv2d_im2col(&input, &weight, &bias, stride, pad);
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(
                    (x - y).abs() < 1e-4 * (1.0 + x.abs()),
                    "mismatch {x} vs {y} at shape ({n},{c},{h},{o},{k},{stride},{pad})"
                );
            }
        }
    }

    /// Finite-difference check with stride 2 and padding — the path the
    /// simple identity tests miss.
    #[test]
    fn strided_padded_gradients_match_finite_differences() {
        let mut rng = Xoshiro256pp::new(7);
        let input = Tensor::rand_normal([1, 1, 6, 6], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal([2, 1, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::zeros([2]);
        let (stride, pad) = (2, 1);
        let out = conv2d(&input, &weight, &bias, stride, pad);
        assert_eq!(out.shape(), &[1, 2, 3, 3]);
        let grads = conv2d_backward(&input, &weight, &Tensor::full(out.shape().to_vec(), 1.0), stride, pad);

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, w: &Tensor| conv2d(inp, w, &bias, stride, pad).sum();
        for &idx in &[0usize, 10, 21, 35] {
            let mut p = input.clone();
            p.data_mut()[idx] += eps;
            let mut m = input.clone();
            m.data_mut()[idx] -= eps;
            let fd = (loss(&p, &weight) - loss(&m, &weight)) / (2.0 * eps);
            assert!(
                (fd - grads.input.data()[idx]).abs() < 2e-2,
                "input grad at {idx}: fd={fd} an={}",
                grads.input.data()[idx]
            );
        }
        for &idx in &[0usize, 8, 17] {
            let mut p = weight.clone();
            p.data_mut()[idx] += eps;
            let mut m = weight.clone();
            m.data_mut()[idx] -= eps;
            let fd = (loss(&input, &p) - loss(&input, &m)) / (2.0 * eps);
            assert!(
                (fd - grads.weight.data()[idx]).abs() < 2e-2,
                "weight grad at {idx}: fd={fd} an={}",
                grads.weight.data()[idx]
            );
        }
    }

    #[test]
    fn kernel_larger_than_padded_input_gives_empty_output() {
        let input = Tensor::zeros([1, 1, 2, 2]);
        let weight = Tensor::zeros([1, 1, 5, 5]);
        let out = conv2d(&input, &weight, &Tensor::zeros([1]), 1, 0);
        assert_eq!(out.shape(), &[1, 1, 0, 0]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let input = Tensor::zeros([1, 3, 8, 8]);
        let weight = Tensor::zeros([4, 2, 3, 3]);
        let _ = conv2d(&input, &weight, &Tensor::zeros([4]), 1, 0);
    }
}
