//! The [`Tensor`] type: an owned, contiguous, row-major `f32` buffer.

use mmm_util::Rng;

/// Owned dense tensor of `f32` in row-major (C) order.
///
/// Shapes are small `Vec<usize>`; a scalar has shape `[]` and one element.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and matching data buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?} ({} elements)",
            data.len(),
            shape,
            n
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Vec<usize>>, value: f32) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        Tensor { shape, data: vec![value; n] }
    }

    /// Tensor with i.i.d. uniform entries in `[lo, hi)` drawn from `rng`.
    pub fn rand_uniform(shape: impl Into<Vec<usize>>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// Tensor with i.i.d. normal entries drawn from `rng`.
    pub fn rand_normal(shape: impl Into<Vec<usize>>, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal_with(mean, std)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?} changes element count", self.shape, shape);
        self.shape = shape;
        self
    }

    /// Element at a 2-D index (for matrices).
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Set element at a 2-D index (for matrices).
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        debug_assert_eq!(self.ndim(), 2);
        self.data[i * self.shape[1] + j] = v;
    }

    /// Row `i` of a matrix as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.ndim(), 2);
        let w = self.shape[1];
        &self.data[i * w..(i + 1) * w]
    }

    /// Mutable row `i` of a matrix.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert_eq!(self.ndim(), 2);
        let w = self.shape[1];
        &mut self.data[i * w..(i + 1) * w]
    }

    /// Matrix transpose (2-D only).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a matrix");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { shape: vec![c, r], data: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::Xoshiro256pp;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn zeros_full_and_reshape() {
        let z = Tensor::zeros([4, 4]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full([3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
        let r = z.reshape([2, 8]);
        assert_eq!(r.shape(), &[2, 8]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_mismatch_panics() {
        let _ = Tensor::zeros([2, 2]).reshape([3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn random_init_is_deterministic() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        let ta = Tensor::rand_normal([4, 5], 0.0, 1.0, &mut a);
        let tb = Tensor::rand_normal([4, 5], 0.0, 1.0, &mut b);
        assert_eq!(ta, tb);
        let tu = Tensor::rand_uniform([100], -0.5, 0.5, &mut a);
        assert!(tu.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn set2_and_row_mut() {
        let mut t = Tensor::zeros([2, 2]);
        t.set2(0, 1, 3.0);
        t.row_mut(1)[0] = 4.0;
        assert_eq!(t.data(), &[0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn scalar_shape() {
        let s = Tensor::from_vec(Vec::<usize>::new(), vec![42.0]);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.len(), 1);
    }
}
