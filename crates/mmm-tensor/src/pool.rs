//! 2-D max pooling (forward with argmax capture, backward via scatter).

use crate::Tensor;

/// Forward max pooling over `[N, C, H, W]` with a square window and equal
/// stride. Returns the pooled tensor and the flat argmax index (into the
/// input buffer) for each output element, which the backward pass scatters
/// gradients through.
///
/// # Panics
/// Panics if the spatial dims are not divisible by the window size (the
/// paper's CIFAR model only needs exact pooling).
pub fn maxpool2d(input: &Tensor, window: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.ndim(), 4, "maxpool2d: input must be [N,C,H,W]");
    assert!(window > 0, "maxpool2d: window must be positive");
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    assert_eq!(h % window, 0, "maxpool2d: H={h} not divisible by window={window}");
    assert_eq!(w % window, 0, "maxpool2d: W={w} not divisible by window={window}");
    let (oh, ow) = (h / window, w / window);

    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0u32; n * c * oh * ow];
    let id = input.data();

    for ni in 0..n {
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..window {
                        for kx in 0..window {
                            let iy = y * window + ky;
                            let ix = x * window + kx;
                            let idx = ((ni * c + ci) * h + iy) * w + ix;
                            // Strict > keeps the first max on ties — a fixed,
                            // deterministic tie-break.
                            if id[idx] > best {
                                best = id[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o_idx = ((ni * c + ci) * oh + y) * ow + x;
                    out[o_idx] = best;
                    arg[o_idx] = best_idx as u32;
                }
            }
        }
    }
    (Tensor::from_vec([n, c, oh, ow], out), arg)
}

/// Backward max pooling: scatter each output gradient to the input element
/// that won the forward max.
pub fn maxpool2d_backward(input_shape: &[usize], grad_out: &Tensor, argmax: &[u32]) -> Tensor {
    assert_eq!(grad_out.len(), argmax.len(), "grad/argmax length mismatch");
    let mut gi = vec![0.0f32; input_shape.iter().product()];
    for (g, &idx) in grad_out.data().iter().zip(argmax) {
        gi[idx as usize] += g;
    }
    Tensor::from_vec(input_shape.to_vec(), gi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::Xoshiro256pp;

    #[test]
    fn known_2x2_pool() {
        let input = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let (out, arg) = maxpool2d(&input, 2);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4., 8., 12., 16.]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn backward_scatters_to_argmax() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let (out, arg) = maxpool2d(&input, 2);
        assert_eq!(out.data(), &[9.0]);
        let g = Tensor::from_vec([1, 1, 1, 1], vec![2.5]);
        let gi = maxpool2d_backward(&[1, 1, 2, 2], &g, &arg);
        assert_eq!(gi.data(), &[0., 2.5, 0., 0.]);
    }

    #[test]
    fn tie_break_is_first_element() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![7., 7., 7., 7.]);
        let (_, arg) = maxpool2d(&input, 2);
        assert_eq!(arg, vec![0]);
    }

    #[test]
    fn pool_then_unpool_preserves_gradient_mass() {
        let mut rng = Xoshiro256pp::new(5);
        let input = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (out, arg) = maxpool2d(&input, 2);
        let g = Tensor::full(out.shape().to_vec(), 1.0);
        let gi = maxpool2d_backward(input.shape(), &g, &arg);
        assert_eq!(gi.sum(), out.len() as f32, "each output contributes one unit");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn non_divisible_spatial_dims_panic() {
        let _ = maxpool2d(&Tensor::zeros([1, 1, 5, 4]), 2);
    }
}
