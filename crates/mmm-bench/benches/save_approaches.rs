//! Criterion bench behind **Figure 4** (time-to-save per approach and
//! use case). Runs at a reduced fleet size so criterion can iterate; the
//! full-scale numbers come from `repro fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmm_core::approach::{
    BaselineSaver, MmlibBaseSaver, ModelSetSaver, ProvenanceSaver, UpdateSaver,
};
use mmm_core::env::ManagementEnv;
use mmm_core::model_set::ModelSet;
use mmm_dnn::Architectures;
use mmm_store::LatencyProfile;
use mmm_util::TempDir;
use mmm_workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

const N_MODELS: usize = 200;

fn fleet() -> Fleet {
    Fleet::initial(FleetConfig {
        n_models: N_MODELS,
        seed: 7,
        arch: Architectures::ffnn48(),
    })
}

/// U1: save an initial set (one fresh environment per iteration).
fn bench_save_initial(c: &mut Criterion) {
    let set = fleet().to_model_set();
    let mut group = c.benchmark_group("save_initial_u1");
    group.sample_size(10);

    type SaverFactory = Box<dyn Fn() -> Box<dyn ModelSetSaver>>;
    let savers: Vec<(&str, SaverFactory)> = vec![
        ("mmlib-base", Box::new(|| Box::new(MmlibBaseSaver::new()))),
        ("baseline", Box::new(|| Box::new(BaselineSaver::new()))),
        ("update", Box::new(|| Box::new(UpdateSaver::new()))),
        ("provenance", Box::new(|| Box::new(ProvenanceSaver::new()))),
    ];
    for (name, make) in &savers {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let dir = TempDir::new("bench-save").unwrap();
                    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
                    (dir, env, make(), set.clone())
                },
                |(_dir, env, mut saver, set)| saver.save_initial(&env, &set).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// U3: save a derived set (base already saved in setup).
fn bench_save_derived(c: &mut Criterion) {
    // Prepare a fleet with one update cycle applied and the record.
    let dir = TempDir::new("bench-derived-data").unwrap();
    let registry = mmm_data::DatasetRegistry::open(dir.path().join("reg")).unwrap();
    let mut f = fleet();
    let base_set = f.to_model_set();
    let policy = UpdatePolicy::paper_default(DataSource::battery_small());
    let record = f.run_update_cycle(&registry, &policy).unwrap();
    let derived_set = f.to_model_set();

    let mut group = c.benchmark_group("save_derived_u3");
    group.sample_size(10);

    for name in ["baseline", "update", "provenance"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let dir = TempDir::new("bench-save").unwrap();
                    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
                    // Re-register datasets in this env's registry.
                    for u in &record.updates {
                        let ds = policy.source.dataset(u.model_idx, 1, 7);
                        env.registry().put(&ds).unwrap();
                    }
                    let mut saver: Box<dyn ModelSetSaver> = match name {
                        "baseline" => Box::new(BaselineSaver::new()),
                        "update" => Box::new(UpdateSaver::new()),
                        _ => Box::new(ProvenanceSaver::new()),
                    };
                    let base_id = saver.save_initial(&env, &base_set).unwrap();
                    (dir, env, saver, derived_set.clone(), record.derivation(base_id))
                },
                |(_dir, env, mut saver, set, deriv)| {
                    saver.save_set(&env, &set, Some(&deriv)).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// MMlib-base's linear write cost vs Baseline's constant ops, as a
/// scaling series over fleet size.
fn bench_save_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("save_scaling");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let arch = Architectures::ffnn48();
        let models = (0..n).map(|i| arch.build(i as u64).export_param_dict()).collect();
        let set = ModelSet::new(arch, models);
        group.bench_with_input(BenchmarkId::new("baseline", n), &set, |b, set| {
            b.iter_batched(
                || {
                    let dir = TempDir::new("bench-scale").unwrap();
                    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
                    (dir, env)
                },
                |(_dir, env)| BaselineSaver::new().save_initial(&env, set).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("mmlib-base", n), &set, |b, set| {
            b.iter_batched(
                || {
                    let dir = TempDir::new("bench-scale").unwrap();
                    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
                    (dir, env)
                },
                |(_dir, env)| MmlibBaseSaver::new().save_initial(&env, set).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_save_initial, bench_save_derived, bench_save_scaling);
criterion_main!(benches);
