//! Criterion bench of the substrates everything else stands on: tensor
//! kernels, model forward/backward, the battery ECM, xxhash64, and the
//! two stores. Useful when tuning the simulated pipeline, and a
//! regression guard for the numeric kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mmm_battery::{CellParams, EcmCell};
use mmm_dnn::Architectures;
use mmm_store::{DocumentStore, FileStore, LatencyProfile, StoreStats};
use mmm_tensor::{conv2d, conv2d_im2col, matmul, Tensor};
use mmm_util::{hash::hash_f32s, TempDir, VirtualClock, Xoshiro256pp};
use serde_json::json;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::new(1);
    let a = Tensor::rand_normal([64, 64], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal([64, 64], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("tensor");
    group.bench_function("matmul_64x64", |bch| bch.iter(|| matmul(&a, &b)));

    // Direct vs im2col convolution on the CIFAR model's first layer.
    let input = Tensor::rand_normal([1, 3, 32, 32], 0.0, 1.0, &mut rng);
    let weight = Tensor::rand_normal([6, 3, 5, 5], 0.0, 0.5, &mut rng);
    let bias = Tensor::zeros([6]);
    group.bench_function("conv2d_direct_cifar_l1", |bch| {
        bch.iter(|| conv2d(&input, &weight, &bias, 1, 0))
    });
    group.bench_function("conv2d_im2col_cifar_l1", |bch| {
        bch.iter(|| conv2d_im2col(&input, &weight, &bias, 1, 0))
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut model = Architectures::ffnn48().build(1);
    let mut rng = Xoshiro256pp::new(2);
    let x = Tensor::rand_normal([32, 4], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("model");
    group.bench_function("ffnn48_forward_batch32", |b| {
        b.iter(|| model.forward(&x, false))
    });
    group.bench_function("ffnn48_forward_backward_batch32", |b| {
        b.iter(|| {
            let y = model.forward(&x, true);
            model.backward(&Tensor::full(y.shape().to_vec(), 1.0))
        })
    });
    group.finish();
}

fn bench_ecm(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("ecm_1000_steps", |b| {
        b.iter(|| {
            let mut cell = EcmCell::new(CellParams::default());
            let mut v = 0.0;
            for i in 0..1000 {
                v = cell.step(2.0 + (i % 7) as f32 * 0.3, 1.0);
            }
            v
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let params: Vec<f32> = (0..4993).map(|i| (i as f32).sin()).collect();
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Bytes((4 * params.len()) as u64));
    group.bench_function("xxhash64_ffnn48_params", |b| b.iter(|| hash_f32s(&params, 0)));
    group.finish();
}

fn bench_stores(c: &mut Criterion) {
    let dir = TempDir::new("bench-store").unwrap();
    let blobs = FileStore::open(
        dir.path().join("blobs"),
        LatencyProfile::zero(),
        VirtualClock::new(),
        StoreStats::new(),
    )
    .unwrap();
    let docs = DocumentStore::open(
        dir.path().join("docs"),
        LatencyProfile::zero(),
        VirtualClock::new(),
        StoreStats::new(),
    )
    .unwrap();
    let payload = vec![0u8; 20_000]; // one FFNN-48 model's parameters

    let mut group = c.benchmark_group("stores");
    group.sample_size(20);
    let mut i = 0u64;
    group.bench_function("blob_put_20kb", |b| {
        b.iter(|| {
            i += 1;
            blobs.put(&format!("bench/{i}"), &payload).unwrap()
        })
    });
    group.bench_function("doc_insert", |b| {
        b.iter(|| docs.insert("bench", json!({"arch": "FFNN-48", "idx": 1})).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor,
    bench_model,
    bench_ecm,
    bench_hash,
    bench_stores
);
criterion_main!(benches);
