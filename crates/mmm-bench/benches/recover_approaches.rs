//! Criterion bench behind **Figure 5** (time-to-recover per approach and
//! chain depth). The staircase behaviour of Update/Provenance appears as
//! recovery cost growing with depth; Baseline stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmm_core::approach::{BaselineSaver, MmlibBaseSaver, ModelSetSaver, UpdateSaver};
use mmm_core::env::ManagementEnv;
use mmm_core::model_set::{Derivation, ModelSetId};
use mmm_dnn::{Architectures, TrainConfig};
use mmm_store::LatencyProfile;
use mmm_util::TempDir;
use mmm_workload::{Fleet, FleetConfig};

const N_MODELS: usize = 200;

struct Fixture {
    _dir: TempDir,
    env: ManagementEnv,
    baseline_id: ModelSetId,
    mmlib_id: ModelSetId,
    /// Update-approach ids by chain depth (0 = full snapshot).
    update_ids: Vec<ModelSetId>,
}

/// Save a chain of sets once; benches only measure recovery.
fn fixture(depths: usize) -> Fixture {
    let dir = TempDir::new("bench-recover").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let fleet = Fleet::initial(FleetConfig {
        n_models: N_MODELS,
        seed: 3,
        arch: Architectures::ffnn48(),
    });
    let mut set = fleet.to_model_set();

    let baseline_id = BaselineSaver::new().save_initial(&env, &set).unwrap();
    let mmlib_id = MmlibBaseSaver::new().save_initial(&env, &set).unwrap();

    let mut update = UpdateSaver::new();
    let mut update_ids = vec![update.save_initial(&env, &set).unwrap()];
    for d in 0..depths {
        // Perturb ~10% of models.
        for i in (d % 10..N_MODELS).step_by(10) {
            for v in &mut set.models[i].layers[1].data {
                *v += 0.01;
            }
        }
        let deriv = Derivation {
            base: update_ids.last().unwrap().clone(),
            train: TrainConfig::regression_default(0),
            updates: vec![],
        };
        update_ids.push(update.save_set(&env, &set, Some(&deriv)).unwrap());
    }
    Fixture { _dir: dir, env, baseline_id, mmlib_id, update_ids }
}

fn bench_recover(c: &mut Criterion) {
    let fx = fixture(3);
    let mut group = c.benchmark_group("recover");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        let saver = BaselineSaver::new();
        b.iter(|| saver.recover_set(&fx.env, &fx.baseline_id).unwrap());
    });
    group.bench_function("mmlib-base", |b| {
        let saver = MmlibBaseSaver::new();
        b.iter(|| saver.recover_set(&fx.env, &fx.mmlib_id).unwrap());
    });
    for (depth, id) in fx.update_ids.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("update-depth", depth), id, |b, id| {
            let saver = UpdateSaver::new();
            b.iter(|| saver.recover_set(&fx.env, id).unwrap());
        });
    }
    group.finish();
}

/// The snapshot-interval extension: recovery cost with and without
/// intermediate full snapshots.
fn bench_snapshot_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("recover_snapshot_interval");
    group.sample_size(10);

    for (label, saver_factory) in [
        ("plain", UpdateSaver::new as fn() -> UpdateSaver),
        ("snap2", || UpdateSaver::with_full_snapshot_every(2)),
    ] {
        let dir = TempDir::new("bench-snap").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let fleet = Fleet::initial(FleetConfig {
            n_models: N_MODELS,
            seed: 4,
            arch: Architectures::ffnn48(),
        });
        let mut set = fleet.to_model_set();
        let mut saver = saver_factory();
        let mut last = saver.save_initial(&env, &set).unwrap();
        for d in 0..6 {
            for i in (d % 10..N_MODELS).step_by(10) {
                for v in &mut set.models[i].layers[0].data {
                    *v += 0.01;
                }
            }
            let deriv = Derivation {
                base: last.clone(),
                train: TrainConfig::regression_default(0),
                updates: vec![],
            };
            last = saver.save_set(&env, &set, Some(&deriv)).unwrap();
        }
        group.bench_function(label, |b| {
            let s = UpdateSaver::new();
            b.iter(|| s.recover_set(&env, &last).unwrap());
        });
    }
    group.finish();
}

/// Provenance recovery is retraining-bound; bench it at two chain
/// depths to expose the staircase.
fn bench_provenance_recover(c: &mut Criterion) {
    use mmm_core::approach::ProvenanceSaver;
    use mmm_workload::{DataSource, UpdatePolicy};

    let dir = TempDir::new("bench-prov").unwrap();
    let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: 50,
        seed: 6,
        arch: Architectures::ffnn48(),
    });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.2);
    let mut saver = ProvenanceSaver::new();
    let mut ids = vec![saver.save_initial(&env, &fleet.to_model_set()).unwrap()];
    for _ in 0..2 {
        let record = fleet.run_update_cycle(env.registry(), &policy).unwrap();
        let deriv = record.derivation(ids.last().unwrap().clone());
        ids.push(saver.save_set(&env, &fleet.to_model_set(), Some(&deriv)).unwrap());
    }

    let mut group = c.benchmark_group("recover_provenance");
    group.sample_size(10);
    for (depth, id) in ids.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("depth", depth), id, |b, id| {
            let s = ProvenanceSaver::new();
            b.iter(|| s.recover_set(&env, id).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recover, bench_snapshot_interval, bench_provenance_recover);
criterion_main!(benches);
