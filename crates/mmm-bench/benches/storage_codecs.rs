//! Criterion bench for the binary codecs behind **Figure 3**: the
//! concatenated set format (Baseline), the verbose per-model dict
//! (MMlib-base), the hash table and diff file (Update), and the
//! delta-compression extension (§4.5).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mmm_core::delta::{compress_delta, decompress_delta};
use mmm_core::param_codec::{
    decode_concat, decode_diff, encode_concat, encode_diff, encode_hashes, encode_verbose_dict,
    DiffEntry,
};
use mmm_dnn::{Architectures, ParamDict};

fn models(n: usize) -> Vec<ParamDict> {
    let arch = Architectures::ffnn48();
    (0..n).map(|i| arch.build(i as u64).export_param_dict()).collect()
}

fn bench_concat(c: &mut Criterion) {
    let set = models(100);
    let bytes = encode_concat(&set).unwrap();
    let arch = Architectures::ffnn48();
    let names = arch.parametric_layer_names();
    let sizes = arch.parametric_layer_sizes();

    let mut group = c.benchmark_group("codec_concat");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_100_models", |b| b.iter(|| encode_concat(&set).unwrap()));
    group.bench_function("decode_100_models", |b| {
        b.iter(|| decode_concat(&bytes, 100, &names, &sizes).unwrap())
    });
    group.finish();
}

fn bench_verbose(c: &mut Criterion) {
    let set = models(1);
    c.bench_function("codec_verbose_dict_encode", |b| {
        b.iter(|| encode_verbose_dict(&set[0]).unwrap())
    });
}

fn bench_hashes_and_diff(c: &mut Criterion) {
    let set = models(100);
    let hashes: Vec<Vec<u64>> = set.iter().map(|m| m.layer_hashes()).collect();
    let entries: Vec<DiffEntry> = set[..10]
        .iter()
        .enumerate()
        .map(|(i, m)| DiffEntry {
            model_idx: i as u32,
            layer_idx: 1,
            data: m.layers[1].data.clone(),
        })
        .collect();
    let diff_bytes = encode_diff(&entries).unwrap();

    let mut group = c.benchmark_group("codec_update");
    group.bench_function("layer_hashes_100_models", |b| {
        b.iter(|| set.iter().map(|m| m.layer_hashes()).collect::<Vec<_>>())
    });
    group.bench_function("encode_hashes", |b| b.iter(|| encode_hashes(&hashes)));
    group.bench_function("encode_diff_10_layers", |b| b.iter(|| encode_diff(&entries).unwrap()));
    group.bench_function("decode_diff_10_layers", |b| {
        b.iter(|| decode_diff(&diff_bytes).unwrap())
    });
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let arch = Architectures::ffnn48();
    let base: Vec<f32> = arch.build(0).export_params();
    // Sparse change: 5% of parameters move.
    let mut sparse = base.clone();
    for i in (0..sparse.len()).step_by(20) {
        sparse[i] += 0.5;
    }
    let blob = compress_delta(&base, &sparse);

    let mut group = c.benchmark_group("codec_delta");
    group.throughput(Throughput::Bytes((4 * base.len()) as u64));
    group.bench_function("compress_sparse", |b| b.iter(|| compress_delta(&base, &sparse)));
    group.bench_function("decompress_sparse", |b| {
        b.iter(|| decompress_delta(&base, &blob).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_concat, bench_verbose, bench_hashes_and_diff, bench_delta);
criterion_main!(benches);
