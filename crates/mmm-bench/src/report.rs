//! Rendering of scenario results as paper-style tables.

use crate::experiment::{ScenarioResult, APPROACHES};
use mmm_obs::Observer;
use mmm_store::StatsSnapshot;
use std::fmt::Write as _;

/// Pretty approach labels in the paper's legend order.
fn label(approach: &str) -> &'static str {
    match approach {
        "mmlib-base" => "MMlib-base",
        "baseline" => "Baseline",
        "update" => "Update",
        "provenance" => "Provenance",
        _ => "?",
    }
}

/// Render storage consumption per use case in MB (Figure 3).
pub fn storage_table(r: &ScenarioResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "approach");
    for uc in &r.use_cases {
        let _ = write!(out, "{uc:>12}");
    }
    out.push('\n');
    for a in APPROACHES {
        let _ = write!(out, "{:<12}", label(a));
        for c in r.row(a) {
            let _ = write!(out, "{:>12.3}", c.storage_bytes as f64 / 1e6);
        }
        out.push('\n');
    }
    out
}

/// Render median TTS per use case in seconds (Figure 4).
pub fn tts_table(r: &ScenarioResult) -> String {
    time_table(r, true)
}

/// Render median TTR per use case in seconds (Figure 5).
pub fn ttr_table(r: &ScenarioResult) -> String {
    time_table(r, false)
}

fn time_table(r: &ScenarioResult, tts: bool) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "approach");
    for uc in &r.use_cases {
        let _ = write!(out, "{uc:>12}");
    }
    out.push('\n');
    for a in APPROACHES {
        let _ = write!(out, "{:<12}", label(a));
        for c in r.row(a) {
            let d = if tts { c.tts } else { c.ttr };
            let _ = write!(out, "{:>12.3}", d.as_secs_f64());
        }
        out.push('\n');
    }
    out
}

/// Render the run header: latency profile, worker-thread budget, and
/// the per-lane op/byte distribution of every parallel section that ran
/// (one lane-history entry per finished lane).
pub fn run_header(profile: &str, threads: usize, lanes: &[StatsSnapshot]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "profile: {profile}   threads: {threads}");
    if lanes.is_empty() {
        out.push_str("lanes:   none recorded (sequential run)\n");
        return out;
    }
    let ops: Vec<u64> = lanes.iter().map(StatsSnapshot::total_ops).collect();
    let bytes: Vec<u64> = lanes.iter().map(|l| l.bytes_read + l.bytes_written).collect();
    let stat = |v: &[u64]| {
        let sum: u64 = v.iter().sum();
        (
            sum,
            *v.iter().min().expect("nonempty"),
            *v.iter().max().expect("nonempty"),
            sum as f64 / v.len() as f64,
        )
    };
    let (o_sum, o_min, o_max, o_mean) = stat(&ops);
    let (b_sum, b_min, b_max, b_mean) = stat(&bytes);
    let _ = writeln!(
        out,
        "lanes:   {} finished; store ops/lane min {o_min} max {o_max} mean {o_mean:.1} (total {o_sum})",
        lanes.len()
    );
    let _ = writeln!(
        out,
        "         bytes/lane min {b_min} max {b_max} mean {b_mean:.1} (total {b_sum})"
    );
    out
}

/// Render the per-phase TTS/TTR breakdown recorded by `obs` — one block
/// per `(approach/use-case, save|recover)` pair, phases in first-opened
/// order, with an `other` residual so phase sums match the op totals
/// exactly.
pub fn phase_table(obs: &Observer) -> String {
    if !obs.enabled() {
        return String::from("(observability disabled: no per-phase breakdown recorded)\n");
    }
    mmm_obs::render_breakdown(&obs.breakdown())
}

/// Render a CSV with every cell (for EXPERIMENTS.md and offline plots).
pub fn to_csv(r: &ScenarioResult, setup: &str) -> String {
    let mut out = String::from("setup,approach,use_case,storage_mb,tts_s,ttr_s\n");
    for a in APPROACHES {
        for (uc, c) in r.use_cases.iter().zip(r.row(a)) {
            let _ = writeln!(
                out,
                "{setup},{a},{uc},{:.4},{:.4},{:.4}",
                c.storage_bytes as f64 / 1e6,
                c.tts.as_secs_f64(),
                c.ttr.as_secs_f64()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::UseCaseCell;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn fake() -> ScenarioResult {
        let cells: BTreeMap<String, Vec<UseCaseCell>> = APPROACHES
            .iter()
            .enumerate()
            .map(|(i, a)| {
                (
                    a.to_string(),
                    vec![UseCaseCell {
                        storage_bytes: (i as u64 + 1) * 1_000_000,
                        tts: Duration::from_millis(100 * (i as u64 + 1)),
                        ttr: Duration::from_millis(10 * (i as u64 + 1)),
                        ..UseCaseCell::default()
                    }],
                )
            })
            .collect();
        ScenarioResult { use_cases: vec!["U1".into()], cells }
    }

    #[test]
    fn tables_contain_all_approaches() {
        let r = fake();
        for table in [storage_table(&r), tts_table(&r), ttr_table(&r)] {
            for a in ["MMlib-base", "Baseline", "Update", "Provenance"] {
                assert!(table.contains(a), "{table}");
            }
            assert!(table.contains("U1"));
        }
    }

    #[test]
    fn storage_is_in_mb() {
        let t = storage_table(&fake());
        assert!(t.contains("1.000"), "{t}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&fake(), "m1");
        assert!(csv.starts_with("setup,approach,use_case"));
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("m1,baseline,U1"));
    }
}
