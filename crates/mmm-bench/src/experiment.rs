//! The end-to-end evaluation scenario (paper Figure 2).
//!
//! One scenario run = one fleet, one environment, all four approaches
//! saving every use case's model set, then recovering every saved set.
//! Every (approach, use case) cell yields storage bytes, TTS and TTR.
//!
//! Two fidelity knobs mirror the paper's own methodology:
//!
//! * `prov_reduced` — §4.4: "to reduce the training time for the
//!   recovery process of Provenance, we — exclusively for this approach —
//!   only train one model with reduced data per iteration of U3". When
//!   set, the derivation handed to the Provenance saver is truncated the
//!   same way (the TTR staircase shape is preserved; absolute recovery
//!   time shrinks enough to run many trials).
//! * `verify_roundtrip` — recover every saved set and assert it equals
//!   the materialized fleet snapshot bit-for-bit (used by tests; costs
//!   memory proportional to `n_cycles × set size`).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use mmm_core::approach::{ApproachKind, ApproachSpec, ModelSetSaver};
use mmm_core::env::ManagementEnv;
use mmm_core::model_set::{Derivation, ModelSet, ModelSetId, ModelUpdate};
use mmm_dnn::ArchitectureSpec;
use mmm_obs::Observer;
use mmm_store::{LatencyProfile, StorageBackend};
use mmm_util::{Error, Result};
use mmm_workload::{DataSource, Fleet, FleetConfig, UpdatePolicy};

/// The approaches in the paper's presentation order.
pub const APPROACHES: [&str; 4] = ["mmlib-base", "baseline", "update", "provenance"];

/// Configuration of one scenario run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Fleet size (paper: 5000).
    pub n_models: usize,
    /// Number of U3 update cycles (paper: 3).
    pub n_cycles: usize,
    /// Shared model architecture.
    pub arch: ArchitectureSpec,
    /// Combined update rate (paper default 0.10, split half full / half
    /// partial).
    pub update_rate: f64,
    /// Store latency profile (`m1`, `server`, or `zero`).
    pub profile: LatencyProfile,
    /// Training-data source.
    pub source: DataSource,
    /// Root seed.
    pub seed: u64,
    /// Reduced provenance recording for timing runs (see module docs).
    pub prov_reduced: bool,
    /// Assert recovered sets equal materialized sets (tests).
    pub verify_roundtrip: bool,
    /// Worker threads for the save/recover hot paths (1 = sequential).
    /// Simulated TTS/TTR charge the critical path across lanes, so
    /// results stay comparable across thread counts; wall clock drops.
    pub threads: usize,
    /// Observer wired into the environment; contexts are set to
    /// `approach/use-case` and each measured op runs inside a
    /// `save`/`recover` span, so the per-phase breakdown groups per
    /// scenario cell. Disabled by default (zero overhead).
    pub observer: Observer,
    /// Blob storage backend (plain files or content-addressed chunks).
    pub backend: StorageBackend,
    /// CAS recovery-cache budget in bytes (`None` = backend default;
    /// ignored on the plain backend).
    pub cache_bytes: Option<u64>,
}

impl ExperimentConfig {
    /// A fast, small configuration for tests and criterion benches.
    pub fn small(n_models: usize, n_cycles: usize) -> Self {
        ExperimentConfig {
            n_models,
            n_cycles,
            arch: mmm_dnn::Architectures::ffnn48(),
            update_rate: 0.10,
            profile: LatencyProfile::zero(),
            source: DataSource::battery_small(),
            seed: 7,
            prov_reduced: false,
            verify_roundtrip: false,
            threads: 1,
            observer: Observer::disabled(),
            backend: StorageBackend::Plain,
            cache_bytes: None,
        }
    }

    /// The paper's default scenario at full scale.
    ///
    /// Unlike the paper we can afford `prov_reduced: false` by default:
    /// our deterministic training is cheap enough to really retrain all
    /// updated models during provenance recovery. The `provttr`
    /// harness target reproduces the paper's reduced methodology.
    pub fn paper_default(profile: LatencyProfile) -> Self {
        ExperimentConfig {
            n_models: 5000,
            n_cycles: 3,
            arch: mmm_dnn::Architectures::ffnn48(),
            update_rate: 0.10,
            profile,
            source: DataSource::battery_default(),
            seed: 7,
            prov_reduced: false,
            verify_roundtrip: false,
            threads: 1,
            observer: Observer::disabled(),
            backend: StorageBackend::Plain,
            cache_bytes: None,
        }
    }

    /// Set the worker-thread budget for save/recover hot paths.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach an observer; the scenario runner wires it into the
    /// environment and annotates every save/recover with context + spans.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Select the blob storage backend.
    pub fn with_backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the CAS recovery-cache budget in bytes.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }
}

/// Measurements of one (approach, use case) cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UseCaseCell {
    /// Bytes written by the save (the paper's storage-consumption metric).
    pub storage_bytes: u64,
    /// Time-to-save (hybrid: real + simulated store latency).
    pub tts: Duration,
    /// Time-to-recover.
    pub ttr: Duration,
    /// Simulated-store share of the TTS (thread-count invariant up to
    /// critical-path scheduling; what the phase breakdown sums to).
    pub tts_sim: Duration,
    /// Simulated-store share of the TTR.
    pub ttr_sim: Duration,
}

/// All measurements of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Use-case labels: `["U1", "U3-1", ...]`.
    pub use_cases: Vec<String>,
    /// Rows per approach (in [`APPROACHES`] order), one cell per use case.
    pub cells: BTreeMap<String, Vec<UseCaseCell>>,
}

impl ScenarioResult {
    /// The cells of one approach.
    ///
    /// # Panics
    /// Panics if the approach was not part of the run.
    pub fn row(&self, approach: &str) -> &[UseCaseCell] {
        &self.cells[approach]
    }

    /// Element-wise median over several runs (the paper reports the
    /// median of five runs for TTS/TTR; storage is constant).
    pub fn median(runs: &[ScenarioResult]) -> ScenarioResult {
        assert!(!runs.is_empty(), "median of zero runs");
        let first = &runs[0];
        let mut cells = BTreeMap::new();
        for (approach, row) in &first.cells {
            let merged: Vec<UseCaseCell> = (0..row.len())
                .map(|uc| {
                    let mut tts: Vec<Duration> =
                        runs.iter().map(|r| r.cells[approach][uc].tts).collect();
                    let mut ttr: Vec<Duration> =
                        runs.iter().map(|r| r.cells[approach][uc].ttr).collect();
                    tts.sort();
                    ttr.sort();
                    UseCaseCell {
                        storage_bytes: row[uc].storage_bytes,
                        tts: tts[tts.len() / 2],
                        ttr: ttr[ttr.len() / 2],
                        tts_sim: row[uc].tts_sim,
                        ttr_sim: row[uc].ttr_sim,
                    }
                })
                .collect();
            cells.insert(approach.clone(), merged);
        }
        ScenarioResult { use_cases: first.use_cases.clone(), cells }
    }
}

/// Truncate a derivation to the paper's reduced provenance-timing form:
/// one updated model, trained on a 64-sample prefix of its data.
fn reduce_derivation(env: &ManagementEnv, deriv: &Derivation) -> Result<Derivation> {
    let Some(first) = deriv.updates.first() else {
        return Ok(deriv.clone());
    };
    let full = env.registry().get(&first.dataset)?;
    let reduced = full.truncated(64);
    let dref = env.registry().put(&reduced)?;
    Ok(Derivation {
        base: deriv.base.clone(),
        train: deriv.train,
        updates: vec![ModelUpdate { dataset: dref, ..first.clone() }],
    })
}

/// Run one full scenario in `dir`. Returns per-cell measurements.
pub fn run_scenario(cfg: &ExperimentConfig, dir: &Path) -> Result<ScenarioResult> {
    let mut builder = ManagementEnv::builder(dir, cfg.profile)
        .threads(cfg.threads)
        .observer(cfg.observer.clone())
        .backend(cfg.backend);
    if let Some(bytes) = cfg.cache_bytes {
        builder = builder.cache_bytes(bytes);
    }
    let env = builder.open()?;
    run_scenario_in_env(cfg, &env)
}

/// Run one full scenario against a pre-built environment (the caller
/// keeps access to its stats, lane history and observer afterwards).
pub fn run_scenario_in_env(cfg: &ExperimentConfig, env: &ManagementEnv) -> Result<ScenarioResult> {
    let mut fleet = Fleet::initial(FleetConfig {
        n_models: cfg.n_models,
        seed: cfg.seed,
        arch: cfg.arch.clone(),
    });
    let mut policy = UpdatePolicy::paper_default(cfg.source.clone()).with_update_rate(cfg.update_rate);
    if let DataSource::Cifar { .. } = cfg.source {
        policy.train = mmm_dnn::TrainConfig {
            epochs: 1,
            ..mmm_dnn::TrainConfig::classification_default(0)
        };
        // The CIFAR CNN has 3 parametric layers; partial updates retrain
        // the middle conv layer.
        policy.partial_layers = vec![1];
    }

    let mut savers: Vec<Box<dyn ModelSetSaver>> = ApproachKind::ALL
        .iter()
        .map(|&kind| ApproachSpec::new(kind).build())
        .collect();

    let mut use_cases = vec!["U1".to_string()];
    let mut cells: BTreeMap<String, Vec<UseCaseCell>> = APPROACHES
        .iter()
        .map(|a| (a.to_string(), Vec::new()))
        .collect();
    // ids[approach][use_case]
    let mut ids: BTreeMap<String, Vec<ModelSetId>> =
        APPROACHES.iter().map(|a| (a.to_string(), Vec::new())).collect();
    // Materialized snapshots for verification (only kept when verifying).
    let mut snapshots: Vec<ModelSet> = Vec::new();

    // ---- U1: save the initial set with every approach. ----
    let initial = fleet.to_model_set();
    for saver in &mut savers {
        let name = saver.name().to_string();
        env.obs().set_context(format!("{name}/U1"));
        let (id, m) = env.measure(|| {
            let _op = env.obs().span_idx("save", 0);
            saver.save_initial(env, &initial)
        });
        let id = id?;
        cells.get_mut(&name).expect("known approach").push(UseCaseCell {
            storage_bytes: m.bytes_written(),
            tts: m.duration,
            ttr: Duration::ZERO,
            tts_sim: m.sim,
            ttr_sim: Duration::ZERO,
        });
        ids.get_mut(&name).expect("known approach").push(id);
    }
    if cfg.verify_roundtrip {
        snapshots.push(initial);
    }

    // ---- U3 cycles: update the fleet, save with every approach. ----
    for cycle in 1..=cfg.n_cycles {
        use_cases.push(format!("U3-{cycle}"));
        let record = fleet.run_update_cycle(env.registry(), &policy)?;
        let set = fleet.to_model_set();
        for saver in &mut savers {
            let name = saver.name().to_string();
            let base = ids[&name].last().expect("U1 saved first").clone();
            let deriv = record.derivation(base);
            let deriv = if cfg.prov_reduced && name == "provenance" {
                reduce_derivation(env, &deriv)?
            } else {
                deriv
            };
            env.obs().set_context(format!("{name}/U3-{cycle}"));
            let (id, m) = env.measure(|| {
                let _op = env.obs().span_idx("save", cycle as u64);
                saver.save_set(env, &set, Some(&deriv))
            });
            let id = id?;
            cells.get_mut(&name).expect("known approach").push(UseCaseCell {
                storage_bytes: m.bytes_written(),
                tts: m.duration,
                ttr: Duration::ZERO,
                tts_sim: m.sim,
                ttr_sim: Duration::ZERO,
            });
            ids.get_mut(&name).expect("known approach").push(id);
        }
        if cfg.verify_roundtrip {
            snapshots.push(set);
        }
    }

    // ---- TTR: recover every saved set. ----
    for saver in &savers {
        let name = saver.name().to_string();
        for (uc, id) in ids[&name].iter().enumerate() {
            env.obs().set_context(format!("{name}/{}", use_cases[uc]));
            let (recovered, m) = env.measure(|| {
                let _op = env.obs().span_idx("recover", uc as u64);
                saver.recover_set(env, id)
            });
            let recovered = recovered?;
            let cell = &mut cells.get_mut(&name).expect("known approach")[uc];
            cell.ttr = m.duration;
            cell.ttr_sim = m.sim;
            if cfg.verify_roundtrip {
                // Reduced provenance intentionally records less than the
                // materialized set — skip its equality check (paper §4.4).
                let skip = cfg.prov_reduced && name == "provenance" && uc > 0;
                if !skip && recovered != snapshots[uc] {
                    return Err(Error::corrupt(format!(
                        "{name} recovered a different set for use case {}",
                        use_cases[uc]
                    )));
                }
            }
        }
    }

    Ok(ScenarioResult { use_cases, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            verify_roundtrip: true,
            arch: mmm_dnn::Architectures::ffnn(6),
            ..ExperimentConfig::small(12, 2)
        }
    }

    #[test]
    fn scenario_runs_and_verifies_roundtrips() {
        let dir = TempDir::new("mmm-exp").unwrap();
        let r = run_scenario(&small_cfg(), dir.path()).unwrap();
        assert_eq!(r.use_cases, vec!["U1", "U3-1", "U3-2"]);
        for a in APPROACHES {
            assert_eq!(r.row(a).len(), 3, "{a}");
            assert!(r.row(a).iter().all(|c| c.storage_bytes > 0));
        }
    }

    #[test]
    fn storage_ordering_matches_figure3() {
        // The ordering provenance < update needs a realistic scale: the
        // provenance record has a ~5 KB constant part (train config +
        // environment) that only amortizes over enough models.
        let cfg = ExperimentConfig {
            arch: mmm_dnn::Architectures::ffnn(16),
            n_cycles: 2,
            ..ExperimentConfig::small(60, 2)
        };
        let dir = TempDir::new("mmm-exp").unwrap();
        let r = run_scenario(&cfg, dir.path()).unwrap();
        // U1: MMlib-base > {Baseline, Provenance}; Update adds hash info.
        let u1 = |a: &str| r.row(a)[0].storage_bytes;
        assert!(u1("mmlib-base") > u1("baseline"));
        assert!(u1("update") > u1("baseline"));
        // Identical up to the approach-name string in the metadata doc.
        assert!(u1("provenance").abs_diff(u1("baseline")) < 16, "U1 provenance uses baseline logic");
        // U3: provenance < update < baseline <= mmlib-base.
        for uc in 1..3 {
            let s = |a: &str| r.row(a)[uc].storage_bytes;
            assert!(s("provenance") < s("update"), "uc {uc}");
            assert!(s("update") < s("baseline"), "uc {uc}");
            assert!(s("baseline") < s("mmlib-base"), "uc {uc}");
        }
    }

    #[test]
    fn reduced_provenance_still_recovers_and_shrinks_storage() {
        let dir = TempDir::new("mmm-exp").unwrap();
        // Needs enough parameter volume for the ~5 KB constant provenance
        // record to be the smaller artifact (see ordering test above).
        let cfg = ExperimentConfig {
            prov_reduced: true,
            arch: mmm_dnn::Architectures::ffnn(16),
            ..ExperimentConfig::small(60, 2)
        };
        let r = run_scenario(&cfg, dir.path()).unwrap();
        let prov = r.row("provenance");
        assert!(prov[1].storage_bytes < r.row("baseline")[1].storage_bytes);
        assert!(prov[1].ttr > Duration::ZERO);
    }

    #[test]
    fn median_takes_elementwise_middle() {
        let dir = TempDir::new("mmm-exp").unwrap();
        let cfg = ExperimentConfig { verify_roundtrip: false, ..small_cfg() };
        let r1 = run_scenario(&cfg, dir.path()).unwrap();
        let m = ScenarioResult::median(&[r1.clone(), r1.clone(), r1.clone()]);
        assert_eq!(m.row("baseline")[0].storage_bytes, r1.row("baseline")[0].storage_bytes);
    }
}
