//! CI perf-regression gate: diff fresh benchmark documents against
//! committed baselines under explicit tolerances.
//!
//! The comparators are pure functions over the JSON documents the
//! benches emit (`BENCH_service.json`, `BENCH_scale.json`,
//! `BENCH_breakdown.json`), so the gate is trivially unit-testable and
//! the `repro gate` binary only has to produce candidates and render
//! the verdict. Structural properties (row sets, byte counts, the
//! zero-copy and zero-residual invariants) are compared exactly;
//! wall-clock throughput gets a generous machine-variance factor and
//! simulated times a small relative tolerance.

use serde_json::Value;

/// Gate tolerances. Defaults are deliberately loose on wall-clock
/// numbers (CI machines vary) and tight on simulated/structural ones
/// (those are deterministic).
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Candidate `saves_per_sec` must be at least `baseline / factor`.
    pub throughput_factor: f64,
    /// Candidate `shed_rate` may exceed the baseline by this much.
    pub shed_abs: f64,
    /// Candidate p99 deadline overrun may exceed the baseline by this
    /// many nanoseconds.
    pub overrun_slack_ns: u64,
    /// Relative tolerance on simulated times.
    pub sim_rel: f64,
    /// Candidate peak staging bytes may grow to `baseline × factor`.
    pub staging_factor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            throughput_factor: 4.0,
            shed_abs: 0.05,
            overrun_slack_ns: 250_000_000,
            sim_rel: 0.15,
            staging_factor: 1.5,
        }
    }
}

/// One comparison the gate ran.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What was compared, e.g. `service t=4 saves_per_sec`.
    pub name: String,
    /// Whether the candidate is within tolerance.
    pub ok: bool,
    /// Baseline vs candidate, human-readable.
    pub detail: String,
}

/// The gate's verdict: every check it ran.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// All checks, in run order.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Failed checks only.
    pub fn failures(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    fn push(&mut self, name: impl Into<String>, ok: bool, detail: impl Into<String>) {
        self.checks.push(GateCheck {
            name: name.into(),
            ok,
            detail: detail.into(),
        });
    }

    /// Merge another report's checks into this one.
    pub fn merge(&mut self, other: GateReport) {
        self.checks.extend(other.checks);
    }

    /// Render the verdict table (`PASS`/`FAIL` per check).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{} {:<44} {}",
                if c.ok { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        let _ = writeln!(
            out,
            "{}: {} check(s), {} failure(s)",
            if self.passed() {
                "gate PASS"
            } else {
                "gate FAIL"
            },
            self.checks.len(),
            self.failures().len()
        );
        out
    }
}

fn f(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(u64::MAX)
}

/// Index a document's `rows` array by an integer key column.
fn rows_by<'v>(doc: &'v Value, key: &str) -> Vec<(u64, &'v Value)> {
    doc.get("rows")
        .and_then(Value::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| Some((r.get(key)?.as_u64()?, r)))
                .collect()
        })
        .unwrap_or_default()
}

fn rel_within(base: f64, cand: f64, rel: f64) -> bool {
    if !base.is_finite() || !cand.is_finite() {
        return false;
    }
    if base == 0.0 {
        return cand == 0.0;
    }
    ((cand - base) / base).abs() <= rel
}

/// Compare a candidate `BENCH_service.json` against the baseline.
///
/// Structural rows must match; shed rate, p99 overrun, and the
/// group-commit amortization are bounded by the baseline plus slack;
/// throughput may not collapse below `baseline / throughput_factor`.
pub fn gate_service(baseline: &Value, candidate: &Value, tol: &Tolerances) -> GateReport {
    let mut out = GateReport::default();
    let base_rows = rows_by(baseline, "threads");
    if base_rows.is_empty() {
        out.push(
            "service baseline rows",
            false,
            "baseline has no rows[] with a threads key",
        );
        return out;
    }
    let cand_rows = rows_by(candidate, "threads");
    for (threads, b) in base_rows {
        let name = |what: &str| format!("service t={threads} {what}");
        let Some((_, c)) = cand_rows.iter().find(|(t, _)| *t == threads) else {
            out.push(name("row"), false, "candidate row missing");
            continue;
        };
        out.push(
            name("saves"),
            u(b, "saves") == u(c, "saves"),
            format!("{} vs {}", u(b, "saves"), u(c, "saves")),
        );
        let (bs, cs) = (f(b, "shed_rate"), f(c, "shed_rate"));
        out.push(
            name("shed_rate"),
            cs <= bs + tol.shed_abs,
            format!("{bs:.3} vs {cs:.3}"),
        );
        let (bo, co) = (
            u(b, "p99_deadline_overrun_ns"),
            u(c, "p99_deadline_overrun_ns"),
        );
        out.push(
            name("p99_overrun"),
            co <= bo.saturating_add(tol.overrun_slack_ns),
            format!("{bo}ns vs {co}ns (slack {}ns)", tol.overrun_slack_ns),
        );
        let (bt, ct) = (f(b, "saves_per_sec"), f(c, "saves_per_sec"));
        out.push(
            name("saves_per_sec"),
            ct.is_finite() && ct >= bt / tol.throughput_factor,
            format!(
                "{bt:.0}/s vs {ct:.0}/s (floor {:.0}/s)",
                bt / tol.throughput_factor
            ),
        );
        let cc = f(c, "commit_records_per_save");
        out.push(
            name("commit_records_per_save"),
            cc.is_finite() && cc <= 1.0 + 1e-9,
            format!(
                "{:.3} vs {cc:.3} (hard cap 1.0)",
                f(b, "commit_records_per_save")
            ),
        );
    }
    out
}

/// Compare a candidate `BENCH_scale.json` against the baseline.
///
/// Byte counts and the zero-copy invariants are exact; simulated times
/// carry `sim_rel`; peak staging may grow by `staging_factor`.
pub fn gate_scale(baseline: &Value, candidate: &Value, tol: &Tolerances) -> GateReport {
    let mut out = GateReport::default();
    let base_rows = rows_by(baseline, "n");
    if base_rows.is_empty() {
        out.push(
            "scale baseline rows",
            false,
            "baseline has no rows[] with an n key",
        );
        return out;
    }
    let cand_rows = rows_by(candidate, "n");
    for (n, b) in base_rows {
        let name = |what: &str| format!("scale n={n} {what}");
        let Some((_, c)) = cand_rows.iter().find(|(m, _)| *m == n) else {
            out.push(name("row"), false, "candidate row missing");
            continue;
        };
        out.push(
            name("blob_bytes"),
            u(b, "blob_bytes") == u(c, "blob_bytes"),
            format!("{} vs {}", u(b, "blob_bytes"), u(c, "blob_bytes")),
        );
        out.push(
            name("mapped"),
            c.get("mapped") == Some(&Value::Bool(true)),
            format!("{:?}", c.get("mapped")),
        );
        out.push(
            name("bytes_copied_mapped"),
            u(c, "bytes_copied_mapped") == 0,
            format!("{} (zero-copy invariant)", u(c, "bytes_copied_mapped")),
        );
        let (bp, cp) = (
            u(b, "save_peak_staging_bytes"),
            u(c, "save_peak_staging_bytes"),
        );
        out.push(
            name("save_peak_staging_bytes"),
            (cp as f64) <= (bp as f64) * tol.staging_factor,
            format!("{bp} vs {cp} (cap ×{})", tol.staging_factor),
        );
        for key in ["tts_sim_s", "ttr_mapped_sim_s"] {
            out.push(
                name(key),
                rel_within(f(b, key), f(c, key), tol.sim_rel),
                format!(
                    "{:.4}s vs {:.4}s (±{:.0}%)",
                    f(b, key),
                    f(c, key),
                    tol.sim_rel * 100.0
                ),
            );
        }
    }
    out
}

/// Compare a candidate `BENCH_breakdown.json` against the baseline.
///
/// Row sets must match both ways; every candidate row must have a zero
/// simulated residual (the phase spans tile the op exactly); per-row
/// simulated totals carry `sim_rel`.
pub fn gate_breakdown(baseline: &Value, candidate: &Value, tol: &Tolerances) -> GateReport {
    let mut out = GateReport::default();
    let key_of = |r: &Value| -> Option<(String, String)> {
        Some((
            r.get("ctx")?.as_str()?.to_owned(),
            r.get("op")?.as_str()?.to_owned(),
        ))
    };
    let rows = |doc: &Value| -> Vec<((String, String), Value)> {
        doc.get("rows")
            .and_then(Value::as_array)
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| Some((key_of(r)?, r.clone())))
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_rows = rows(baseline);
    let cand_rows = rows(candidate);
    if base_rows.is_empty() {
        out.push("breakdown baseline rows", false, "baseline has no rows[]");
        return out;
    }
    for ((ctx, op), _) in &cand_rows {
        if !base_rows
            .iter()
            .any(|(k, _)| k == &(ctx.clone(), op.clone()))
        {
            out.push(
                format!("breakdown {ctx}/{op}"),
                false,
                "row absent from baseline",
            );
        }
    }
    for ((ctx, op), b) in &base_rows {
        let name = |what: &str| format!("breakdown {ctx}/{op} {what}");
        let Some((_, c)) = cand_rows
            .iter()
            .find(|(k, _)| k == &(ctx.clone(), op.clone()))
        else {
            out.push(name("row"), false, "candidate row missing");
            continue;
        };
        out.push(
            name("other_sim_ns"),
            u(c, "other_sim_ns") == 0,
            format!("{} (zero-residual invariant)", u(c, "other_sim_ns")),
        );
        let (bt, ct) = (f(b, "total_sim_ns"), f(c, "total_sim_ns"));
        out.push(
            name("total_sim_ns"),
            rel_within(bt, ct, tol.sim_rel),
            format!("{bt:.0} vs {ct:.0} (±{:.0}%)", tol.sim_rel * 100.0),
        );
    }
    out
}

/// Compare a candidate `BENCH_query.json` against the baseline.
///
/// The query bench seeds its population deterministically from the
/// row's `n`, so match counts and scan sizes compare exactly (a count
/// drift means the engine changed semantics, not the machine); query
/// wall-clock latencies get the same generous machine-variance factor
/// as service throughput.
pub fn gate_query(baseline: &Value, candidate: &Value, tol: &Tolerances) -> GateReport {
    let mut out = GateReport::default();
    let base_rows = rows_by(baseline, "n");
    if base_rows.is_empty() {
        out.push(
            "query baseline rows",
            false,
            "baseline has no rows[] with an n key",
        );
        return out;
    }
    let cand_rows = rows_by(candidate, "n");
    for (n, b) in base_rows {
        let name = |what: &str| format!("query n={n} {what}");
        let Some((_, c)) = cand_rows.iter().find(|(m, _)| *m == n) else {
            out.push(name("row"), false, "candidate row missing");
            continue;
        };
        for key in [
            "count_true",
            "scan_true",
            "count_pred",
            "count_tag",
            "scan_tag",
            "count_depth",
            "count_sim",
        ] {
            out.push(
                name(key),
                u(b, key) == u(c, key),
                format!("{} vs {}", u(b, key), u(c, key)),
            );
        }
        for key in ["ms_true", "ms_pred", "ms_tag", "ms_depth", "ms_sim"] {
            let (bm, cm) = (f(b, key), f(c, key));
            out.push(
                name(key),
                cm.is_finite() && cm <= bm * tol.throughput_factor,
                format!("{bm:.2}ms vs {cm:.2}ms (cap ×{:.0})", tol.throughput_factor),
            );
        }
    }
    out
}

/// Wrap breakdown rows as the `BENCH_breakdown.json` document.
pub fn breakdown_json(
    rows: &[mmm_obs::BreakdownRow],
    models: usize,
    cycles: usize,
    setup: &str,
    threads: usize,
) -> Value {
    serde_json::json!({
        "bench": "breakdown",
        "models": models,
        "cycles": cycles,
        "setup": setup,
        "threads": threads,
        "rows": rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(rows: Vec<Value>) -> Value {
        json!({ "rows": rows })
    }

    fn service_doc(saves_per_sec: f64, shed: f64, overrun: u64, cps: f64) -> Value {
        doc(vec![json!({
            "threads": 4,
            "saves": 100,
            "shed": 0,
            "saves_per_sec": saves_per_sec,
            "shed_rate": shed,
            "p99_deadline_overrun_ns": overrun,
            "commit_records_per_save": cps,
        })])
    }

    #[test]
    fn identical_service_docs_pass() {
        let doc = service_doc(1000.0, 0.0, 0, 0.25);
        let r = gate_service(&doc, &doc, &Tolerances::default());
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn service_regressions_fail_their_named_check() {
        let base = service_doc(1000.0, 0.0, 0, 0.25);
        let tol = Tolerances::default();
        for (cand, check) in [
            (service_doc(100.0, 0.0, 0, 0.25), "saves_per_sec"),
            (service_doc(1000.0, 0.2, 0, 0.25), "shed_rate"),
            (service_doc(1000.0, 0.0, 1_000_000_000, 0.25), "p99_overrun"),
            (service_doc(1000.0, 0.0, 0, 1.5), "commit_records_per_save"),
        ] {
            let r = gate_service(&base, &cand, &tol);
            assert!(!r.passed(), "{check} should fail");
            assert!(
                r.failures().iter().any(|c| c.name.contains(check)),
                "{check}: {}",
                r.render()
            );
        }
        // Slack absorbs small drift.
        let r = gate_service(&base, &service_doc(400.0, 0.03, 1_000_000, 0.25), &tol);
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn missing_candidate_rows_fail() {
        let base = service_doc(1000.0, 0.0, 0, 0.25);
        let r = gate_service(&base, &doc(Vec::new()), &Tolerances::default());
        assert!(!r.passed());
        let r = gate_service(&json!({}), &base, &Tolerances::default());
        assert!(
            !r.passed(),
            "empty baseline is a failure, not a vacuous pass"
        );
    }

    fn scale_doc(copied: u64, staging: u64, tts: f64) -> Value {
        doc(vec![json!({
            "n": 1000,
            "blob_bytes": 4_000_000u64,
            "tts_sim_s": tts,
            "ttr_mapped_sim_s": 0.5,
            "save_peak_staging_bytes": staging,
            "bytes_copied_mapped": copied,
            "mapped": true,
        })])
    }

    #[test]
    fn scale_invariants_gate_exactly() {
        let base = scale_doc(0, 1 << 20, 2.0);
        let tol = Tolerances::default();
        assert!(gate_scale(&base, &base, &tol).passed());
        assert!(
            !gate_scale(&base, &scale_doc(64, 1 << 20, 2.0), &tol).passed(),
            "copied bytes"
        );
        assert!(
            !gate_scale(&base, &scale_doc(0, 4 << 20, 2.0), &tol).passed(),
            "staging blowup"
        );
        assert!(
            !gate_scale(&base, &scale_doc(0, 1 << 20, 3.0), &tol).passed(),
            "sim regression"
        );
        assert!(gate_scale(&base, &scale_doc(0, (1 << 20) + 1024, 2.1), &tol).passed());
    }

    fn breakdown_row(ctx: &str, total: u64, other: u64) -> Value {
        json!({
            "ctx": ctx,
            "op": "save",
            "count": 1,
            "total_sim_ns": total,
            "other_sim_ns": other,
        })
    }

    fn breakdown_doc(total: u64, other: u64) -> Value {
        doc(vec![breakdown_row("baseline/U1", total, other)])
    }

    #[test]
    fn breakdown_gate_enforces_zero_residual_and_row_sets() {
        let base = breakdown_doc(1_000_000, 0);
        let tol = Tolerances::default();
        assert!(gate_breakdown(&base, &breakdown_doc(1_050_000, 0), &tol).passed());
        assert!(
            !gate_breakdown(&base, &breakdown_doc(1_000_000, 5), &tol).passed(),
            "residual"
        );
        assert!(
            !gate_breakdown(&base, &breakdown_doc(2_000_000, 0), &tol).passed(),
            "sim drift"
        );
        assert!(
            !gate_breakdown(&base, &doc(Vec::new()), &tol).passed(),
            "missing candidate row"
        );
        let extra = doc(vec![
            breakdown_row("baseline/U1", 1_000_000, 0),
            breakdown_row("new/U9", 1, 0),
        ]);
        assert!(
            !gate_breakdown(&base, &extra, &tol).passed(),
            "unexpected extra row"
        );
    }

    fn query_doc(count_true: u64, scan_tag: u64, ms_true: f64) -> Value {
        doc(vec![json!({
            "n": 1000,
            "count_true": count_true,
            "scan_true": count_true,
            "ms_true": ms_true,
            "count_pred": 300,
            "ms_pred": 1.0,
            "count_tag": 10,
            "scan_tag": scan_tag,
            "ms_tag": 0.1,
            "count_depth": 500,
            "ms_depth": 1.2,
            "count_sim": 120,
            "ms_sim": 4.0,
        })])
    }

    #[test]
    fn query_gate_compares_counts_exactly_and_latency_with_slack() {
        let base = query_doc(1000, 10, 2.0);
        let tol = Tolerances::default();
        assert!(gate_query(&base, &base, &tol).passed());
        // Latency inside the machine-variance cap passes; counts do not drift.
        assert!(gate_query(&base, &query_doc(1000, 10, 7.0), &tol).passed());
        let r = gate_query(&base, &query_doc(999, 10, 2.0), &tol);
        assert!(!r.passed(), "count drift must fail");
        assert!(r.failures().iter().any(|c| c.name.contains("count_true")), "{}", r.render());
        let r = gate_query(&base, &query_doc(1000, 1000, 2.0), &tol);
        assert!(
            r.failures().iter().any(|c| c.name.contains("scan_tag")),
            "a tag probe that stops narrowing the scan must fail: {}",
            r.render()
        );
        let r = gate_query(&base, &query_doc(1000, 10, 2.0 * tol.throughput_factor + 1.0), &tol);
        assert!(
            r.failures().iter().any(|c| c.name.contains("ms_true")),
            "latency blowup past the cap must fail: {}",
            r.render()
        );
        assert!(!gate_query(&base, &doc(Vec::new()), &tol).passed(), "missing candidate row");
        assert!(
            !gate_query(&doc(Vec::new()), &base, &tol).passed(),
            "empty baseline is a failure, not a vacuous pass"
        );
    }

    #[test]
    fn report_renders_pass_and_fail_lines() {
        let base = service_doc(1000.0, 0.0, 0, 0.25);
        let text = gate_service(
            &base,
            &service_doc(10.0, 0.0, 0, 0.25),
            &Tolerances::default(),
        )
        .render();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("gate FAIL"), "{text}");
        assert!(text.contains("PASS"), "{text}");
    }
}
