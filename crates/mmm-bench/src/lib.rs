#![warn(missing_docs)]

//! Benchmark harness reproducing the paper's evaluation (§4).
//!
//! The library half of `mmm-bench`: [`experiment`] drives the Figure-2
//! scenario (U1 followed by U3 update cycles) across all four approaches
//! and measures storage consumption, time-to-save and time-to-recover;
//! [`report`] renders the results as the tables/series the paper's
//! figures show. The `repro` binary exposes one subcommand per figure
//! and in-text experiment (see DESIGN.md's experiment index); the
//! Criterion benches under `benches/` reuse the same machinery at
//! smaller scale.

pub mod experiment;
pub mod gate;
pub mod report;

pub use experiment::{run_scenario, ExperimentConfig, ScenarioResult, UseCaseCell};
