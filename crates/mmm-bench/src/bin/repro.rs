//! Reproduce every figure and in-text experiment of the paper.
//!
//! ```text
//! repro <experiment> [--models N] [--cycles K] [--trials T]
//!                    [--setup m1|server|zero] [--threads N] [--out DIR]
//!
//! experiments:
//!   fig3       storage consumption per use case        (Figure 3)
//!   fig4       median time-to-save per use case        (Figure 4a/4b)
//!   fig5       median time-to-recover per use case     (Figure 5a/5b)
//!   rates      storage at 10/20/30 % update rates      (§4.2 in-text)
//!   modelsize  FFNN-48 vs FFNN-69 storage scaling      (§4.2 in-text)
//!   cifar      CIFAR CNN variation                     (§4.2 in-text)
//!   provttr    provenance TTR staircase + full-training
//!              extrapolation                           (§4.4 in-text)
//!   compress   delta-encoding ablation                 (§4.5 discussion)
//!   snapshots  intermediate-full-snapshot ablation     (§2.2 remark)
//!   scaling    storage/TTS vs fleet size               (extension)
//!   selective  recover k of n models (§1's accident    (extension)
//!              scenario), per approach
//!   threads    save/recover wall-clock vs --threads,   (extension)
//!              with storage + simulated-time invariance
//!   dedup      plain vs content-addressed storage,     (extension)
//!              dedup ratio + recovery-cache hit rate
//!   scale      streaming save + zero-copy mmap recovery (extension)
//!              swept to n = 10^6 models; emits BENCH_scale.json
//!   query      query-engine latency vs fleet size over  (extension)
//!              a seeded lake of n committed sets; emits
//!              BENCH_query.json
//!   gate       CI perf-regression gate: rerun the service/
//!              scale/breakdown/query benches and diff against
//!              the committed BENCH_*.json baselines with
//!              tolerances; exits 1 on regression
//!   all        everything above with default settings
//!
//! `--backend plain|cas|tiered` selects the blob storage backend for the
//! scenario experiments; `--cache-mb N` sizes the CAS recovery cache.
//! `scale` sweeps n up to `--models` (default 100000; pass 1000000 for
//! the full million) and writes `BENCH_scale.json` into `--out`/CWD;
//! `query` sweeps the same way (default 100000 sets) and writes
//! `BENCH_query.json`.
//! `gate` reads baselines from `--baseline-dir` (default CWD) and
//! `--update-baselines` rewrites them from fresh runs instead of
//! comparing.
//! ```

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use mmm_bench::experiment::{run_scenario, run_scenario_in_env, ExperimentConfig, ScenarioResult};
use mmm_bench::report;
use mmm_core::delta::DeltaStats;
use mmm_core::env::ManagementEnv;
use mmm_dnn::Architectures;
use mmm_obs::{EventLevel, Observer};
use mmm_store::{LatencyProfile, StorageBackend};
use mmm_util::TempDir;
use mmm_workload::DataSource;

struct Args {
    experiment: String,
    models: Option<usize>,
    cycles: usize,
    trials: usize,
    setup: Option<String>,
    threads: usize,
    backend: StorageBackend,
    cache_mb: Option<u64>,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    verbose: bool,
    baseline_dir: Option<PathBuf>,
    update_baselines: bool,
}

/// The process-wide observer. Disabled (a no-op) unless `--trace-out`,
/// `--metrics-out` or `--verbose` asked for recording.
static OBSERVER: OnceLock<Observer> = OnceLock::new();

fn obs() -> &'static Observer {
    OBSERVER.get_or_init(Observer::disabled)
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        models: None,
        cycles: 3,
        trials: 3,
        setup: None,
        threads: 1,
        backend: StorageBackend::Plain,
        cache_mb: None,
        out: None,
        trace_out: None,
        metrics_out: None,
        verbose: false,
        baseline_dir: None,
        update_baselines: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => args.models = Some(expect_num(&mut it, "--models")),
            "--cycles" => args.cycles = expect_num(&mut it, "--cycles"),
            "--trials" => args.trials = expect_num(&mut it, "--trials"),
            "--threads" => args.threads = expect_num(&mut it, "--threads").max(1),
            "--setup" => args.setup = Some(it.next().unwrap_or_else(|| usage("missing value for --setup"))),
            "--backend" => {
                let name = it.next().unwrap_or_else(|| usage("missing value for --backend"));
                args.backend = StorageBackend::by_name(&name)
                    .unwrap_or_else(|| usage(&format!("unknown backend {name:?} (plain|cas)")));
            }
            "--cache-mb" => args.cache_mb = Some(expect_num(&mut it, "--cache-mb") as u64),
            "--out" => args.out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage("missing value for --out")))),
            "--trace-out" => {
                args.trace_out =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| usage("missing value for --trace-out"))));
            }
            "--metrics-out" => {
                args.metrics_out =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| usage("missing value for --metrics-out"))));
            }
            "--baseline-dir" => {
                args.baseline_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("missing value for --baseline-dir")),
                ));
            }
            "--update-baselines" => args.update_baselines = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => usage(""),
            other if args.experiment.is_empty() && !other.starts_with('-') => {
                args.experiment = other.to_string();
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if args.experiment.is_empty() {
        usage("no experiment given");
    }
    args
}

fn expect_num(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro <fig3|fig4|fig5|rates|modelsize|cifar|provttr|compress|snapshots|scaling|selective|threads|dedup|scale|query|gate|all> \
         [--models N] [--cycles K] [--trials T] [--setup m1|server|zero] [--threads N] \
         [--backend plain|cas|tiered] [--cache-mb N] [--out DIR] \
         [--trace-out FILE] [--metrics-out FILE] [--verbose] \
         [--baseline-dir DIR] [--update-baselines]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn profile(name: &str) -> LatencyProfile {
    LatencyProfile::by_name(name).unwrap_or_else(|| usage(&format!("unknown setup {name:?}")))
}

/// Run `trials` scenario repetitions and return the element-wise median.
fn run_trials(cfg: &ExperimentConfig, trials: usize) -> ScenarioResult {
    let mut runs = Vec::with_capacity(trials);
    let mut lanes = Vec::new();
    for t in 0..trials {
        let dir = TempDir::new("mmm-repro").expect("create temp dir");
        let mut builder = ManagementEnv::builder(dir.path(), cfg.profile)
            .threads(cfg.threads)
            .observer(cfg.observer.clone())
            .backend(cfg.backend);
        if let Some(bytes) = cfg.cache_bytes {
            builder = builder.cache_bytes(bytes);
        }
        let env = builder.open().expect("open environment");
        let start = Instant::now();
        let r = run_scenario_in_env(cfg, &env).expect("scenario run failed");
        // Trial progress is debug output: recorded as an event, printed
        // to stderr only under --verbose (quiet by default).
        obs().event(EventLevel::Info, || {
            format!(
                "[trial {}/{}] {} models, {} cycles, setup {} — {:.1}s wall",
                t + 1,
                trials,
                cfg.n_models,
                cfg.n_cycles,
                cfg.profile.name,
                start.elapsed().as_secs_f64()
            )
        });
        lanes = env.store_stats().lane_history();
        runs.push(r);
    }
    print!("{}", report::run_header(cfg.profile.name, cfg.threads, &lanes));
    ScenarioResult::median(&runs)
}

fn write_csv(out: &Option<PathBuf>, name: &str, csv: &str) {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        eprintln!("  wrote {}", path.display());
    }
}

fn base_config(args: &Args, prof: LatencyProfile) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(prof)
        .with_threads(args.threads)
        .with_observer(obs().clone())
        .with_backend(args.backend);
    cfg.cache_bytes = args.cache_mb.map(|mb| mb * 1024 * 1024);
    cfg.n_cycles = args.cycles;
    if let Some(n) = args.models {
        cfg.n_models = n;
    }
    cfg
}

fn fig3(args: &Args) {
    println!("=== Figure 3: storage consumption per use case (MB) ===");
    println!("paper (5000 x FFNN-48, 10% rate): MMlib-base ~140.3 flat; Baseline ~99.9 flat;");
    println!("Update ~100.1 at U1 then ~8-14 per U3; Provenance ~99.9 at U1 then ~0.16 per U3\n");
    // Storage is independent of the latency profile; one trial suffices
    // (the paper: "the storage consumption is constant").
    let cfg = base_config(args, LatencyProfile::zero());
    let r = run_trials(&cfg, 1);
    println!("{}", report::storage_table(&r));
    summarize_reductions(&r);
    write_csv(&args.out, "fig3_storage", &report::to_csv(&r, "any"));
}

fn summarize_reductions(r: &ScenarioResult) {
    let u1 = |a: &str| r.row(a)[0].storage_bytes as f64;
    println!(
        "U1: Baseline saves {:.1}% less than MMlib-base (paper: 29%)",
        100.0 * (1.0 - u1("baseline") / u1("mmlib-base"))
    );
    if r.use_cases.len() > 1 {
        let u3 = |a: &str| r.row(a)[1].storage_bytes as f64;
        println!(
            "U3: Update saves {:.1}% vs Baseline (paper: 86%), {:.1}% vs MMlib-base (paper: 90%)",
            100.0 * (1.0 - u3("update") / u3("baseline")),
            100.0 * (1.0 - u3("update") / u3("mmlib-base"))
        );
        println!(
            "U3: Provenance saves {:.2}% vs Baseline (paper: 99.84%), {:.2}% vs MMlib-base (paper: 99.89%)",
            100.0 * (1.0 - u3("provenance") / u3("baseline")),
            100.0 * (1.0 - u3("provenance") / u3("mmlib-base"))
        );
    }
}

fn fig_time(args: &Args, which: &str) {
    let (fig, title) = if which == "tts" {
        ("fig4", "Figure 4: median time-to-save per use case (s)")
    } else {
        ("fig5", "Figure 5: median time-to-recover per use case (s)")
    };
    let setups: Vec<String> = match &args.setup {
        Some(s) => vec![s.clone()],
        None => vec!["m1".into(), "server".into()],
    };
    println!("=== {title} ===");
    for setup in setups {
        let cfg = base_config(args, profile(&setup));
        let r = run_trials(&cfg, args.trials);
        println!("\n--- {setup} setup ---");
        let table = if which == "tts" { report::tts_table(&r) } else { report::ttr_table(&r) };
        println!("{table}");
        write_csv(&args.out, &format!("{fig}_{setup}"), &report::to_csv(&r, &setup));
    }
}

fn rates(args: &Args) {
    println!("=== 4.2 in-text: storage vs update rate (MB per U3 iteration) ===");
    println!("paper: only Update's storage correlates with the rate;");
    println!("MMlib-base/Baseline flat; Provenance grows only by 500/1000 extra references\n");
    println!(
        "{:<12}{:>14}{:>14}{:>14}",
        "approach", "10% rate", "20% rate", "30% rate"
    );
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for rate in [0.10, 0.20, 0.30] {
        let mut cfg = base_config(args, LatencyProfile::zero());
        cfg.update_rate = rate;
        cfg.n_cycles = 1;
        let r = run_trials(&cfg, 1);
        for (i, a) in mmm_bench::experiment::APPROACHES.iter().enumerate() {
            rows[i].push(r.row(a)[1].storage_bytes as f64 / 1e6);
        }
    }
    for (i, a) in ["MMlib-base", "Baseline", "Update", "Provenance"].iter().enumerate() {
        println!(
            "{:<12}{:>14.3}{:>14.3}{:>14.3}",
            a, rows[i][0], rows[i][1], rows[i][2]
        );
    }
}

fn modelsize(args: &Args) {
    println!("=== 4.2 in-text: FFNN-48 vs FFNN-69 storage scaling ===");
    println!("paper: MMlib-base x1.7, Baseline/Update x2.0, Provenance unaffected\n");
    let mut results = Vec::new();
    for arch in [Architectures::ffnn48(), Architectures::ffnn69()] {
        let mut cfg = base_config(args, LatencyProfile::zero());
        cfg.n_cycles = 1;
        cfg.arch = arch;
        results.push(run_trials(&cfg, 1));
    }
    println!(
        "{:<12}{:>14}{:>14}{:>10}",
        "approach", "FFNN-48 (MB)", "FFNN-69 (MB)", "factor"
    );
    for a in mmm_bench::experiment::APPROACHES {
        // U1 for the snapshot approaches; U3 for provenance (its U1 is
        // baseline logic and would trivially scale).
        let uc = if a == "provenance" { 1 } else { 0 };
        let s48 = results[0].row(a)[uc].storage_bytes as f64 / 1e6;
        let s69 = results[1].row(a)[uc].storage_bytes as f64 / 1e6;
        println!("{a:<12}{s48:>14.3}{s69:>14.3}{:>10.2}", s69 / s48);
    }
}

fn cifar(args: &Args) {
    println!("=== 4.2 in-text: CIFAR CNN variation ===");
    println!("paper: same trends as FFNN-48 scaled by the parameter-count difference (6882/4993)\n");
    let mut cfg = base_config(args, LatencyProfile::zero());
    // CNN training is much heavier per model; the paper's trends are
    // parameter-count driven, so a smaller fleet preserves them.
    cfg.n_models = args.models.unwrap_or(500);
    cfg.arch = Architectures::cifar_cnn();
    cfg.source = DataSource::Cifar { n_samples: 64 };
    cfg.n_cycles = args.cycles.min(2);
    let r = run_trials(&cfg, 1);
    println!("{}", report::storage_table(&r));
    summarize_reductions(&r);
    write_csv(&args.out, "cifar_storage", &report::to_csv(&r, "any"));
}

fn provttr(args: &Args) {
    let setup = args.setup.clone().unwrap_or_else(|| "server".into());
    println!("=== 4.4 in-text: Provenance TTR staircase ({setup} setup) ===");
    println!("paper: reduced-training runs show the staircase; an extensive training");
    println!("(90k samples, 10 epochs) measured ~6h / 12h / 18h for U3-1/2/3\n");
    let mut cfg = base_config(args, profile(&setup));
    cfg.prov_reduced = true;
    let r = run_trials(&cfg, args.trials);
    println!("{}", report::ttr_table(&r));

    // Extrapolate the paper's "extensive training" numbers: measure the
    // per-(sample·epoch) training cost of one model, scale to 90 000
    // samples x 10 epochs x (10% of the fleet retrained per level).
    let arch = Architectures::ffnn48();
    let src = DataSource::battery_default();
    let ds = src.dataset(0, 1, cfg.seed);
    let train = mmm_dnn::TrainConfig { epochs: 2, ..mmm_dnn::TrainConfig::regression_default(1) };
    let mut model = arch.build(1);
    let t0 = Instant::now();
    let targets = match &ds.targets {
        mmm_data::Targets::Regression(t) => mmm_dnn::train::TrainTargets::Regression(t.clone()),
        mmm_data::Targets::Labels(l) => mmm_dnn::train::TrainTargets::Classification(l.clone()),
    };
    mmm_dnn::train_model(&mut model, &ds.inputs, &targets, &train);
    let per_sample_epoch = t0.elapsed().as_secs_f64() / (ds.len() as f64 * train.epochs as f64);
    let per_model_extensive = per_sample_epoch * 90_000.0 * 10.0;
    let updated = (cfg.n_models as f64 * cfg.update_rate).round();
    println!(
        "\nextensive-training extrapolation: {:.3} ms/(sample*epoch) -> {:.0} s/model ->",
        per_sample_epoch * 1e3,
        per_model_extensive
    );
    for level in 1..=cfg.n_cycles {
        println!(
            "  U3-{level}: ~{:.1} h  (paper measured ~{} h on its non-optimized pipeline)",
            level as f64 * updated * per_model_extensive / 3600.0,
            6 * level
        );
    }
}

fn compress(args: &Args) {
    println!("=== 4.5 discussion: delta-encoding ablation on Update ===");
    println!("paper (future work): related work shows delta encoding reduces storage further\n");
    let mut cfg = base_config(args, LatencyProfile::zero());
    cfg.n_models = args.models.unwrap_or(500);
    cfg.n_cycles = 1;

    // Drive one update cycle manually so we hold both versions of every
    // changed layer.
    let dir = TempDir::new("mmm-compress").expect("temp dir");
    let registry = mmm_data::DatasetRegistry::open(dir.path()).expect("registry");
    let mut fleet = mmm_workload::Fleet::initial(mmm_workload::FleetConfig {
        n_models: cfg.n_models,
        seed: cfg.seed,
        arch: cfg.arch.clone(),
    });
    let before = fleet.to_model_set();
    let policy = mmm_workload::UpdatePolicy::paper_default(cfg.source.clone())
        .with_update_rate(cfg.update_rate);
    let record = fleet.run_update_cycle(&registry, &policy).expect("update cycle");
    let after = fleet.to_model_set();

    let mut raw = 0usize;
    let mut encoded = 0usize;
    let mut layers = 0usize;
    for u in &record.updates {
        let (b, a) = (&before.models[u.model_idx], &after.models[u.model_idx]);
        for (lb, la) in b.layers.iter().zip(&a.layers) {
            if lb.data != la.data {
                let stats = DeltaStats::measure(&lb.data, &la.data);
                raw += stats.raw_bytes;
                encoded += stats.encoded_bytes;
                layers += 1;
            }
        }
    }
    println!("{layers} changed layers across {} updated models", record.updates.len());
    println!("raw diff payload:     {raw:>12} bytes");
    println!("delta-encoded:        {encoded:>12} bytes");
    println!("compression ratio:    {:>12.3}", encoded as f64 / raw.max(1) as f64);

    // End-to-end: the integrated saver with and without compression.
    use mmm_core::approach::ApproachSpec;
    use mmm_core::env::ManagementEnv;
    for (label, spec) in [
        ("update (plain)", "update"),
        ("update:delta", "update:delta"),
    ] {
        let mut saver = ApproachSpec::parse(spec).expect("approach spec").build();
        let d = TempDir::new("mmm-compress-env").expect("temp dir");
        let env = ManagementEnv::open(d.path(), mmm_store::LatencyProfile::zero()).expect("env");
        let id0 = saver.save_initial(&env, &before).expect("save U1");
        let deriv = record.derivation(id0);
        let (id1, m) = env.measure(|| saver.save_set(&env, &after, Some(&deriv)).expect("save U3"));
        let recovered = saver.recover_set(&env, &id1).expect("recover");
        assert_eq!(recovered, after, "compressed roundtrip must be bit-exact");
        println!(
            "{label}: derived save = {:.3} MB in {:.3}s (bit-exact recovery: true)",
            m.bytes_written() as f64 / 1e6,
            m.duration.as_secs_f64()
        );
    }
    println!("\n(XOR deltas of retrained layers are near-random, so the win is small for");
    println!("fully retrained layers -- consistent with the paper treating this as future work.)");
}

fn snapshots(args: &Args) {
    println!("=== 2.2 remark: intermediate full snapshots for the Update approach ===");
    println!("paper: recursively increasing recovery times \"can be prevented by saving");
    println!("intermediate model snapshots using the baseline approach\"\n");

    use mmm_core::approach::ApproachSpec;
    use mmm_core::env::ManagementEnv;
    use mmm_core::model_set::Derivation;
    use mmm_dnn::TrainConfig;
    use mmm_workload::{Fleet, FleetConfig, UpdatePolicy};

    let n_models = args.models.unwrap_or(1000);
    // 7 cycles: with interval 4 the final set sits at depth 3, showing
    // the bounded-but-nonzero chain rather than landing on a snapshot.
    let cycles = 7usize;
    println!(
        "{:<12}{:>16}{:>16}{:>14}",
        "interval", "total MB", "TTR last (s)", "chain depth"
    );
    for interval in [0usize, 4, 2] {
        let dir = TempDir::new("mmm-snap").expect("temp dir");
        let env = ManagementEnv::open(dir.path(), profile("m1")).expect("env");
        let mut fleet = Fleet::initial(FleetConfig {
            n_models,
            seed: 7,
            arch: Architectures::ffnn48(),
        });
        let policy = UpdatePolicy::paper_default(DataSource::battery_small());
        let spec = if interval == 0 {
            "update".to_string()
        } else {
            format!("update:snapshot-every={interval}")
        };
        let mut saver = ApproachSpec::parse(&spec).expect("approach spec").build();
        let before = env.stats();
        let mut last = saver
            .save_initial(&env, &fleet.to_model_set())
            .expect("save U1");
        for _ in 0..cycles {
            let record = fleet.run_update_cycle(env.registry(), &policy).expect("cycle");
            let deriv: Derivation = record.derivation(last.clone());
            let _ = TrainConfig::regression_default(0);
            last = saver
                .save_set(&env, &fleet.to_model_set(), Some(&deriv))
                .expect("save U3");
        }
        let total_bytes = (env.stats() - before).bytes_written;
        let depth = mmm_core::lineage::recovery_depth(&env, &last).expect("lineage");
        let (_, m) = env.measure(|| saver.recover_set(&env, &last).expect("recover"));
        let label = if interval == 0 { "none".to_string() } else { format!("every {interval}") };
        println!(
            "{label:<12}{:>16.2}{:>16.3}{:>14}",
            total_bytes as f64 / 1e6,
            m.duration.as_secs_f64(),
            depth
        );
    }
    println!("\n(smaller intervals trade extra full-snapshot storage for a bounded TTR)");
}

fn scaling(args: &Args) {
    println!("=== extension: storage and TTS scaling with fleet size (server profile) ===");
    println!("the paper's scenario assumes n >> 1000; this sweep shows every approach's");
    println!("save cost is linear in n while the set-oriented op counts stay constant\n");
    println!(
        "{:<10}{:>14}{:>14}{:>16}{:>16}{:>14}",
        "n", "mmlib MB", "baseline MB", "mmlib TTS (s)", "baseline TTS", "baseline ops"
    );
    for n in [500usize, 1000, 2000, 4000] {
        let mut cfg = base_config(args, profile("server"));
        cfg.n_models = n;
        cfg.n_cycles = 0;
        let dir = TempDir::new("mmm-scaling").expect("temp dir");
        let r = run_scenario(&cfg, dir.path()).expect("scenario");
        let mm = r.row("mmlib-base")[0];
        let bl = r.row("baseline")[0];
        println!(
            "{n:<10}{:>14.2}{:>14.2}{:>16.3}{:>16.3}{:>14}",
            mm.storage_bytes as f64 / 1e6,
            bl.storage_bytes as f64 / 1e6,
            mm.tts.as_secs_f64(),
            bl.tts.as_secs_f64(),
            2, // one metadata doc + one blob, by construction
        );
    }
}

fn selective(args: &Args) {
    println!("=== extension: selective recovery (the paper's accident scenario) ===");
    println!("recover k of n models at U3-2; full-set TTR shown for contrast (m1 profile)\n");

    use mmm_core::approach::{ApproachKind, ApproachSpec, ModelSetSaver};
    use mmm_core::env::ManagementEnv;
    use mmm_core::model_set::ModelSetId;
    use mmm_workload::{Fleet, FleetConfig, UpdatePolicy};

    let n = args.models.unwrap_or(2000);
    let k = 10usize;
    let dir = TempDir::new("mmm-selective").expect("temp dir");
    let env = ManagementEnv::open(dir.path(), profile("m1")).expect("env");
    let mut fleet = Fleet::initial(FleetConfig { n_models: n, seed: 7, arch: Architectures::ffnn48() });
    let policy = UpdatePolicy::paper_default(DataSource::battery_small());

    let mut savers: Vec<Box<dyn ModelSetSaver>> = ApproachKind::ALL
        .iter()
        .map(|&kind| ApproachSpec::new(kind).build())
        .collect();
    let mut ids: Vec<Vec<ModelSetId>> = vec![Vec::new(); savers.len()];
    let initial = fleet.to_model_set();
    for (s, saver) in savers.iter_mut().enumerate() {
        ids[s].push(saver.save_initial(&env, &initial).expect("save U1"));
    }
    for _ in 0..2 {
        let record = fleet.run_update_cycle(env.registry(), &policy).expect("cycle");
        let set = fleet.to_model_set();
        for (s, saver) in savers.iter_mut().enumerate() {
            let deriv = record.derivation(ids[s].last().unwrap().clone());
            ids[s].push(saver.save_set(&env, &set, Some(&deriv)).expect("save U3"));
        }
    }

    let picked: Vec<usize> = (0..k).map(|i| i * (n / k)).collect();
    println!(
        "{:<12}{:>18}{:>18}{:>14}",
        "approach",
        format!("recover {k} (s)"),
        "recover all (s)",
        "MB read (k)"
    );
    for (s, saver) in savers.iter().enumerate() {
        let last = ids[s].last().unwrap();
        let (_, mp) = env.measure(|| saver.recover_models(&env, last, &picked).expect("partial"));
        let (_, mf) = env.measure(|| saver.recover_set(&env, last).expect("full"));
        println!(
            "{:<12}{:>18.3}{:>18.3}{:>14.3}",
            saver.name(),
            mp.duration.as_secs_f64(),
            mf.duration.as_secs_f64(),
            mp.stats.bytes_read as f64 / 1e6
        );
    }
    println!("\n(selective recovery flips the picture: per-model storage — MMlib-base's");
    println!("weakness at set scale — is competitive when only k models are needed,");
    println!("while Baseline/Update win via ranged reads of the concatenated blob.)");
}

fn threads(args: &Args) {
    println!("=== extension: save/recover wall-clock vs worker threads ===");
    println!("zero-latency profile isolates CPU work (encode/hash/compress).");
    println!("storage bytes are asserted identical across thread counts; the");
    println!("simulated-clock invariants are pinned by tests/parallel_stress.rs.");
    println!("TTS/TTR below are hybrid (real + simulated), so they track the wall");
    println!("clock, which scales with min(threads, cores)\n");
    let n = args.models.unwrap_or(1000);
    let sweep: Vec<usize> = if args.threads > 1 { vec![1, args.threads] } else { vec![1, 2, 4, 8] };
    println!(
        "{:<10}{:>14}{:>16}{:>16}{:>12}",
        "threads", "wall (s)", "sum TTS (s)", "sum TTR (s)", "MB written"
    );
    let mut reference: Option<(u64, std::time::Duration, std::time::Duration)> = None;
    for &t in &sweep {
        let mut cfg = ExperimentConfig::small(n, 1).with_threads(t).with_observer(obs().clone());
        cfg.arch = Architectures::ffnn48();
        let dir = TempDir::new("mmm-threads").expect("temp dir");
        let start = Instant::now();
        let r = run_scenario(&cfg, dir.path()).expect("scenario");
        let wall = start.elapsed();
        let mut bytes = 0u64;
        let mut tts = std::time::Duration::ZERO;
        let mut ttr = std::time::Duration::ZERO;
        for a in mmm_bench::experiment::APPROACHES {
            for cell in r.row(a) {
                bytes += cell.storage_bytes;
                tts += cell.tts;
                ttr += cell.ttr;
            }
        }
        println!(
            "{t:<10}{:>14.2}{:>16.3}{:>16.3}{:>12.2}",
            wall.as_secs_f64(),
            tts.as_secs_f64(),
            ttr.as_secs_f64(),
            bytes as f64 / 1e6
        );
        match &reference {
            None => reference = Some((bytes, tts, ttr)),
            Some((b0, _, _)) => {
                assert_eq!(bytes, *b0, "storage must be thread-count invariant");
            }
        }
    }
    println!("\n(nproc = {}; speedup is bounded by min(threads, cores))",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
}

fn dedup(args: &Args) {
    println!("=== extension: content-addressed dedup + recovery cache ===");
    println!("the cas backend chunks parameter blobs on layer edges and stores each");
    println!("distinct chunk once; repeat recoveries are served from an LRU cache\n");

    use mmm_core::approach::ApproachSpec;

    // Full scenario under both backends: per-approach charged bytes.
    let mut results = Vec::new();
    for backend in [StorageBackend::Plain, StorageBackend::Cas] {
        let mut cfg = base_config(args, LatencyProfile::zero());
        cfg.n_models = args.models.unwrap_or(500);
        cfg.backend = backend;
        let dir = TempDir::new("mmm-dedup").expect("temp dir");
        let mut builder = ManagementEnv::builder(dir.path(), cfg.profile)
            .threads(cfg.threads)
            .observer(cfg.observer.clone())
            .backend(backend);
        if let Some(bytes) = cfg.cache_bytes {
            builder = builder.cache_bytes(bytes);
        }
        let env = builder.open().expect("env");
        let r = run_scenario_in_env(&cfg, &env).expect("scenario");
        if backend == StorageBackend::Cas {
            let c = env.cas().expect("cas store").counters();
            println!(
                "cas: {} chunk puts ({:.2} MB written), {} dedup hits ({:.2} MB avoided)",
                c.chunk_puts,
                c.chunk_put_bytes as f64 / 1e6,
                c.dedup_hits,
                c.dedup_bytes as f64 / 1e6
            );
            let total = c.chunk_put_bytes + c.dedup_bytes;
            println!(
                "dedup ratio: {:.3} (stored / logical chunk bytes)\n",
                c.chunk_put_bytes as f64 / total.max(1) as f64
            );
        }
        results.push(r);
    }
    println!(
        "{:<12}{:>16}{:>16}{:>10}",
        "approach", "plain (MB)", "cas (MB)", "saved %"
    );
    for a in mmm_bench::experiment::APPROACHES {
        let total = |r: &ScenarioResult| {
            r.row(a).iter().map(|c| c.storage_bytes).sum::<u64>() as f64 / 1e6
        };
        let (plain, cas) = (total(&results[0]), total(&results[1]));
        println!(
            "{a:<12}{plain:>16.3}{cas:>16.3}{:>10.1}",
            100.0 * (1.0 - cas / plain.max(f64::MIN_POSITIVE))
        );
    }

    // Warm-cache demonstration: the same selective recovery twice; the
    // repeat run is served from the cache and charges no simulated time.
    let n = args.models.unwrap_or(500);
    let dir = TempDir::new("mmm-dedup-cache").expect("temp dir");
    let cache_bytes = args.cache_mb.map(|mb| mb * 1024 * 1024).unwrap_or(64 * 1024 * 1024);
    let env = ManagementEnv::builder(dir.path(), profile("m1"))
        .backend(StorageBackend::Cas)
        .cache_bytes(cache_bytes)
        .open()
        .expect("env");
    let fleet = mmm_workload::Fleet::initial(mmm_workload::FleetConfig {
        n_models: n,
        seed: 7,
        arch: Architectures::ffnn48(),
    });
    let mut saver = ApproachSpec::parse("baseline").expect("spec").build();
    let id = saver.save_initial(&env, &fleet.to_model_set()).expect("save");
    let picked: Vec<usize> = (0..10).map(|i| i * (n / 10).max(1)).filter(|&i| i < n).collect();
    let c0 = env.cas().expect("cas").counters();
    let (_, cold) = env.measure(|| saver.recover_models(&env, &id, &picked).expect("cold"));
    let c1 = env.cas().expect("cas").counters();
    let (_, warm) = env.measure(|| saver.recover_models(&env, &id, &picked).expect("warm"));
    let c2 = env.cas().expect("cas").counters();
    println!(
        "\ncold recover of {} models: {:.3} s simulated, {} cache-hit bytes",
        picked.len(),
        cold.sim.as_secs_f64(),
        c1.cache_hit_bytes - c0.cache_hit_bytes
    );
    println!(
        "warm recover of {} models: {:.3} s simulated, {} cache-hit bytes",
        picked.len(),
        warm.sim.as_secs_f64(),
        c2.cache_hit_bytes - c1.cache_hit_bytes
    );
    println!("(cache hits charge no simulated store latency, so warm TTR < cold TTR)");
}

fn scale(args: &Args) {
    use mmm_core::approach::BaselineSaver;
    use mmm_core::{param_codec, tiering};
    use mmm_util::{mem, xxhash64, Hasher64};
    use serde_json::json;

    println!("=== extension: million-model scale — streaming save, zero-copy recovery ===");
    println!("the save streams generated models through a bounded chunk buffer (peak");
    println!("staging = O(chunk), not O(set)); recovery decodes one model at a time");
    println!("straight out of a page-cache mapping (0 copied bytes per recovered byte).");
    println!("every path is hash-verified against the saved byte stream; the full");
    println!("threaded decode is cross-checked at n <= 100000\n");

    let prof = profile(args.setup.as_deref().unwrap_or("m1"));
    let arch = Architectures::ffnn(2);
    let layer_names = arch.parametric_layer_names();
    let layer_sizes = arch.parametric_layer_sizes();
    let per_model = param_codec::per_model_params(&layer_sizes).expect("per-model params");
    let model_bytes = 4 * per_model;

    // Default sweep tops out at 100k (seconds of wall time); ask for the
    // full million with `--models 1000000`.
    let max_n = args.models.unwrap_or(100_000);
    let mut sweep: Vec<usize> =
        [1_000usize, 10_000, 100_000, 1_000_000].into_iter().filter(|&n| n < max_n).collect();
    sweep.push(max_n);

    // Materializing all n dicts for the threaded block decode is the one
    // O(set)-memory step, so the cross-check is capped; the streaming
    // visit path is verified at every n.
    const FULL_DECODE_CAP: usize = 100_000;
    let check_threads = [1usize, 4];

    println!(
        "{:<10}{:>10}{:>11}{:>11}{:>12}{:>12}{:>12}{:>14}{:>8}",
        "models", "blob MB", "TTS (s)", "TTR (s)", "sim TTS", "sim TTR", "staging MB",
        "copied/byte", "mapped"
    );

    let mut rows = Vec::new();
    for &n in &sweep {
        let dir = TempDir::new("mmm-scale").expect("temp dir");
        let env = ManagementEnv::builder(dir.path(), prof)
            .backend(args.backend)
            .threads(args.threads)
            .observer(obs().clone())
            .open()
            .expect("env");
        let mut saver = BaselineSaver::new();

        // Streaming save from a generator: no Vec<ParamDict> of the whole
        // fleet ever exists. The concat blob is exactly the byte stream the
        // generator appends, so one running hash of it verifies every
        // recovery path below.
        let mut save_hasher = Hasher64::new(0);
        mem::reset_peak();
        let (id, save_m) = env.measure(|| {
            saver
                .save_streamed(&env, &arch, n, |i, buf| {
                    let before = buf.len();
                    let dict = arch.build(0xA11CE + i as u64).export_param_dict();
                    param_codec::append_model_record(&dict, buf);
                    save_hasher.update(&buf[before..]);
                    Ok(())
                })
                .expect("streamed save")
        });
        let staging_peak = mem::peak_bytes();
        let save_hash = save_hasher.finish();
        let blob_bytes = (model_bytes * n) as u64;
        let key = format!("baseline/{}/params.bin", id.key);

        // Reference read path: one full copy of the blob into a Vec.
        let (copied_hash, ttr_copy_m) = env.measure(|| {
            let bytes = env.blobs().get(&key).expect("copying get");
            xxhash64(&bytes, 0)
        });
        assert_eq!(copied_hash, save_hash, "copying read must match the saved stream");

        // Zero-copy streaming recovery: decode one model at a time from the
        // mapping, re-encode each visited model and hash — proves the
        // *decoded* models are bit-identical to what the generator saved.
        let mut visit_hasher = Hasher64::new(0);
        let mut record = Vec::with_capacity(model_bytes);
        let ((), ttr_map_m) = env.measure(|| {
            saver
                .recover_visit(&env, &id, |_, dict| {
                    record.clear();
                    param_codec::append_model_record(&dict, &mut record);
                    visit_hasher.update(&record);
                    Ok(())
                })
                .expect("visit recovery")
        });
        assert_eq!(visit_hasher.finish(), save_hash, "streamed decode must be bit-identical");

        let mapped_view = env.blobs().get_mapped(&key).expect("mapped get");
        let mapped = mapped_view.is_mapped();
        assert_eq!(xxhash64(&mapped_view, 0), save_hash, "mapped view must match");

        let mut verified_threads = Vec::new();
        if n <= FULL_DECODE_CAP {
            for &t in &check_threads {
                let dicts = param_codec::decode_concat_threaded(
                    &mapped_view,
                    n,
                    &layer_names,
                    &layer_sizes,
                    t,
                )
                .expect("threaded decode");
                let bytes = param_codec::encode_concat_threaded(&dicts, t).expect("re-encode");
                assert_eq!(
                    xxhash64(&bytes, 0),
                    save_hash,
                    "threads={t} block decode must be bit-identical"
                );
                verified_threads.push(t);
            }
        }
        drop(mapped_view);

        // On the tiered backend, also demote the set cold and prove the
        // slow tier recovers bit-identically (just more simulated time).
        let mut cold = json!(null);
        if env.tiered().is_some() {
            let rep = tiering::demote_old_sets(&env, std::slice::from_ref(&id), 0)
                .expect("demote to cold");
            let mut cold_hasher = Hasher64::new(0);
            let ((), ttr_cold_m) = env.measure(|| {
                saver
                    .recover_visit(&env, &id, |_, dict| {
                        record.clear();
                        param_codec::append_model_record(&dict, &mut record);
                        cold_hasher.update(&record);
                        Ok(())
                    })
                    .expect("cold recovery")
            });
            assert_eq!(cold_hasher.finish(), save_hash, "cold-tier recovery must be bit-identical");
            let tiered = env.tiered().expect("tiered store");
            cold = json!({
                "bytes_demoted": rep.bytes_demoted,
                "cold_disk_bytes": tiered.tier_disk_bytes(mmm_store::StorageTier::Cold),
                "ttr_cold_wall_s": ttr_cold_m.duration.as_secs_f64(),
                "ttr_cold_sim_s": ttr_cold_m.sim.as_secs_f64(),
            });
        }

        let copied_per_byte_mapped =
            ttr_map_m.stats.bytes_copied as f64 / ttr_map_m.stats.bytes_read.max(1) as f64;
        let copied_per_byte_copying =
            ttr_copy_m.stats.bytes_copied as f64 / ttr_copy_m.stats.bytes_read.max(1) as f64;
        let rss_peak = mem::os_peak_rss_bytes().unwrap_or(0);

        println!(
            "{n:<10}{:>10.2}{:>11.3}{:>11.3}{:>12.3}{:>12.3}{:>12.2}{:>14.3}{:>8}",
            blob_bytes as f64 / 1e6,
            save_m.duration.as_secs_f64(),
            ttr_map_m.duration.as_secs_f64(),
            save_m.sim.as_secs_f64(),
            ttr_map_m.sim.as_secs_f64(),
            staging_peak as f64 / 1e6,
            copied_per_byte_mapped,
            mapped
        );

        rows.push(json!({
            "n": n,
            "blob_bytes": blob_bytes,
            "tts_wall_s": save_m.duration.as_secs_f64(),
            "tts_sim_s": save_m.sim.as_secs_f64(),
            "save_peak_staging_bytes": staging_peak,
            "ttr_mapped_wall_s": ttr_map_m.duration.as_secs_f64(),
            "ttr_mapped_sim_s": ttr_map_m.sim.as_secs_f64(),
            "ttr_copying_wall_s": ttr_copy_m.duration.as_secs_f64(),
            "ttr_copying_sim_s": ttr_copy_m.sim.as_secs_f64(),
            "bytes_read_mapped": ttr_map_m.stats.bytes_read,
            "bytes_copied_mapped": ttr_map_m.stats.bytes_copied,
            "bytes_copied_copying": ttr_copy_m.stats.bytes_copied,
            "copied_per_recovered_byte_mapped": copied_per_byte_mapped,
            "copied_per_recovered_byte_copying": copied_per_byte_copying,
            "mapped": mapped,
            "bit_identical_threads": verified_threads,
            "peak_rss_bytes": rss_peak,
            "cold": cold,
        }));
    }

    let report = json!({
        "experiment": "scale",
        "arch": arch.name,
        "model_bytes": model_bytes,
        "backend": args.backend.name(),
        "setup": prof.name,
        "stream_chunk_bytes": mmm_core::env::DEFAULT_STREAM_CHUNK_BYTES,
        "threads": args.threads,
        "rows": rows,
    });
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).expect("create out dir");
    let path = dir.join("BENCH_scale.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serialize report"))
        .expect("write BENCH_scale.json");
    eprintln!("  wrote {}", path.display());
    println!("\n(staging MB stays at the chunk size while blob MB grows: O(chunk) saves;");
    println!(" copied/byte is 0 on the mapped path vs 1 on the copying path)");
}

fn query_bench(args: &Args) {
    use mmm_core::approach::SETS_COLLECTION;
    use mmm_core::model_set::ModelSetId;
    use mmm_core::{commit, param_codec, query, tags};
    use serde_json::json;

    println!("=== extension: query latency vs fleet size — one read path over the lake ===");
    println!("seeds n committed update-chain sets (chains of 10, every 100th tagged prod,");
    println!("layer-hash tables arranged so similarity to set 0 is i%9/8), then times five");
    println!("representative queries; counts and scan sizes are deterministic in n\n");

    let max_n = args.models.unwrap_or(100_000);
    let mut sweep: Vec<usize> =
        [100usize, 1_000, 10_000, 100_000].into_iter().filter(|&n| n < max_n).collect();
    sweep.push(max_n);
    let trials = args.trials.max(1);

    println!(
        "{:<10}{:>9}{:>9}{:>10}{:>9}{:>10}{:>9}{:>9}{:>10}{:>9}",
        "models", "true ms", "pred ms", "pred hit", "tag ms", "tag scan", "depth ms",
        "sim ms", "sim hit", "seed s"
    );

    let mut rows = Vec::new();
    for &n in &sweep {
        let dir = TempDir::new("mmm-query").expect("temp dir");
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).expect("env");

        // Seed n sets as committed update-approach catalog rows: chains
        // of 10 linked through `base` (head kind full, rest diff),
        // n_models cycling 4..=16, every 100th set tagged `prod`, and a
        // per-set layer-hash blob whose overlap with set 0 is exactly
        // (i % 9) of 8 layers — so every query below has a count that is
        // a pure function of n.
        let seed_t0 = Instant::now();
        let mut first_key = String::new();
        let mut prev_key = String::new();
        for i in 0..n {
            let head = i % 10 == 0;
            let doc = if head {
                json!({ "approach": "update", "kind": "full", "n_models": 4 + (i % 13) })
            } else {
                json!({
                    "approach": "update",
                    "kind": "diff",
                    "n_models": 4 + (i % 13),
                    "base": prev_key,
                })
            };
            let doc_id = env
                .docs()
                .insert(SETS_COLLECTION, doc)
                .expect("insert set doc");
            let key = doc_id.to_string();
            let shared = if i == 0 { 8 } else { i % 9 };
            let row: Vec<u64> = (0..8u64)
                .map(|j| if (j as usize) < shared { j } else { 0x10000 + (i as u64) * 8 + j })
                .collect();
            let blob = param_codec::encode_hashes(&vec![row; 4]);
            env.blobs()
                .put(&format!("update/{key}/hashes.bin"), &blob)
                .expect("put hash table");
            let id = ModelSetId { approach: "update".into(), key: key.clone() };
            commit::commit_save(&env, &id).expect("commit");
            if i % 100 == 0 {
                tags::tag_set(&env, &id, "prod").expect("tag");
            }
            if i == 0 {
                first_key = key.clone();
            }
            prev_key = key;
        }
        let seed_s = seed_t0.elapsed().as_secs_f64();

        let time_query = |expr: &str| {
            let mut best_ms = f64::INFINITY;
            let (mut count, mut scanned) = (0usize, 0usize);
            for _ in 0..trials {
                let t0 = Instant::now();
                let out = query::run(&env, expr).expect("query");
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                count = out.records.len();
                scanned = out.scanned;
            }
            (best_ms, count, scanned)
        };

        let (ms_true, count_true, scan_true) = time_query("true");
        assert_eq!(count_true, n, "`true` must return the whole committed lake");
        let (ms_pred, count_pred, _) = time_query("kind = \"diff\" and n_models >= 10");
        let (ms_tag, count_tag, scan_tag) = time_query("tag:prod");
        assert_eq!(count_tag, n.div_ceil(100), "every 100th set is tagged");
        assert_eq!(scan_tag, count_tag, "the tag probe must narrow the scan to the index hits");
        let (ms_depth, count_depth, _) = time_query("depth >= 5");
        let (ms_sim, count_sim, _) =
            time_query(&format!("similar-to(update:{first_key}, 0.5)"));

        println!(
            "{n:<10}{ms_true:>9.2}{ms_pred:>9.2}{count_pred:>10}{ms_tag:>9.3}{scan_tag:>10}\
             {ms_depth:>9.2}{ms_sim:>9.2}{count_sim:>10}{seed_s:>9.1}"
        );

        rows.push(json!({
            "n": n,
            "count_true": count_true,
            "scan_true": scan_true,
            "ms_true": ms_true,
            "count_pred": count_pred,
            "ms_pred": ms_pred,
            "count_tag": count_tag,
            "scan_tag": scan_tag,
            "ms_tag": ms_tag,
            "count_depth": count_depth,
            "ms_depth": ms_depth,
            "count_sim": count_sim,
            "ms_sim": ms_sim,
            "seed_wall_s": seed_s,
        }));
    }

    let report = json!({
        "experiment": "query",
        "trials": trials,
        "rows": rows,
    });
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).expect("create out dir");
    let path = dir.join("BENCH_query.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serialize report"))
        .expect("write BENCH_query.json");
    eprintln!("  wrote {}", path.display());
    println!("\n(`tag scan` stays at n/100 while models grows: the planner serves tag:");
    println!(" queries from the tag index instead of scanning the whole catalog)");
}

/// Breakdown-baseline scenario shape: small enough for CI, non-zero
/// latency profile so the simulated phase times actually gate.
const GATE_BREAKDOWN_MODELS: usize = 8;
const GATE_BREAKDOWN_CYCLES: usize = 2;
const GATE_BREAKDOWN_THREADS: usize = 2;

fn read_json_doc(path: &std::path::Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: read {}: {e}", path.display());
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: parse {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// Rerun the service bench with the baseline's parameters (seed,
/// saves/thread, commit window, thread counts) so the comparison is
/// like-for-like.
fn gate_service_candidate(baseline: Option<&serde_json::Value>) -> serde_json::Value {
    use serde_json::Value;
    let mut config = mmm_workload::chaos::ChaosConfig {
        commit_window: std::time::Duration::from_millis(2),
        ..mmm_workload::chaos::ChaosConfig::default()
    };
    let mut saves_per_thread = 25usize;
    let mut thread_counts: Vec<usize> = vec![1, 4];
    if let Some(b) = baseline {
        if let Some(s) = b.get("seed").and_then(Value::as_u64) {
            config.seed = s;
        }
        if let Some(w) = b.get("commit_window_ms").and_then(Value::as_u64) {
            config.commit_window = std::time::Duration::from_millis(w);
        }
        if let Some(s) = b.get("saves_per_thread").and_then(Value::as_u64) {
            saves_per_thread = s as usize;
        }
        let from_rows: Vec<usize> = b
            .get("rows")
            .and_then(Value::as_array)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| r.get("threads").and_then(Value::as_u64))
                    .map(|t| t as usize)
                    .collect()
            })
            .unwrap_or_default();
        if !from_rows.is_empty() {
            thread_counts = from_rows;
        }
    }
    let tmp = TempDir::new("mmm-gate-svc").expect("temp dir");
    let bench =
        mmm_workload::chaos::service_bench(tmp.path(), &thread_counts, saves_per_thread, &config)
            .expect("service bench");
    mmm_workload::chaos::service_bench_json(&config, saves_per_thread, &bench)
}

/// Run the fixed small scenario under a private observer and emit the
/// per-(ctx, op) phase breakdown document.
fn gate_breakdown_candidate() -> serde_json::Value {
    let o = Observer::new();
    let mut cfg = ExperimentConfig::small(GATE_BREAKDOWN_MODELS, GATE_BREAKDOWN_CYCLES)
        .with_threads(GATE_BREAKDOWN_THREADS)
        .with_observer(o.clone());
    cfg.profile = LatencyProfile::m1();
    let tmp = TempDir::new("mmm-gate-brk").expect("temp dir");
    run_scenario(&cfg, tmp.path()).expect("breakdown scenario");
    mmm_bench::gate::breakdown_json(
        &o.breakdown(),
        GATE_BREAKDOWN_MODELS,
        GATE_BREAKDOWN_CYCLES,
        cfg.profile.name,
        GATE_BREAKDOWN_THREADS,
    )
}

/// Rerun the scale sweep with the baseline's parameters into `out` and
/// return the freshly written document.
fn gate_scale_candidate(baseline: &serde_json::Value, out: &std::path::Path) -> serde_json::Value {
    use serde_json::Value;
    let max_n = baseline
        .get("rows")
        .and_then(Value::as_array)
        .and_then(|rows| rows.iter().filter_map(|r| r.get("n").and_then(Value::as_u64)).max())
        .unwrap_or(10_000) as usize;
    let sub = Args {
        experiment: "scale".to_string(),
        models: Some(max_n),
        cycles: 3,
        trials: 1,
        setup: Some(baseline.get("setup").and_then(Value::as_str).unwrap_or("m1").to_string()),
        threads: baseline.get("threads").and_then(Value::as_u64).unwrap_or(1) as usize,
        backend: baseline
            .get("backend")
            .and_then(Value::as_str)
            .and_then(StorageBackend::by_name)
            .unwrap_or(StorageBackend::Plain),
        cache_mb: None,
        out: Some(out.to_path_buf()),
        trace_out: None,
        metrics_out: None,
        verbose: false,
        baseline_dir: None,
        update_baselines: false,
    };
    scale(&sub);
    read_json_doc(&out.join("BENCH_scale.json"))
}

/// Rerun the query bench with the baseline's parameters into `out` and
/// return the freshly written document.
fn gate_query_candidate(baseline: &serde_json::Value, out: &std::path::Path) -> serde_json::Value {
    use serde_json::Value;
    let max_n = baseline
        .get("rows")
        .and_then(Value::as_array)
        .and_then(|rows| rows.iter().filter_map(|r| r.get("n").and_then(Value::as_u64)).max())
        .unwrap_or(10_000) as usize;
    let sub = Args {
        experiment: "query".to_string(),
        models: Some(max_n),
        cycles: 3,
        trials: baseline.get("trials").and_then(Value::as_u64).unwrap_or(3) as usize,
        setup: None,
        threads: 1,
        backend: StorageBackend::Plain,
        cache_mb: None,
        out: Some(out.to_path_buf()),
        trace_out: None,
        metrics_out: None,
        verbose: false,
        baseline_dir: None,
        update_baselines: false,
    };
    query_bench(&sub);
    read_json_doc(&out.join("BENCH_query.json"))
}

/// CI perf-regression gate: regenerate each bench whose baseline is
/// committed, diff against it with tolerances, exit 1 on regression.
fn gate(args: &Args) {
    use mmm_bench::gate::{GateReport, Tolerances};

    let dir = args.baseline_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    let tol = Tolerances::default();
    let mut combined = GateReport::default();
    let mut gated = 0usize;
    let write_doc = |path: &std::path::Path, doc: &serde_json::Value| {
        std::fs::write(path, serde_json::to_string(doc).expect("serialize baseline"))
            .unwrap_or_else(|e| {
                eprintln!("error: write {}: {e}", path.display());
                std::process::exit(2);
            });
        eprintln!("  wrote {}", path.display());
    };

    println!("=== perf-regression gate: fresh candidates vs committed baselines ===");
    println!(
        "tolerances: throughput >= baseline/{:.0}, shed +{:.2}, p99 overrun +{}ms,",
        tol.throughput_factor,
        tol.shed_abs,
        tol.overrun_slack_ns / 1_000_000
    );
    println!(
        "sim times ±{:.0}%, staging <= x{}; structural invariants exact\n",
        tol.sim_rel * 100.0,
        tol.staging_factor
    );

    let svc_path = dir.join("BENCH_service.json");
    if args.update_baselines || svc_path.exists() {
        let baseline = svc_path.exists().then(|| read_json_doc(&svc_path));
        let candidate = gate_service_candidate(baseline.as_ref());
        if args.update_baselines {
            write_doc(&svc_path, &candidate);
        } else {
            println!("-- service vs {}", svc_path.display());
            let r = mmm_bench::gate::gate_service(&baseline.expect("baseline"), &candidate, &tol);
            print!("{}", r.render());
            combined.merge(r);
            gated += 1;
        }
    } else {
        println!("(skip service: {} not found)", svc_path.display());
    }

    let brk_path = dir.join("BENCH_breakdown.json");
    if args.update_baselines || brk_path.exists() {
        let candidate = gate_breakdown_candidate();
        if args.update_baselines {
            write_doc(&brk_path, &candidate);
        } else {
            println!("\n-- breakdown vs {}", brk_path.display());
            let r = mmm_bench::gate::gate_breakdown(&read_json_doc(&brk_path), &candidate, &tol);
            print!("{}", r.render());
            combined.merge(r);
            gated += 1;
        }
    } else {
        println!("(skip breakdown: {} not found)", brk_path.display());
    }

    let scale_path = dir.join("BENCH_scale.json");
    if args.update_baselines && !scale_path.exists() {
        // Seed a CI-sized scale baseline (n <= 10k runs in seconds);
        // gate_scale_candidate writes BENCH_scale.json into `dir`.
        gate_scale_candidate(&serde_json::Value::Null, &dir);
    } else if scale_path.exists() {
        let baseline = read_json_doc(&scale_path);
        let tmp = TempDir::new("mmm-gate-scale").expect("temp dir");
        let candidate = gate_scale_candidate(&baseline, tmp.path());
        if args.update_baselines {
            write_doc(&scale_path, &candidate);
        } else {
            println!("\n-- scale vs {}", scale_path.display());
            let r = mmm_bench::gate::gate_scale(&baseline, &candidate, &tol);
            print!("{}", r.render());
            combined.merge(r);
            gated += 1;
        }
    } else {
        println!("(skip scale: {} not found)", scale_path.display());
    }

    let query_path = dir.join("BENCH_query.json");
    if args.update_baselines && !query_path.exists() {
        // Seed a CI-sized query baseline (n <= 10k seeds in seconds);
        // gate_query_candidate writes BENCH_query.json into `dir`.
        gate_query_candidate(&serde_json::Value::Null, &dir);
    } else if query_path.exists() {
        let baseline = read_json_doc(&query_path);
        let tmp = TempDir::new("mmm-gate-query").expect("temp dir");
        let candidate = gate_query_candidate(&baseline, tmp.path());
        if args.update_baselines {
            write_doc(&query_path, &candidate);
        } else {
            println!("\n-- query vs {}", query_path.display());
            let r = mmm_bench::gate::gate_query(&baseline, &candidate, &tol);
            print!("{}", r.render());
            combined.merge(r);
            gated += 1;
        }
    } else {
        println!("(skip query: {} not found)", query_path.display());
    }

    if args.update_baselines {
        println!("\nbaselines updated in {}", dir.display());
        return;
    }
    if gated == 0 {
        eprintln!("error: no BENCH_*.json baselines found in {}", dir.display());
        std::process::exit(2);
    }
    println!(
        "\n=== gate verdict: {} over {} bench(es), {} check(s), {} failure(s) ===",
        if combined.passed() { "PASS" } else { "FAIL" },
        gated,
        combined.checks.len(),
        combined.failures().len()
    );
    if !combined.passed() {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.trace_out.is_some() || args.metrics_out.is_some() || args.verbose {
        let o = Observer::new();
        o.set_stderr_events(args.verbose);
        OBSERVER.set(o).expect("observer initialized once");
    }
    let start = Instant::now();
    match args.experiment.as_str() {
        "fig3" => fig3(&args),
        "fig4" => fig_time(&args, "tts"),
        "fig5" => fig_time(&args, "ttr"),
        "rates" => rates(&args),
        "modelsize" => modelsize(&args),
        "cifar" => cifar(&args),
        "provttr" => provttr(&args),
        "compress" => compress(&args),
        "snapshots" => snapshots(&args),
        "scaling" => scaling(&args),
        "selective" => selective(&args),
        "threads" => threads(&args),
        "dedup" => dedup(&args),
        "scale" => scale(&args),
        "query" => query_bench(&args),
        "gate" => gate(&args),
        "all" => {
            fig3(&args);
            println!();
            fig_time(&args, "tts");
            println!();
            fig_time(&args, "ttr");
            println!();
            rates(&args);
            println!();
            modelsize(&args);
            println!();
            cifar(&args);
            println!();
            provttr(&args);
            println!();
            compress(&args);
            println!();
            snapshots(&args);
            println!();
            scaling(&args);
            println!();
            selective(&args);
            println!();
            threads(&args);
            println!();
            dedup(&args);
            println!();
            scale(&args);
            println!();
            query_bench(&args);
        }
        other => usage(&format!("unknown experiment {other:?}")),
    }
    if obs().enabled() {
        println!("\n=== per-phase TTS/TTR breakdown (simulated time) ===");
        print!("{}", report::phase_table(obs()));
    }
    if let Some(path) = &args.trace_out {
        obs().write_trace(path).expect("write trace file");
        eprintln!("  wrote {}", path.display());
    }
    if let Some(path) = &args.metrics_out {
        obs().write_metrics(path).expect("write metrics file");
        eprintln!("  wrote {}", path.display());
    }
    eprintln!("\ntotal wall time: {:.1}s", start.elapsed().as_secs_f64());
}
