//! Training-data sources for update cycles.

use mmm_battery::data::CellDataConfig;
use mmm_battery::cycles::CycleConfig;
use mmm_data::{battery_dataset, generate_cifar, generate_recommender, Dataset};
use mmm_util::SplitMix64;

/// Where the per-model training data of an update cycle comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSource {
    /// The battery running example: ECM-simulated discharge cycles with
    /// per-cell perturbation and per-update-cycle aging.
    Battery(CellDataConfig),
    /// The image-classification variation: synthetic CIFAR-like images.
    Cifar {
        /// Samples per generated dataset.
        n_samples: usize,
    },
    /// The recommendation-system scenario of the paper's introduction:
    /// one model per user, preferences drifting per update cycle.
    Recommender {
        /// Interactions per generated dataset.
        n_samples: usize,
    },
}

impl DataSource {
    /// A small, fast battery source for tests and examples.
    pub fn battery_small() -> Self {
        DataSource::Battery(CellDataConfig {
            cycle: CycleConfig { duration_s: 240, load_scale: 1.0 },
            n_cycles: 1,
            sample_every: 4,
            ..CellDataConfig::default()
        })
    }

    /// The paper-scale battery source (longer cycles, more data).
    pub fn battery_default() -> Self {
        DataSource::Battery(CellDataConfig::default())
    }

    /// Generate the dataset for `(model, update_cycle)` under `seed`.
    /// Pure: the same arguments always yield the same dataset, which is
    /// what lets Provenance reference data instead of copying it.
    pub fn dataset(&self, model_idx: usize, update_cycle: u64, seed: u64) -> Dataset {
        match self {
            DataSource::Battery(cfg) => battery_dataset(cfg, model_idx as u64, update_cycle, seed),
            DataSource::Cifar { n_samples } => {
                let s = SplitMix64::derive(seed, "cifar-update", (model_idx as u64) << 16 | update_cycle);
                generate_cifar(*n_samples, s)
            }
            DataSource::Recommender { n_samples } => {
                generate_recommender(model_idx as u64, update_cycle, *n_samples, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_datasets_are_pure() {
        let src = DataSource::battery_small();
        assert_eq!(src.dataset(3, 1, 7), src.dataset(3, 1, 7));
        assert_ne!(
            src.dataset(3, 1, 7).content_hash(),
            src.dataset(4, 1, 7).content_hash()
        );
        assert_ne!(
            src.dataset(3, 1, 7).content_hash(),
            src.dataset(3, 2, 7).content_hash()
        );
    }

    #[test]
    fn cifar_datasets_are_pure_and_shaped() {
        let src = DataSource::Cifar { n_samples: 20 };
        let d = src.dataset(0, 1, 9);
        assert_eq!(d.inputs.shape(), &[20, 3, 32, 32]);
        assert_eq!(d, src.dataset(0, 1, 9));
        assert_ne!(d.content_hash(), src.dataset(1, 1, 9).content_hash());
    }
}
