//! High-level driver: run the full U1 + U3-1..k scenario against one
//! saver — the five-line version of what every evaluation, example and
//! test otherwise hand-rolls.

use crate::fleet::{Fleet, UpdatePolicy};
use mmm_core::approach::ModelSetSaver;
use mmm_core::env::ManagementEnv;
use mmm_core::model_set::{ModelSet, ModelSetId};
use mmm_util::Result;

/// Archive the fleet's initial state (U1) and `cycles` update cycles
/// (U3-1..k) with `saver`. Returns one id per archived set, oldest
/// first. The fleet is left at its final state.
pub fn archive_history(
    env: &ManagementEnv,
    fleet: &mut Fleet,
    policy: &UpdatePolicy,
    saver: &mut dyn ModelSetSaver,
    cycles: usize,
) -> Result<Vec<ModelSetId>> {
    Ok(archive_history_with_snapshots(env, fleet, policy, saver, cycles)?.0)
}

/// Like [`archive_history`], additionally returning the materialized
/// snapshot of every archived set (for verification; costs memory
/// proportional to `cycles × set size`).
pub fn archive_history_with_snapshots(
    env: &ManagementEnv,
    fleet: &mut Fleet,
    policy: &UpdatePolicy,
    saver: &mut dyn ModelSetSaver,
    cycles: usize,
) -> Result<(Vec<ModelSetId>, Vec<ModelSet>)> {
    let initial = fleet.to_model_set();
    let mut ids = vec![saver.save_initial(env, &initial)?];
    let mut snapshots = vec![initial];
    for _ in 0..cycles {
        let record = fleet.run_update_cycle(env.registry(), policy)?;
        let set = fleet.to_model_set();
        let deriv = record.derivation(ids.last().expect("U1 saved").clone());
        ids.push(saver.save_set(env, &set, Some(&deriv))?);
        snapshots.push(set);
    }
    Ok((ids, snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::source::DataSource;
    use mmm_core::approach::UpdateSaver;
    use mmm_dnn::Architectures;
    use mmm_store::LatencyProfile;
    use mmm_util::TempDir;

    #[test]
    fn history_archives_and_verifies() {
        let dir = TempDir::new("wl-history").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let mut fleet = Fleet::initial(FleetConfig {
            n_models: 10,
            seed: 2,
            arch: Architectures::ffnn(6),
        });
        let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.4);
        let mut saver = UpdateSaver::new();
        let (ids, snaps) =
            archive_history_with_snapshots(&env, &mut fleet, &policy, &mut saver, 3).unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(snaps.len(), 4);
        assert_eq!(fleet.update_cycle(), 3);
        for (id, snap) in ids.iter().zip(&snaps) {
            assert_eq!(&saver.recover_set(&env, id).unwrap(), snap);
        }
    }

    #[test]
    fn zero_cycles_archives_only_u1() {
        let dir = TempDir::new("wl-history").unwrap();
        let env = ManagementEnv::open(dir.path(), LatencyProfile::zero()).unwrap();
        let mut fleet = Fleet::initial(FleetConfig {
            n_models: 4,
            seed: 1,
            arch: Architectures::ffnn(6),
        });
        let policy = UpdatePolicy::paper_default(DataSource::battery_small());
        let mut saver = UpdateSaver::new();
        let ids = archive_history(&env, &mut fleet, &policy, &mut saver, 0).unwrap();
        assert_eq!(ids.len(), 1);
    }
}
