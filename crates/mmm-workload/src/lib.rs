#![warn(missing_docs)]

//! The paper's evaluation scenario driver.
//!
//! Implements the workload of Figure 2: one initial use case **U1** where
//! a fleet of `n` models sharing one architecture is created, followed by
//! update cycles **U3-1 … U3-k** in which a fraction of models diverge
//! and are retrained — by default 5 % fully and 5 % partially, the
//! paper's 10 % update rate.
//!
//! * [`fleet`] — the in-memory fleet: per-model parameters plus the
//!   deterministic update-cycle procedure (parallelized across models
//!   with crossbeam; safe because every model's training is seed-isolated).
//! * [`source`] — where the training data comes from: the battery ECM
//!   pipeline (the running example) or the synthetic CIFAR generator.
//!
//! Each update cycle yields an [`fleet::UpdateRecord`]: the
//! approach-agnostic description (train config + per-model dataset
//! references, kinds, and seeds) that the savers turn into their
//! [`mmm_core::Derivation`]s.

pub mod chaos;
pub mod fleet;
pub mod history;
pub mod source;

pub use chaos::{run_chaos, service_bench, ChaosConfig, ChaosReport, ServiceBenchReport};
pub use fleet::{Fleet, FleetConfig, SelectionStrategy, UpdatePolicy, UpdateRecord};
pub use history::{archive_history, archive_history_with_snapshots};
pub use source::DataSource;
