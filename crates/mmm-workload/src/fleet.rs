//! The model fleet and its update cycles.

use crate::source::DataSource;
use mmm_core::apply_update::apply_update;
use mmm_core::model_set::{Derivation, ModelSet, ModelSetId, ModelUpdate, UpdateKind};
use mmm_data::DatasetRegistry;
use mmm_dnn::{ArchitectureSpec, ParamDict, TrainConfig};
use mmm_util::{Result, Rng, SplitMix64, Xoshiro256pp};

/// Configuration of the initial fleet (use case U1).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of models (`n >> 1000` in the paper; shrink for tests).
    pub n_models: usize,
    /// Root seed: drives initialization, selection and training.
    pub seed: u64,
    /// The shared architecture.
    pub arch: ArchitectureSpec,
}

/// How an update cycle (use case U3) selects and trains models.
#[derive(Debug, Clone)]
pub struct UpdatePolicy {
    /// Fraction of models that receive a full update (paper: 0.05).
    pub full_fraction: f64,
    /// Fraction of models that receive a partial update (paper: 0.05).
    pub partial_fraction: f64,
    /// Which parametric layers a partial update retrains.
    pub partial_layers: Vec<usize>,
    /// The shared training configuration (per-model seeds are derived).
    pub train: TrainConfig,
    /// Where training data comes from.
    pub source: DataSource,
    /// How updated models are selected.
    pub selection: SelectionStrategy,
}

/// How an update cycle decides *which* models to retrain.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionStrategy {
    /// Uniformly random selection (the evaluation's modeling choice —
    /// selection does not influence storage/TTS/TTR shapes).
    Random,
    /// The paper's motivating mechanism made concrete: "only a subset of
    /// models has diverged significantly from their expected behavior and
    /// needs updating". Every model is evaluated on a fresh probe
    /// dataset of its entity's *current* behavior; the worst-performing
    /// models receive full updates, the next tier partial updates.
    DivergenceDriven {
        /// Probe samples per model (evaluation only, never trained on).
        probe_samples: usize,
    },
}

impl UpdatePolicy {
    /// The paper's default: 5 % full + 5 % partial updates on battery
    /// data, partial updates retraining the two middle hidden layers.
    pub fn paper_default(source: DataSource) -> Self {
        UpdatePolicy {
            full_fraction: 0.05,
            partial_fraction: 0.05,
            partial_layers: vec![1, 2],
            train: TrainConfig { epochs: 1, ..TrainConfig::regression_default(0) },
            source,
            selection: SelectionStrategy::Random,
        }
    }

    /// Switch to divergence-driven selection.
    pub fn with_divergence_selection(mut self, probe_samples: usize) -> Self {
        self.selection = SelectionStrategy::DivergenceDriven { probe_samples };
        self
    }

    /// Scale both fractions so the combined update rate is `rate`
    /// (split evenly between full and partial, like the paper's 10 %,
    /// 20 %, 30 % experiments).
    pub fn with_update_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.full_fraction = rate / 2.0;
        self.partial_fraction = rate / 2.0;
        self
    }
}

/// The approach-agnostic record of one update cycle: everything a saver
/// needs to build its [`Derivation`].
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRecord {
    /// Which update cycle this was (1-based; U3-1 is cycle 1).
    pub update_cycle: u64,
    /// Shared training configuration.
    pub train: TrainConfig,
    /// Per-model updates (sorted by model index).
    pub updates: Vec<ModelUpdate>,
}

impl UpdateRecord {
    /// Bind the record to an approach-specific base set id.
    pub fn derivation(&self, base: ModelSetId) -> Derivation {
        Derivation { base, train: self.train, updates: self.updates.clone() }
    }
}

/// The in-memory fleet: current parameters of every model.
#[derive(Debug, Clone)]
pub struct Fleet {
    cfg: FleetConfig,
    models: Vec<ParamDict>,
    update_cycle: u64,
}

impl Fleet {
    /// Create the initial fleet (U1): `n` models with independent,
    /// seed-derived initializations.
    pub fn initial(cfg: FleetConfig) -> Self {
        assert!(cfg.n_models > 0, "fleet must contain at least one model");
        let models = (0..cfg.n_models)
            .map(|i| {
                let seed = SplitMix64::derive(cfg.seed, "model-init", i as u64);
                cfg.arch.build(seed).export_param_dict()
            })
            .collect();
        Fleet { cfg, models, update_cycle: 0 }
    }

    /// The shared architecture.
    pub fn arch(&self) -> &ArchitectureSpec {
        &self.cfg.arch
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the fleet is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// How many update cycles have run.
    pub fn update_cycle(&self) -> u64 {
        self.update_cycle
    }

    /// Snapshot the fleet as a model set.
    pub fn to_model_set(&self) -> ModelSet {
        ModelSet::new(self.cfg.arch.clone(), self.models.clone())
    }

    /// Restore a fleet's live state (e.g. after reloading persisted CLI
    /// state): replace the parameters and the update-cycle counter.
    ///
    /// # Panics
    /// Panics if the models do not match the fleet's architecture or
    /// count — validated through [`ModelSet::new`].
    pub fn restore(&mut self, models: Vec<ParamDict>, update_cycle: u64) {
        assert_eq!(models.len(), self.cfg.n_models, "restore model count mismatch");
        // Validate layer layout against the architecture.
        let _ = ModelSet::new(self.cfg.arch.clone(), models.clone());
        self.models = models;
        self.update_cycle = update_cycle;
    }

    /// Select which models get full/partial updates this cycle.
    /// Deterministic in `(fleet seed, cycle)`; full and partial sets are
    /// disjoint.
    fn select_updates(&self, policy: &UpdatePolicy, cycle: u64) -> (Vec<usize>, Vec<usize>) {
        let n = self.models.len();
        let n_full = ((n as f64) * policy.full_fraction).round() as usize;
        let n_partial = ((n as f64) * policy.partial_fraction).round() as usize;
        match &policy.selection {
            SelectionStrategy::Random => {
                let mut rng =
                    Xoshiro256pp::new(SplitMix64::derive(self.cfg.seed, "select-updates", cycle));
                let chosen = rng.sample_indices(n, (n_full + n_partial).min(n));
                let full = chosen[..n_full.min(chosen.len())].to_vec();
                let partial = chosen[n_full.min(chosen.len())..].to_vec();
                (full, partial)
            }
            SelectionStrategy::DivergenceDriven { probe_samples } => {
                let mut ranked = self.rank_by_divergence(policy, cycle, *probe_samples);
                ranked.truncate((n_full + n_partial).min(n));
                let full = ranked[..n_full.min(ranked.len())].to_vec();
                let partial = ranked[n_full.min(ranked.len())..].to_vec();
                (full, partial)
            }
        }
    }

    /// Model indices sorted by descending probe loss (most diverged
    /// first). Probe data is seed-separated from training data.
    fn rank_by_divergence(&self, policy: &UpdatePolicy, cycle: u64, probe_samples: usize) -> Vec<usize> {
        use mmm_data::Targets;
        use mmm_dnn::loss::{cross_entropy, mse};

        let probe_seed = SplitMix64::derive(self.cfg.seed, "probe", cycle);
        let mut model = self.cfg.arch.build(0);
        let mut losses: Vec<(usize, f32)> = Vec::with_capacity(self.models.len());
        for (idx, params) in self.models.iter().enumerate() {
            let probe = policy.source.dataset(idx, cycle, probe_seed).truncated(probe_samples);
            model.import_param_dict(params);
            let pred = model.forward(&probe.inputs, false);
            let loss = match &probe.targets {
                Targets::Regression(t) => mse(&pred, t).0,
                Targets::Labels(l) => cross_entropy(&pred, l).0,
            };
            losses.push((idx, loss));
        }
        // Descending loss; ties broken by index for determinism.
        losses.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        losses.into_iter().map(|(i, _)| i).collect()
    }

    /// Run one update cycle (one U3 iteration): select the diverged
    /// models, generate their new training data (registered in
    /// `registry` — the data is persisted outside model management),
    /// retrain them in parallel, and return the update record.
    pub fn run_update_cycle(&mut self, registry: &DatasetRegistry, policy: &UpdatePolicy) -> Result<UpdateRecord> {
        self.update_cycle += 1;
        let cycle = self.update_cycle;
        let (full, partial) = self.select_updates(policy, cycle);

        let mut tasks: Vec<(usize, UpdateKind)> = full
            .into_iter()
            .map(|i| (i, UpdateKind::Full))
            .chain(
                partial
                    .into_iter()
                    .map(|i| (i, UpdateKind::Partial { layers: policy.partial_layers.clone() })),
            )
            .collect();
        tasks.sort_by_key(|(i, _)| *i);

        // Train in parallel: every task is independent and seed-isolated,
        // so chunking across threads cannot change any result.
        let arch = &self.cfg.arch;
        let models = &self.models;
        let seed = self.cfg.seed;
        let train = policy.train;
        let source = &policy.source;

        let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let chunk = tasks.len().div_ceil(n_threads).max(1);
        let results: Vec<Result<Vec<(usize, ParamDict, ModelUpdate)>>> =
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = tasks
                    .chunks(chunk)
                    .map(|chunk_tasks| {
                        s.spawn(move |_| -> Result<Vec<(usize, ParamDict, ModelUpdate)>> {
                            let mut out = Vec::with_capacity(chunk_tasks.len());
                            for (idx, kind) in chunk_tasks {
                                let dataset = source.dataset(*idx, cycle, seed);
                                let dref = registry.put(&dataset)?;
                                let update = ModelUpdate {
                                    model_idx: *idx,
                                    kind: kind.clone(),
                                    dataset: dref,
                                    seed: SplitMix64::derive(seed, "train-update", cycle << 32 | *idx as u64),
                                };
                                let params = apply_update(arch, &models[*idx], &update, &train, &dataset);
                                out.push((*idx, params, update));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            })
            .expect("crossbeam scope failed");

        let mut updates = Vec::with_capacity(tasks.len());
        for r in results {
            for (idx, params, update) in r? {
                self.models[idx] = params;
                updates.push(update);
            }
        }
        updates.sort_by_key(|u| u.model_idx);
        Ok(UpdateRecord { update_cycle: cycle, train, updates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_dnn::Architectures;
    use mmm_util::TempDir;

    fn fleet(n: usize) -> Fleet {
        Fleet::initial(FleetConfig {
            n_models: n,
            seed: 1,
            arch: Architectures::ffnn(6),
        })
    }

    fn registry() -> (TempDir, DatasetRegistry) {
        let dir = TempDir::new("mmm-fleet").unwrap();
        let reg = DatasetRegistry::open(dir.path()).unwrap();
        (dir, reg)
    }

    #[test]
    fn initial_fleet_has_distinct_models() {
        let f = fleet(5);
        assert_eq!(f.len(), 5);
        assert_eq!(f.update_cycle(), 0);
        for i in 1..5 {
            assert_ne!(f.to_model_set().models[0], f.to_model_set().models[i]);
        }
    }

    #[test]
    fn initial_fleet_is_deterministic() {
        assert_eq!(fleet(4).to_model_set(), fleet(4).to_model_set());
    }

    #[test]
    fn update_cycle_touches_exactly_the_selected_fraction() {
        let (_d, reg) = registry();
        let mut f = fleet(20);
        let before = f.to_model_set();
        let policy = UpdatePolicy {
            full_fraction: 0.10,  // 2 models
            partial_fraction: 0.10, // 2 models
            ..UpdatePolicy::paper_default(DataSource::battery_small())
        };
        let record = f.run_update_cycle(&reg, &policy).unwrap();
        assert_eq!(record.updates.len(), 4);
        assert_eq!(record.update_cycle, 1);
        let after = f.to_model_set();
        let updated: Vec<usize> = record.updates.iter().map(|u| u.model_idx).collect();
        for i in 0..20 {
            if updated.contains(&i) {
                assert_ne!(before.models[i], after.models[i], "model {i} should change");
            } else {
                assert_eq!(before.models[i], after.models[i], "model {i} must not change");
            }
        }
    }

    #[test]
    fn partial_updates_only_touch_policy_layers() {
        let (_d, reg) = registry();
        let mut f = fleet(10);
        let before = f.to_model_set();
        let policy = UpdatePolicy {
            full_fraction: 0.0,
            partial_fraction: 0.2,
            partial_layers: vec![1],
            ..UpdatePolicy::paper_default(DataSource::battery_small())
        };
        let record = f.run_update_cycle(&reg, &policy).unwrap();
        let after = f.to_model_set();
        for u in &record.updates {
            assert!(matches!(u.kind, UpdateKind::Partial { .. }));
            let (b, a) = (&before.models[u.model_idx], &after.models[u.model_idx]);
            assert_eq!(b.layers[0], a.layers[0]);
            assert_ne!(b.layers[1], a.layers[1]);
            assert_eq!(b.layers[2], a.layers[2]);
            assert_eq!(b.layers[3], a.layers[3]);
        }
    }

    #[test]
    fn update_cycles_are_deterministic_despite_parallelism() {
        let run = || {
            let (_d, reg) = registry();
            let mut f = fleet(16);
            let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.5);
            let r1 = f.run_update_cycle(&reg, &policy).unwrap();
            let r2 = f.run_update_cycle(&reg, &policy).unwrap();
            (f.to_model_set(), r1, r2)
        };
        let (s_a, r1_a, r2_a) = run();
        let (s_b, r1_b, r2_b) = run();
        assert_eq!(s_a, s_b);
        assert_eq!(r1_a, r1_b);
        assert_eq!(r2_a, r2_b);
    }

    #[test]
    fn datasets_land_in_the_registry() {
        let (_d, reg) = registry();
        let mut f = fleet(10);
        let policy = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.4);
        let record = f.run_update_cycle(&reg, &policy).unwrap();
        for u in &record.updates {
            assert!(reg.contains(&u.dataset), "dataset of model {} missing", u.model_idx);
        }
    }

    #[test]
    fn with_update_rate_splits_evenly() {
        let p = UpdatePolicy::paper_default(DataSource::battery_small()).with_update_rate(0.3);
        assert!((p.full_fraction - 0.15).abs() < 1e-12);
        assert!((p.partial_fraction - 0.15).abs() < 1e-12);
    }

    #[test]
    fn selection_differs_across_cycles() {
        let f = fleet(50);
        let policy = UpdatePolicy::paper_default(DataSource::battery_small());
        let (f1, p1) = f.select_updates(&policy, 1);
        let (f2, p2) = f.select_updates(&policy, 2);
        assert!(f1 != f2 || p1 != p2, "different cycles select different models");
    }

    #[test]
    fn divergence_selection_targets_the_worst_models() {
        let (_d, reg) = registry();
        let mut f = fleet(20);
        // Train every model decently on its own cycle-1 data first, so
        // the fleet starts from comparable quality...
        let warmup = UpdatePolicy {
            full_fraction: 1.0,
            partial_fraction: 0.0,
            train: TrainConfig { epochs: 3, ..TrainConfig::regression_default(0) },
            ..UpdatePolicy::paper_default(DataSource::battery_small())
        };
        f.run_update_cycle(&reg, &warmup).unwrap();
        // ...then sabotage two models.
        let sabotage = [4usize, 13];
        for &i in &sabotage {
            for l in &mut f.models[i].layers {
                for v in &mut l.data {
                    *v = 3.0;
                }
            }
        }
        let policy = UpdatePolicy {
            full_fraction: 0.10, // exactly 2 full updates
            partial_fraction: 0.0,
            ..UpdatePolicy::paper_default(DataSource::battery_small())
        }
        .with_divergence_selection(32);
        let (full, partial) = f.select_updates(&policy, 2);
        assert!(partial.is_empty());
        let mut got = full.clone();
        got.sort_unstable();
        assert_eq!(got, sabotage.to_vec(), "the sabotaged models must rank worst");
    }

    #[test]
    fn divergence_selection_is_deterministic() {
        let policy = UpdatePolicy::paper_default(DataSource::battery_small())
            .with_divergence_selection(16);
        let a = fleet(12).select_updates(&policy, 1);
        let b = fleet(12).select_updates(&policy, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn divergence_driven_cycle_runs_end_to_end() {
        let (_d, reg) = registry();
        let mut f = fleet(12);
        let policy = UpdatePolicy::paper_default(DataSource::battery_small())
            .with_update_rate(0.5)
            .with_divergence_selection(16);
        let record = f.run_update_cycle(&reg, &policy).unwrap();
        assert_eq!(record.updates.len(), 6);
    }

    #[test]
    fn record_binds_to_any_base_id() {
        let record = UpdateRecord {
            update_cycle: 1,
            train: TrainConfig::regression_default(0),
            updates: vec![],
        };
        let base = ModelSetId { approach: "update".into(), key: "3".into() };
        let d = record.derivation(base.clone());
        assert_eq!(d.base, base);
    }
}
