//! Seeded chaos harness for the fleet frontend.
//!
//! Drives hundreds of concurrent tenant requests through a
//! [`FleetFrontend`] while a seeded fault storm (crashes, torn writes,
//! doc-log bit flips, transient bursts) hits the stores, then kills the
//! environment, reopens it cold, and checks the crash-consistency
//! invariants:
//!
//! 1. **No committed save unreadable** — every save that returned `Ok`
//!    recovers bit-identically after the crash (bit-flip rounds may
//!    instead *lose* a save whose record the checksummed log discarded,
//!    or repair one away — but never serve wrong bits silently).
//! 2. **No uncommitted save visible** — the catalog never lists a save
//!    that did not commit.
//! 3. **Batches are atomic** — a group-commit record commits all its
//!    members or none; after repair no commit record dangles.
//! 4. **fsck converges** — damage is classified, `repair` runs, and a
//!    second scan comes back clean.
//! 5. **Queries agree with the catalog** — a slice of tenant requests
//!    runs query expressions through the frontend mid-storm, and after
//!    every crash `query "true"` must return exactly the sets the
//!    catalog lists (and therefore only committed ones, by invariant 2).
//!
//! Bit flips are armed against the document log only: its checksummed
//! records guarantee detection on replay. Blob-payload flips are the
//! content-addressed backend's domain and are covered by the CAS and
//! fault-injection test suites.
//!
//! Everything is driven by one seed, so a failing run is replayable
//! with `mmm chaos --seed N`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mmm_core::approach::{self, BaselineSaver, UpdateSaver};
use mmm_core::branch;
use mmm_core::fleet::{AdmissionConfig, FleetFrontend, FrontendConfig, Served};
use mmm_core::model_set::{Derivation, ModelSet, ModelSetId};
use mmm_core::{catalog, commit, fsck, query, ManagementEnv};
use mmm_dnn::{Architectures, TrainConfig};
use mmm_store::{FaultInjector, FaultPlan, FaultTarget, LatencyProfile, OpClass};
use mmm_util::{Result, Rng, SplitMix64, Xoshiro256pp};

/// Knobs of one chaos run (see [`run_chaos`]).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; every fault plan and model parameter derives from it.
    pub seed: u64,
    /// Concurrent worker threads per round.
    pub threads: usize,
    /// Distinct tenant identities the workers share (fewer tenants than
    /// threads ⇒ real admission contention and shedding).
    pub tenants: usize,
    /// Fault rounds (each ends in a simulated crash + cold reopen).
    pub rounds: usize,
    /// Save/recover iterations per worker per round.
    pub iters: usize,
    /// Models per saved set (small: chaos exercises the control plane,
    /// not the codec).
    pub n_models: usize,
    /// Per-request deadline budget.
    pub deadline: Duration,
    /// Group-commit collection window for the environment.
    pub commit_window: Duration,
    /// Per-tenant admission quotas.
    pub admission: AdmissionConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            threads: 8,
            tenants: 4,
            rounds: 13,
            iters: 2,
            n_models: 2,
            deadline: Duration::from_secs(30),
            commit_window: Duration::ZERO,
            admission: AdmissionConfig { per_tenant_inflight: 2, per_tenant_queue: 2 },
        }
    }
}

impl ChaosConfig {
    /// Total tenant-iterations this configuration drives
    /// (`threads × iters × rounds`).
    pub fn tenant_iterations(&self) -> usize {
        self.threads * self.iters * self.rounds
    }
}

/// The storm a round runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Storm {
    /// No faults: pure concurrency.
    Clean,
    /// One-shot crash error at a random write.
    Crash,
    /// Torn write at a random write (partial payload, then death).
    Torn,
    /// Silent bit flip in a document-log append (detected on replay).
    DocFlip,
    /// A burst of transient failures (exercises retry and breakers).
    Transient,
}

impl Storm {
    fn pick(rng: &mut impl Rng) -> Storm {
        match rng.below(5) {
            0 => Storm::Clean,
            1 => Storm::Crash,
            2 => Storm::Torn,
            3 => Storm::DocFlip,
            _ => Storm::Transient,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Storm::Clean => "clean",
            Storm::Crash => "crash",
            Storm::Torn => "torn",
            Storm::DocFlip => "doc-flip",
            Storm::Transient => "transient",
        }
    }
}

/// What one chaos run did and every invariant violation it found.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Total requests issued through the frontend.
    pub requests: u64,
    /// Saves that returned `Ok`.
    pub saves_ok: u64,
    /// Requests that failed (any error: shed, deadline, fault).
    pub request_errors: u64,
    /// Recovers served fresh with the expected bits.
    pub recovers_fresh: u64,
    /// Recovers served from the stale cache.
    pub recovers_stale: u64,
    /// Queries answered through the frontend mid-storm.
    pub queries_ok: u64,
    /// Saves whose commit record a bit-flip round destroyed or repair
    /// removed (allowed only in doc-flip rounds).
    pub saves_lost_to_flips: u64,
    /// Branches forked by the version-graph tenant mix.
    pub branch_forks: u64,
    /// Clean three-way merges performed by the tenant mix.
    pub branch_merges: u64,
    /// Merges that (deliberately) conflicted and wrote nothing.
    pub branch_conflicts: u64,
    /// fsck damage entries classified as expected crash debris.
    pub debris_entries: u64,
    /// Commit records written (group-commit batches).
    pub commit_batches: u64,
    /// Saves committed through those records.
    pub commit_members: u64,
    /// Every invariant violation, human-readable. Empty ⇒ the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held in every round.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn small_set(arch_layers: usize, n_models: usize, seed: u64) -> ModelSet {
    let arch = Architectures::ffnn(arch_layers);
    let models = (0..n_models)
        .map(|i| arch.build(seed.wrapping_add(i as u64)).export_param_dict())
        .collect();
    ModelSet::new(arch, models)
}

/// One version-graph tenant iteration: save a fresh update chain, fork
/// two branches off it, advance each with a derived save, and three-way
/// merge them. A quarter of these deliberately collide on the same
/// layer, so the merge must surface a conflict and write nothing.
///
/// Under a storm any step may fail — partial progress is fine (whatever
/// was acknowledged is recorded and must survive the crash); nothing
/// unacknowledged enters the expected map.
#[allow(clippy::too_many_arguments)]
fn branch_iteration(
    env: &ManagementEnv,
    frontend: &FleetFrontend,
    tenant: &str,
    round: usize,
    worker: usize,
    config: &ChaosConfig,
    wrng: &mut impl mmm_util::Rng,
    outcomes: &Mutex<Vec<(ModelSetId, ModelSet)>>,
    counters: &Mutex<[u64; 9]>,
    violations: &Mutex<Vec<String>>,
) {
    let bump = |i: usize, v: u64| {
        counters.lock().unwrap_or_else(|e| e.into_inner())[i] += v;
    };
    let record = |id: &ModelSetId, set: &ModelSet| {
        bump(1, 1);
        outcomes.lock().unwrap_or_else(|e| e.into_inner()).push((id.clone(), set.clone()));
    };
    let conflicting = wrng.below(4) == 0;
    let tag = wrng.next_u64();
    let deadline = Some(config.deadline);
    let mut saver = UpdateSaver::new();
    let base_set = small_set(4, config.n_models, wrng.next_u64());
    let train = || TrainConfig::regression_default(0);
    // Each frontend call is one tenant request in the SLO accounting,
    // so the request counter must track calls actually issued — an
    // early failure means the later saves never happened.
    let res = (|| -> Result<()> {
        bump(0, 1);
        let base = frontend.save_initial(tenant, &mut saver, &base_set, deadline)?;
        record(&base, &base_set);
        let ours_name = format!("c{round}-{worker}-{tag:x}-a");
        let theirs_name = format!("c{round}-{worker}-{tag:x}-b");

        let ours_branch = branch::fork(env, &base, 0, &ours_name)?;
        bump(5, 1);
        record(&ours_branch.head, &base_set);
        let mut ours_set = base_set.clone();
        ours_set.models[0].layers[0].data[0] += 1.0;
        let d = Derivation { base: ours_branch.head.clone(), train: train(), updates: vec![] };
        bump(0, 1);
        let ours = frontend.save_set(tenant, &mut saver, &ours_set, Some(&d), deadline)?;
        record(&ours, &ours_set);
        branch::advance(env, &ours_name, &ours)?;

        let theirs_branch = branch::fork(env, &base, 0, &theirs_name)?;
        bump(5, 1);
        record(&theirs_branch.head, &base_set);
        let mut theirs_set = base_set.clone();
        let m = config.n_models - 1;
        if conflicting {
            theirs_set.models[0].layers[0].data[0] -= 1.0;
        } else {
            theirs_set.models[m].layers[2].data[0] -= 1.0;
        }
        let d = Derivation { base: theirs_branch.head.clone(), train: train(), updates: vec![] };
        bump(0, 1);
        let theirs = frontend.save_set(tenant, &mut saver, &theirs_set, Some(&d), deadline)?;
        record(&theirs, &theirs_set);
        branch::advance(env, &theirs_name, &theirs)?;

        let out = branch::merge(env, &base, &ours, &theirs)?;
        match (out.merged, conflicting) {
            (Some(merged), false) => {
                bump(6, 1);
                let mut merged_set = ours_set.clone();
                merged_set.models[m].layers[2].data[0] = theirs_set.models[m].layers[2].data[0];
                record(&merged, &merged_set);
            }
            (None, true) => bump(7, 1),
            (Some(_), true) => violations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("round {round}: conflicting merge of {ours} and {theirs} produced a set")),
            (None, false) => violations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("round {round}: disjoint merge of {ours} and {theirs} reported conflicts")),
        }
        Ok(())
    })();
    if res.is_err() {
        bump(2, 1);
    }
}

/// Arm this round's storm on a fresh injector. Returns the storm for
/// invariant classification.
fn arm_storm(faults: &FaultInjector, rng: &mut impl Rng) -> Storm {
    let storm = Storm::pick(rng);
    match storm {
        Storm::Clean => {}
        Storm::Crash => {
            // A couple of independent crash points among the round's
            // writes; each is one-shot.
            for _ in 0..1 + rng.below(3) {
                faults.arm(FaultPlan::crash_at(FaultTarget::Writes, rng.below(40)));
            }
        }
        Storm::Torn => {
            // A torn append means the process died mid-write: nothing
            // after it may land, or the partial bytes would sit in the
            // *middle* of the log — a state no real crash can produce.
            // The follow-up plan kills every later write in the round.
            let idx = rng.below(40);
            faults.arm(FaultPlan::torn_write_at(FaultTarget::Writes, idx, rng.below(256) as usize));
            faults.arm(FaultPlan::transient_at(FaultTarget::Writes, idx + 1, u32::MAX));
        }
        Storm::DocFlip => {
            for _ in 0..1 + rng.below(2) {
                faults.arm(FaultPlan::bit_flip_at(
                    FaultTarget::Class(OpClass::DocInsert),
                    rng.below(30),
                    1 + rng.below(4) as usize,
                    rng.next_u64(),
                ));
            }
        }
        Storm::Transient => {
            faults.arm(FaultPlan::transient_at(
                FaultTarget::Any,
                rng.below(20),
                2 + rng.below(12) as u32,
            ));
        }
    }
    storm
}

/// Run the full chaos schedule against `dir` (one store directory,
/// reused across rounds so damage and repairs accumulate realistically).
pub fn run_chaos(dir: &Path, config: &ChaosConfig) -> Result<ChaosReport> {
    run_chaos_observed(dir, config, &mmm_obs::Observer::disabled())
}

/// [`run_chaos`] with an attached observer: every request gets a
/// tenant/request-id attribution, a tagged root span, and per-tenant
/// SLO counters — the observability plane's end-to-end exercise.
pub fn run_chaos_observed(
    dir: &Path,
    config: &ChaosConfig,
    obs: &mmm_obs::Observer,
) -> Result<ChaosReport> {
    let mut rng = Xoshiro256pp::new(config.seed);
    let mut report = ChaosReport::default();
    // Every save the harness believes committed: id → expected bits.
    let mut expected: HashMap<ModelSetId, ModelSet> = HashMap::new();

    for round in 0..config.rounds {
        let faults = FaultInjector::new();
        let storm = arm_storm(&faults, &mut rng);
        let env = ManagementEnv::builder(dir, LatencyProfile::zero())
            .observer(obs.clone())
            .faults(faults.clone())
            .commit_window(config.commit_window)
            .open()?;
        obs.set_context(format!("chaos/round-{round}"));
        let frontend = FleetFrontend::with_config(
            &env,
            FrontendConfig {
                admission: config.admission,
                default_deadline: config.deadline,
                ..FrontendConfig::default()
            },
        );

        // One worker per thread; outcomes collected under a mutex
        // (contention is negligible next to the store work).
        let outcomes: Mutex<Vec<(ModelSetId, ModelSet)>> = Mutex::new(Vec::new());
        let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
        // req, ok, err, fresh, stale, forks, merges, conflicts, queries
        let counters: Mutex<[u64; 9]> = Mutex::new([0; 9]);
        std::thread::scope(|scope| {
            for worker in 0..config.threads {
                let frontend = &frontend;
                let env = &env;
                let outcomes = &outcomes;
                let violations = &violations;
                let counters = &counters;
                let config = &config;
                let mut wrng = Xoshiro256pp::new(
                    SplitMix64::new(config.seed ^ (round as u64) << 32 ^ worker as u64).next_u64(),
                );
                scope.spawn(move || {
                    let tenant = format!("tenant-{}", worker % config.tenants.max(1));
                    let mut saver = BaselineSaver::new();
                    for _ in 0..config.iters {
                        // ~10% of iterations drive the version graph
                        // instead of the linear save path: fork, update
                        // the branch, and three-way merge a sibling.
                        if wrng.below(10) == 0 {
                            branch_iteration(
                                env, frontend, &tenant, round, worker, config, &mut wrng,
                                outcomes, counters, violations,
                            );
                            continue;
                        }
                        // Another slice reads the lake through the query
                        // engine mid-storm. Errors are legal (shed,
                        // deadline, injected fault); answers must be
                        // predicate-consistent.
                        if wrng.below(8) == 0 {
                            let expr = match wrng.below(3) {
                                0 => "true",
                                1 => "kind = \"full\"",
                                _ => "n_models >= 1 and not tag:no-such-tag",
                            };
                            {
                                let mut c = counters.lock().unwrap_or_else(|e| e.into_inner());
                                c[0] += 1;
                            }
                            match frontend.query(&tenant, expr, Some(config.deadline)) {
                                Ok(out) => {
                                    let mut c =
                                        counters.lock().unwrap_or_else(|e| e.into_inner());
                                    c[8] += 1;
                                    drop(c);
                                    if expr.starts_with("kind")
                                        && out.records.iter().any(|r| {
                                            r.kind != mmm_core::catalog::SetKind::Full
                                        })
                                    {
                                        violations
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner())
                                            .push(format!(
                                                "round {round}: query `{expr}` returned a \
                                                 non-matching record"
                                            ));
                                    }
                                }
                                Err(_) => {
                                    let mut c =
                                        counters.lock().unwrap_or_else(|e| e.into_inner());
                                    c[2] += 1;
                                }
                            }
                            continue;
                        }
                        let set = small_set(4, config.n_models, wrng.next_u64());
                        // A slice of requests runs with a hopeless
                        // budget to exercise the deadline path.
                        let deadline = if wrng.below(8) == 0 {
                            Some(Duration::ZERO)
                        } else {
                            Some(config.deadline)
                        };
                        {
                            let mut c = counters.lock().unwrap_or_else(|e| e.into_inner());
                            c[0] += 2;
                        }
                        match frontend.save_initial(&tenant, &mut saver, &set, deadline) {
                            Ok(id) => {
                                {
                                    let mut c =
                                        counters.lock().unwrap_or_else(|e| e.into_inner());
                                    c[1] += 1;
                                }
                                outcomes
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push((id.clone(), set.clone()));
                                // Immediately read our own write.
                                match frontend.recover(&tenant, &saver, &id, deadline) {
                                    Ok(r) => {
                                        let mut c =
                                            counters.lock().unwrap_or_else(|e| e.into_inner());
                                        if r.served == Served::Stale {
                                            c[4] += 1;
                                        } else {
                                            c[3] += 1;
                                        }
                                        drop(c);
                                        if r.set != set {
                                            violations
                                                .lock()
                                                .unwrap_or_else(|e| e.into_inner())
                                                .push(format!(
                                                    "round {round} ({}): recover of {id} \
                                                     returned wrong bits mid-round",
                                                    storm.name()
                                                ));
                                        }
                                    }
                                    Err(_) => {
                                        let mut c =
                                            counters.lock().unwrap_or_else(|e| e.into_inner());
                                        c[2] += 1;
                                    }
                                }
                            }
                            Err(_) => {
                                let mut c = counters.lock().unwrap_or_else(|e| e.into_inner());
                                c[2] += 1;
                                c[0] -= 1; // the paired recover never ran
                            }
                        }
                    }
                });
            }
        });

        let [req, ok, err, fresh, stale, forks, merges, conflicts, queries] =
            counters.into_inner().unwrap_or_else(|e| e.into_inner());
        report.requests += req;
        report.saves_ok += ok;
        report.request_errors += err;
        report.recovers_fresh += fresh;
        report.recovers_stale += stale;
        report.branch_forks += forks;
        report.branch_merges += merges;
        report.branch_conflicts += conflicts;
        report.queries_ok += queries;
        report
            .violations
            .extend(violations.into_inner().unwrap_or_else(|e| e.into_inner()));
        for (id, set) in outcomes.into_inner().unwrap_or_else(|e| e.into_inner()) {
            expected.insert(id, set);
        }
        let gc_stats = env.commit_gate().stats();
        report.commit_batches += gc_stats.batches;
        report.commit_members += gc_stats.members;

        // ---- crash: drop the environment, reopen cold, audit. ----
        frontend.publish_health();
        drop(frontend);
        drop(env);
        let env = reopen_after_crash(dir, round, storm, &mut report)?;
        audit_round(&env, round, storm, &mut expected, &mut report)?;
        report.rounds += 1;
    }
    Ok(report)
}

/// Cold reopen after a round's crash. The strict open is fail-stop on a
/// flipped record; only a doc-flip round may need the salvage pass, and
/// needing it in any other round is itself an invariant violation.
fn reopen_after_crash(
    dir: &Path,
    round: usize,
    storm: Storm,
    report: &mut ChaosReport,
) -> Result<ManagementEnv> {
    match ManagementEnv::open(dir, LatencyProfile::zero()) {
        Ok(env) => Ok(env),
        Err(mmm_util::Error::Corrupt(why)) => {
            if storm != Storm::DocFlip {
                report.violations.push(format!(
                    "round {round} ({}): store corrupt on reopen without a bit flip: {why}",
                    storm.name()
                ));
            }
            let salvaged = fsck::salvage_docs(dir)?;
            report.debris_entries += salvaged.records_dropped + salvaged.torn_tails;
            ManagementEnv::open(dir, LatencyProfile::zero())
        }
        Err(e) => Err(e),
    }
}

/// Post-crash audit of one round: classify fsck damage, repair,
/// re-scan, and verify every committed save.
fn audit_round(
    env: &ManagementEnv,
    round: usize,
    storm: Storm,
    expected: &mut HashMap<ModelSetId, ModelSet>,
    report: &mut ChaosReport,
) -> Result<()> {
    let scan = fsck::fsck(env)?;
    for d in &scan.damage {
        let allowed = match d {
            // Phase-one debris and crash-leaked orphans are the normal
            // residue of dying mid-save.
            fsck::Damage::UncommittedSave { .. }
            | fsck::Damage::OrphanBlob { .. }
            | fsck::Damage::OrphanChunk { .. } => true,
            // A discarded flipped record may leave a committed set's
            // documents gone (dangling commit) or a derived chain
            // broken — only a doc-flip round may do that.
            fsck::Damage::DanglingCommit { .. }
            | fsck::Damage::DanglingChain { .. }
            | fsck::Damage::MissingBlob { .. }
            | fsck::Damage::HashMismatch { .. }
            | fsck::Damage::OrphanBranch { .. } => storm == Storm::DocFlip,
        };
        if allowed {
            report.debris_entries += 1;
        } else {
            report.violations.push(format!(
                "round {round} ({}): unexpected damage: {}",
                storm.name(),
                d.describe()
            ));
        }
    }

    // Repair must converge. One pass is not always enough: quarantining
    // a chain's base exposes its descendants (and any branch pointing
    // at them) as newly dangling, so iterate scan→repair — the cascade
    // is bounded by chain depth. Damage still present after the pass
    // budget is a real violation.
    let mut scan = scan;
    let mut passes = 0;
    while !scan.is_clean() {
        fsck::repair(env, &scan)?;
        passes += 1;
        scan = fsck::fsck(env)?;
        if passes >= 6 {
            for d in &scan.damage {
                report.violations.push(format!(
                    "round {round} ({}): damage survived {passes} repair passes: {}",
                    storm.name(),
                    d.describe()
                ));
            }
            break;
        }
        // Cascade damage uncovered by a repair pass is expected debris;
        // anything unexpected in the *first* scan was already flagged.
        report.debris_entries += scan.damage.len() as u64;
    }

    // No uncommitted save visible: the catalog only lists committed ids.
    let committed = commit::committed_ids(env)?;
    let listed: Vec<ModelSetId> = catalog::list_sets(env)?.into_iter().map(|s| s.id).collect();
    for id in &listed {
        if !committed.contains(&(id.approach.clone(), id.key.clone())) {
            report.violations.push(format!(
                "round {round} ({}): catalog lists uncommitted set {id}",
                storm.name(),
            ));
        }
    }

    // The query engine and the catalog agree: after repair, `true`
    // matches exactly the catalog's sets — no phantom records, no sets
    // the redesigned read path drops.
    match query::run(env, "true") {
        Ok(out) => {
            let queried: std::collections::HashSet<&ModelSetId> =
                out.records.iter().map(|r| &r.id).collect();
            for id in &listed {
                if !queried.contains(id) {
                    report.violations.push(format!(
                        "round {round} ({}): query `true` dropped catalog set {id}",
                        storm.name(),
                    ));
                }
            }
            if queried.len() != listed.len() {
                let catalog: std::collections::HashSet<&ModelSetId> = listed.iter().collect();
                for id in queried.difference(&catalog) {
                    report.violations.push(format!(
                        "round {round} ({}): query `true` invented set {id}",
                        storm.name(),
                    ));
                }
            }
        }
        Err(e) => report.violations.push(format!(
            "round {round} ({}): query `true` failed after repair: {e}",
            storm.name(),
        )),
    }

    // Branch heads resolve to committed sets (fsck + repair above must
    // have retired any orphaned pointer).
    for b in branch::branches(env)? {
        if !commit::is_committed(env, &b.head)? {
            report.violations.push(format!(
                "round {round} ({}): branch {:?} points at uncommitted set {}",
                storm.name(),
                b.name,
                b.head
            ));
        }
    }

    // Every save acknowledged Ok is durable and bit-identical. A
    // doc-flip round may have destroyed the commit (or repair removed a
    // damaged set — for update chains, a flipped ancestor takes its
    // descendants with it) — that counts as a lost save, never as
    // wrong bits.
    let mut lost: Vec<ModelSetId> = Vec::new();
    for (id, set) in expected.iter() {
        if !commit::is_committed(env, id)? {
            if storm == Storm::DocFlip {
                report.saves_lost_to_flips += 1;
                lost.push(id.clone());
            } else {
                report.violations.push(format!(
                    "round {round} ({}): committed save {id} vanished",
                    storm.name()
                ));
            }
            continue;
        }
        match approach::recover_any(env, id) {
            Ok(back) if &back == set => {}
            Ok(_) => report.violations.push(format!(
                "round {round} ({}): committed save {id} recovered with wrong bits",
                storm.name()
            )),
            Err(e) if storm == Storm::DocFlip => {
                report.saves_lost_to_flips += 1;
                lost.push(id.clone());
                let _ = e;
            }
            Err(e) => report.violations.push(format!(
                "round {round} ({}): committed save {id} unreadable: {e}",
                storm.name()
            )),
        }
    }
    for id in lost {
        expected.remove(&id);
    }
    Ok(())
}

/// One row of [`ServiceBenchReport`]: sustained service throughput at a
/// given worker count.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchRow {
    /// Concurrent worker threads driving the frontend.
    pub threads: usize,
    /// Save requests issued.
    pub saves: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Sustained acknowledged saves per second of wall-clock time.
    pub saves_per_sec: f64,
    /// Shed requests as a fraction of all issued.
    pub shed_rate: f64,
    /// 99th-percentile deadline overrun across requests (hybrid
    /// real+simulated time past the budget; 0 when within deadline).
    pub p99_overrun: Duration,
    /// Commit records per acknowledged save (< 1.0 ⇒ group commit
    /// coalesced appends).
    pub commit_records_per_save: f64,
}

/// The service benchmark: sustained frontend throughput without faults.
#[derive(Debug, Clone, Default)]
pub struct ServiceBenchReport {
    /// One row per measured thread count.
    pub rows: Vec<ServiceBenchRow>,
}

/// Measure sustained frontend service throughput (no faults): saves/sec,
/// shed rate, and p99 deadline overrun at each of `thread_counts`.
pub fn service_bench(
    dir: &Path,
    thread_counts: &[usize],
    saves_per_thread: usize,
    config: &ChaosConfig,
) -> Result<ServiceBenchReport> {
    let mut out = ServiceBenchReport::default();
    for (i, &threads) in thread_counts.iter().enumerate() {
        let obs = mmm_obs::Observer::new();
        let subdir = dir.join(format!("svc-{threads}-{i}"));
        std::fs::create_dir_all(&subdir)?;
        let env = ManagementEnv::builder(&subdir, LatencyProfile::zero())
            .observer(obs.clone())
            .commit_window(config.commit_window)
            .open()?;
        let frontend = FleetFrontend::with_config(
            &env,
            FrontendConfig {
                admission: config.admission,
                default_deadline: config.deadline,
                ..FrontendConfig::default()
            },
        );
        let inserts_before = env.stats().doc_inserts;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let frontend = &frontend;
                let config = &config;
                let mut wrng = Xoshiro256pp::new(config.seed ^ (worker as u64) << 17);
                scope.spawn(move || {
                    let tenant = format!("tenant-{}", worker % config.tenants.max(1));
                    let mut saver = BaselineSaver::new();
                    for _ in 0..saves_per_thread {
                        let set = small_set(4, config.n_models, wrng.next_u64());
                        let _ = frontend.save_initial(&tenant, &mut saver, &set, None);
                    }
                });
            }
        });
        let wall = start.elapsed();
        let c = frontend.counters();
        let saves = (threads * saves_per_thread) as u64;
        let overrun_ns = obs
            .metrics()
            .and_then(|m| m.histogram("mmm_fleet_deadline_overrun_ns"))
            .and_then(|h| h.quantile(0.99))
            .unwrap_or(0);
        let commit_inserts = env.stats().doc_inserts - inserts_before;
        let acked = c.ok.max(1);
        out.rows.push(ServiceBenchRow {
            threads,
            saves,
            shed: c.shed,
            saves_per_sec: c.ok as f64 / wall.as_secs_f64().max(1e-9),
            shed_rate: c.shed as f64 / saves.max(1) as f64,
            p99_overrun: Duration::from_nanos(overrun_ns),
            // Each baseline save is 1 set doc + 1 commit record; the
            // commit share is what group commit can shrink.
            commit_records_per_save: (commit_inserts.saturating_sub(acked)) as f64 / acked as f64,
        });
    }
    Ok(out)
}

/// Render a [`ServiceBenchReport`] as the canonical `BENCH_service.json`
/// document (`mmm chaos --bench-out`, and the `repro gate` candidate).
pub fn service_bench_json(
    config: &ChaosConfig,
    saves_per_thread: usize,
    bench: &ServiceBenchReport,
) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = bench
        .rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "threads": r.threads,
                "saves": r.saves,
                "shed": r.shed,
                "saves_per_sec": r.saves_per_sec,
                "shed_rate": r.shed_rate,
                "p99_deadline_overrun_ns": r.p99_overrun.as_nanos() as u64,
                "commit_records_per_save": r.commit_records_per_save,
            })
        })
        .collect();
    serde_json::json!({
        "bench": "service",
        "seed": config.seed,
        "saves_per_thread": saves_per_thread,
        "commit_window_ms": config.commit_window.as_millis() as u64,
        "rows": rows,
    })
}

/// Render a [`ChaosReport`] (and optional bench rows) as a JSON value
/// for `--report-out` / CI artifacts.
pub fn report_json(config: &ChaosConfig, report: &ChaosReport) -> serde_json::Value {
    serde_json::json!({
        "seed": config.seed,
        "threads": config.threads,
        "tenants": config.tenants,
        "rounds": report.rounds,
        "tenant_iterations": config.tenant_iterations(),
        "requests": report.requests,
        "saves_ok": report.saves_ok,
        "request_errors": report.request_errors,
        "recovers_fresh": report.recovers_fresh,
        "recovers_stale": report.recovers_stale,
        "queries_ok": report.queries_ok,
        "saves_lost_to_flips": report.saves_lost_to_flips,
        "branch_forks": report.branch_forks,
        "branch_merges": report.branch_merges,
        "branch_conflicts": report.branch_conflicts,
        "debris_entries": report.debris_entries,
        "commit_batches": report.commit_batches,
        "commit_members": report.commit_members,
        "violations": report.violations.clone(),
        "passed": report.passed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    #[test]
    fn a_small_clean_run_has_no_violations() {
        let dir = TempDir::new("mmm-chaos").unwrap();
        let config = ChaosConfig {
            threads: 4,
            tenants: 2,
            rounds: 2,
            iters: 1,
            seed: 3,
            ..ChaosConfig::default()
        };
        let report = run_chaos(dir.path(), &config).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.rounds, 2);
        assert!(report.saves_ok > 0);
    }

    #[test]
    fn the_report_json_round_trips_the_verdict() {
        let config = ChaosConfig::default();
        let mut report = ChaosReport { rounds: 1, ..ChaosReport::default() };
        report.violations.push("example".into());
        let v = report_json(&config, &report);
        assert_eq!(*v.get("passed").unwrap(), serde_json::Value::Bool(false));
        assert_eq!(*v.get("rounds").unwrap(), 1u64);
    }
}
