//! Layer-granularity parameter snapshots.
//!
//! A [`ParamDict`] is the unit the management layer moves around: the flat
//! `f32` parameters of one model, split per parametric layer. The Update
//! approach (paper §3.3) hashes and diffs at exactly this granularity.

use mmm_util::hash::hash_f32s;

/// Parameters of one parametric layer, flattened in canonical order
/// (weights then bias).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// Persisted layer key, e.g. `"0.linear"`.
    pub name: String,
    /// Flat parameter values.
    pub data: Vec<f32>,
}

impl LayerParams {
    /// Content hash of the layer's parameters (used for change detection).
    pub fn content_hash(&self) -> u64 {
        hash_f32s(&self.data, 0)
    }
}

/// All parameters of one model, split per parametric layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamDict {
    /// Parametric layers in model order.
    pub layers: Vec<LayerParams>,
}

impl ParamDict {
    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.data.len()).sum()
    }

    /// Per-layer content hashes, in layer order.
    pub fn layer_hashes(&self) -> Vec<u64> {
        self.layers.iter().map(LayerParams::content_hash).collect()
    }

    /// Concatenate all layer parameters into one flat vector (the
    /// Baseline approach's storage layout).
    pub fn concat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.data);
        }
        out
    }

    /// Rebuild a dict from a flat parameter vector plus per-layer
    /// names and sizes (as recorded in the set's architecture).
    ///
    /// # Panics
    /// Panics if `flat.len()` differs from the sum of `sizes`.
    pub fn from_flat(flat: &[f32], names: &[String], sizes: &[usize]) -> Self {
        assert_eq!(names.len(), sizes.len(), "names/sizes length mismatch");
        let total: usize = sizes.iter().sum();
        assert_eq!(flat.len(), total, "flat parameter count mismatch");
        let mut layers = Vec::with_capacity(sizes.len());
        let mut off = 0;
        for (name, &n) in names.iter().zip(sizes) {
            layers.push(LayerParams {
                name: name.clone(),
                data: flat[off..off + n].to_vec(),
            });
            off += n;
        }
        ParamDict { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> ParamDict {
        ParamDict {
            layers: vec![
                LayerParams { name: "0.linear".into(), data: vec![1., 2., 3.] },
                LayerParams { name: "2.linear".into(), data: vec![4., 5.] },
            ],
        }
    }

    #[test]
    fn counts_and_concat() {
        let d = dict();
        assert_eq!(d.param_count(), 5);
        assert_eq!(d.concat(), vec![1., 2., 3., 4., 5.]);
    }

    #[test]
    fn from_flat_roundtrip() {
        let d = dict();
        let names: Vec<String> = d.layers.iter().map(|l| l.name.clone()).collect();
        let sizes: Vec<usize> = d.layers.iter().map(|l| l.data.len()).collect();
        let back = ParamDict::from_flat(&d.concat(), &names, &sizes);
        assert_eq!(d, back);
    }

    #[test]
    #[should_panic(expected = "flat parameter count mismatch")]
    fn from_flat_wrong_len_panics() {
        let _ = ParamDict::from_flat(&[1.0; 4], &["a".into()], &[5]);
    }

    #[test]
    fn layer_hash_changes_with_content() {
        let d = dict();
        let h = d.layer_hashes();
        assert_eq!(h.len(), 2);
        let mut d2 = d.clone();
        // Smallest representable change: flip the low mantissa bit.
        d2.layers[1].data[0] = f32::from_bits(d2.layers[1].data[0].to_bits() + 1);
        let h2 = d2.layer_hashes();
        assert_eq!(h[0], h2[0], "untouched layer keeps its hash");
        assert_ne!(h[1], h2[1], "modified layer hash changes");
    }

    #[test]
    fn empty_dict() {
        let d = ParamDict::default();
        assert_eq!(d.param_count(), 0);
        assert!(d.concat().is_empty());
        assert!(d.layer_hashes().is_empty());
    }
}
