//! Single-model file format (`.mmmd`): architecture spec + parameters in
//! one self-describing file — the `.pt`-style convenience for deploying
//! or inspecting one model outside the management system.

use std::path::Path;

use crate::model::Model;
use crate::spec::ArchitectureSpec;
use mmm_util::codec::{put_f32_slice, put_str, put_u64, Reader};
use mmm_util::{Error, Result};

const MAGIC: &[u8; 4] = b"MMMD";
const VERSION: u32 = 1;

/// Serialize a model (architecture + parameters) into bytes.
pub fn to_bytes(model: &Model) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 * model.param_count() + 1024);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    put_str(&mut buf, &serde_json::to_string(model.spec()).expect("spec serializes"));
    let params = model.export_params();
    put_u64(&mut buf, params.len() as u64);
    put_f32_slice(&mut buf, &params);
    buf
}

/// Deserialize a model previously produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<Model> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != MAGIC {
        return Err(Error::corrupt("bad model-file magic"));
    }
    let version = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::corrupt(format!("unsupported model-file version {version}")));
    }
    let spec: ArchitectureSpec = serde_json::from_str(&r.str()?)
        .map_err(|e| Error::corrupt(format!("bad architecture in model file: {e}")))?;
    spec.validate().map_err(Error::Corrupt)?;
    let n = r.u64()? as usize;
    if n != spec.param_count() {
        return Err(Error::corrupt(format!(
            "model file has {n} params, architecture expects {}",
            spec.param_count()
        )));
    }
    let flat = r.f32_slice(n)?;
    if r.remaining() != 0 {
        return Err(Error::corrupt("trailing bytes after model parameters"));
    }
    let mut model = spec.build(0);
    let dict = crate::params::ParamDict::from_flat(
        &flat,
        &spec.parametric_layer_names(),
        &spec.parametric_layer_sizes(),
    );
    model.import_param_dict(&dict);
    Ok(model)
}

/// Write a model to a file.
pub fn save_model(model: &Model, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_bytes(model))?;
    Ok(())
}

/// Read a model from a file.
pub fn load_model(path: impl AsRef<Path>) -> Result<Model> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architectures::Architectures;
    use mmm_tensor::Tensor;
    use mmm_util::TempDir;

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut original = Architectures::ffnn48().build(42);
        let bytes = to_bytes(&original);
        let mut loaded = from_bytes(&bytes).unwrap();
        assert_eq!(original.export_params(), loaded.export_params());
        let x = Tensor::from_vec([2, 4], vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8]);
        assert_eq!(original.forward(&x, false), loaded.forward(&x, false));
    }

    #[test]
    fn file_roundtrip() {
        let dir = TempDir::new("mmm-model-io").unwrap();
        let path = dir.path().join("cell17.mmmd");
        let model = Architectures::recommender_mlp().build(7);
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(model.export_params(), loaded.export_params());
        assert_eq!(loaded.spec().name, "RecMLP");
    }

    #[test]
    fn corruption_is_detected() {
        let model = Architectures::ffnn(6).build(1);
        let bytes = to_bytes(&model);
        assert!(from_bytes(b"XXXX").is_err());
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(from_bytes(&extra).is_err());
    }

    #[test]
    fn param_count_mismatch_is_corrupt() {
        let model = Architectures::ffnn(6).build(1);
        let mut bytes = to_bytes(&model);
        // Overwrite the param-count field (right after magic+version+spec).
        let spec_len = 8 + 4 + serde_json::to_string(model.spec()).unwrap().len();
        bytes[spec_len..spec_len + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }
}
