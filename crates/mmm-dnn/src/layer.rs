//! Layers with explicit forward/backward passes.
//!
//! Each layer owns its parameters and their gradients and caches whatever
//! the backward pass needs during `forward`. The [`Layer`] trait is object
//! safe so a model is simply `Vec<Box<dyn Layer>>`.

use mmm_tensor::{conv2d, conv2d_backward, matmul, matmul_nt, matmul_tn, maxpool2d, maxpool2d_backward, Tensor};
use mmm_util::Rng;

/// A single differentiable layer in a sequential model.
pub trait Layer: Send {
    /// Short kind name ("linear", "relu", ...), used in persisted layer keys.
    fn kind(&self) -> &'static str;

    /// Run the layer forward. `train` controls whether backward state is
    /// cached (inference skips the caching).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagate the gradient and accumulate parameter gradients.
    /// Must be called after a `forward(.., train=true)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Total number of parameters (0 for stateless layers).
    fn param_count(&self) -> usize {
        0
    }

    /// Flatten all parameters into `out` in the layer's canonical order
    /// (weights then bias).
    fn export_params(&self, out: &mut Vec<f32>) {
        let _ = out;
    }

    /// Load parameters from a flat slice in canonical order.
    ///
    /// # Panics
    /// Panics if `data` length differs from [`Layer::param_count`].
    fn import_params(&mut self, data: &[f32]) {
        assert!(data.is_empty(), "{} layer has no parameters", self.kind());
    }

    /// Apply `f(param, grad)` to each parameter tensor (for optimizers).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        let _ = f;
    }

    /// Zero all parameter gradients.
    fn zero_grads(&mut self) {}

    /// Multiply all parameter gradients by `k` (global-norm clipping).
    fn scale_grads(&mut self, k: f32) {
        let _ = k;
    }
}

/// Fully connected layer: `y = x · Wᵀ + b` with `W: [out, in]`, matching
/// PyTorch's `nn.Linear` parameter layout (so parameter counts and byte
/// layouts line up with the paper's models).
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Kaiming-uniform initialization, the PyTorch default for `nn.Linear`:
    /// `U(-1/sqrt(in), 1/sqrt(in))` for both weight and bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "linear dims must be positive");
        let bound = 1.0 / (in_dim as f32).sqrt();
        Linear {
            weight: Tensor::rand_uniform([out_dim, in_dim], -bound, bound, rng),
            bias: Tensor::rand_uniform([out_dim], -bound, bound, rng),
            grad_w: Tensor::zeros([out_dim, in_dim]),
            grad_b: Tensor::zeros([out_dim]),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[0]
    }
}

impl Layer for Linear {
    fn kind(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "linear expects [batch, features]");
        assert_eq!(input.shape()[1], self.in_dim(), "linear input width mismatch");
        if train {
            self.cached_input = Some(input.clone());
        }
        // y[b,o] = sum_i x[b,i] * W[o,i]  ==  x · Wᵀ
        matmul_nt(input, &self.weight).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward(train=true)");
        // dW[o,i] = sum_b g[b,o] * x[b,i]  ==  gᵀ · x
        self.grad_w = matmul_tn(grad_out, input);
        self.grad_b = grad_out.sum_rows();
        // dx[b,i] = sum_o g[b,o] * W[o,i]  ==  g · W
        matmul(grad_out, &self.weight)
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn import_params(&mut self, data: &[f32]) {
        assert_eq!(data.len(), self.param_count(), "linear param count mismatch");
        let wn = self.weight.len();
        self.weight.data_mut().copy_from_slice(&data[..wn]);
        self.bias.data_mut().copy_from_slice(&data[wn..]);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.grad_w);
        f(&mut self.bias, &self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }

    fn scale_grads(&mut self, k: f32) {
        self.grad_w.map_inplace(|x| x * k);
        self.grad_b.map_inplace(|x| x * k);
    }
}

/// 2-D convolution layer with PyTorch's `nn.Conv2d` parameter layout.
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-uniform init with fan-in = `in_ch * k * k`.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, pad: usize, rng: &mut impl Rng) -> Self {
        let fan_in = in_ch * kernel * kernel;
        let bound = 1.0 / (fan_in as f32).sqrt();
        Conv2d {
            weight: Tensor::rand_uniform([out_ch, in_ch, kernel, kernel], -bound, bound, rng),
            bias: Tensor::rand_uniform([out_ch], -bound, bound, rng),
            grad_w: Tensor::zeros([out_ch, in_ch, kernel, kernel]),
            grad_b: Tensor::zeros([out_ch]),
            stride,
            pad,
            cached_input: None,
        }
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        conv2d(input, &self.weight, &self.bias, self.stride, self.pad)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward(train=true)");
        let grads = conv2d_backward(input, &self.weight, grad_out, self.stride, self.pad);
        self.grad_w = grads.weight;
        self.grad_b = grads.bias;
        grads.input
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn import_params(&mut self, data: &[f32]) {
        assert_eq!(data.len(), self.param_count(), "conv2d param count mismatch");
        let wn = self.weight.len();
        self.weight.data_mut().copy_from_slice(&data[..wn]);
        self.bias.data_mut().copy_from_slice(&data[wn..]);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.grad_w);
        f(&mut self.bias, &self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }

    fn scale_grads(&mut self, k: f32) {
        self.grad_w.map_inplace(|x| x * k);
        self.grad_b.map_inplace(|x| x * k);
    }
}

/// ReLU activation.
#[derive(Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("relu backward before forward");
        grad_out.zip_map(input, |g, x| if x > 0.0 { g } else { 0.0 })
    }
}

/// Tanh activation (the battery models' nonlinearity).
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Layer for Tanh {
    fn kind(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(|x| x.tanh());
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("tanh backward before forward");
        grad_out.zip_map(out, |g, y| g * (1.0 - y * y))
    }
}

/// Sigmoid activation.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Layer for Sigmoid {
    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("sigmoid backward before forward");
        grad_out.zip_map(out, |g, y| g * y * (1.0 - y))
    }
}

/// Max pooling with a square window.
pub struct MaxPool2d {
    window: usize,
    cached: Option<(Vec<usize>, Vec<u32>)>,
}

impl MaxPool2d {
    /// Create a pool layer with the given square window / stride.
    pub fn new(window: usize) -> Self {
        MaxPool2d { window, cached: None }
    }
}

impl Layer for MaxPool2d {
    fn kind(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, arg) = maxpool2d(input, self.window);
        if train {
            self.cached = Some((input.shape().to_vec(), arg));
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, arg) = self.cached.as_ref().expect("maxpool backward before forward");
        maxpool2d_backward(shape, grad_out, arg)
    }
}

/// Average pooling with a square window.
pub struct AvgPool2d {
    window: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Create an average-pool layer with the given square window/stride.
    pub fn new(window: usize) -> Self {
        AvgPool2d { window, cached_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn kind(&self) -> &'static str {
        "avgpool2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "avgpool2d expects [N,C,H,W]");
        let w = self.window;
        let (n, c, h, wd) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(h % w, 0, "avgpool2d: H={h} not divisible by window={w}");
        assert_eq!(wd % w, 0, "avgpool2d: W={wd} not divisible by window={w}");
        if train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        let (oh, ow) = (h / w, wd / w);
        let mut out = vec![0.0f32; n * c * oh * ow];
        let id = input.data();
        let norm = 1.0 / (w * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..w {
                            for kx in 0..w {
                                acc += id[((ni * c + ci) * h + y * w + ky) * wd + x * w + kx];
                            }
                        }
                        out[((ni * c + ci) * oh + y) * ow + x] = acc * norm;
                    }
                }
            }
        }
        Tensor::from_vec([n, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.clone().expect("avgpool backward before forward");
        let w = self.window;
        let (n, c, h, wd) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (h / w, wd / w);
        let mut gi = vec![0.0f32; n * c * h * wd];
        let norm = 1.0 / (w * w) as f32;
        let god = grad_out.data();
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..oh {
                    for x in 0..ow {
                        let g = god[((ni * c + ci) * oh + y) * ow + x] * norm;
                        for ky in 0..w {
                            for kx in 0..w {
                                gi[((ni * c + ci) * h + y * w + ky) * wd + x * w + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(shape, gi)
    }
}

/// Inverted dropout with a deterministic per-layer mask stream.
///
/// The mask generator is seeded at construction, so a training run's
/// dropout pattern is a pure function of `(seed, forward-call sequence)` —
/// preserving the Provenance approach's replayability.
pub struct Dropout {
    p: f32,
    rng: mmm_util::Xoshiro256pp,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Create a dropout layer dropping activations with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout {
            p,
            rng: mmm_util::Xoshiro256pp::new(seed),
            cached_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            // Inverted dropout: inference is the identity.
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_vec(
            input.shape().to_vec(),
            (0..input.len())
                .map(|_| if self.rng.next_f32() < keep { scale } else { 0.0 })
                .collect(),
        );
        let out = input.mul(&mask);
        self.cached_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.cached_mask.as_ref().expect("dropout backward before forward");
        grad_out.mul(mask)
    }
}

/// Flatten `[N, ...]` to `[N, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Layer for Flatten {
    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        input.clone().reshape([n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.clone().expect("flatten backward before forward");
        grad_out.clone().reshape(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::Xoshiro256pp;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = Xoshiro256pp::new(0);
        let mut l = Linear::new(3, 2, &mut rng);
        // Overwrite with known params: W = [[1,0,0],[0,1,0]], b = [10, 20].
        l.import_params(&[1., 0., 0., 0., 1., 0., 10., 20.]);
        let x = Tensor::from_vec([1, 3], vec![5., 6., 7.]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[15., 26.]);
    }

    #[test]
    fn linear_param_roundtrip() {
        let mut rng = Xoshiro256pp::new(1);
        let l = Linear::new(4, 3, &mut rng);
        let mut buf = Vec::new();
        l.export_params(&mut buf);
        assert_eq!(buf.len(), l.param_count());
        assert_eq!(l.param_count(), 4 * 3 + 3);
        let mut l2 = Linear::new(4, 3, &mut Xoshiro256pp::new(99));
        l2.import_params(&buf);
        let mut buf2 = Vec::new();
        l2.export_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    /// Finite-difference gradient check through Linear + Tanh.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = Xoshiro256pp::new(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::rand_normal([4, 3], 0.0, 1.0, &mut rng);

        // Loss = sum(forward(x)); grad_out = ones.
        let y = l.forward(&x, true);
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let gx = l.backward(&ones);

        let mut params = Vec::new();
        l.export_params(&mut params);
        let eps = 1e-3f32;
        let mut analytic = Vec::new();
        l.visit_params(&mut |_, g| analytic.extend_from_slice(g.data()));

        for idx in [0usize, 3, 6, 7] {
            let mut plus = params.clone();
            plus[idx] += eps;
            let mut minus = params.clone();
            minus[idx] -= eps;
            let mut lp = Linear::new(3, 2, &mut Xoshiro256pp::new(0));
            lp.import_params(&plus);
            let mut lm = Linear::new(3, 2, &mut Xoshiro256pp::new(0));
            lm.import_params(&minus);
            let fd = (lp.forward(&x, false).sum() - lm.forward(&x, false).sum()) / (2.0 * eps);
            assert!(
                (fd - analytic[idx]).abs() < 1e-2,
                "param {idx}: fd={fd} analytic={}",
                analytic[idx]
            );
        }

        // Input gradient check at one position.
        let mut xp = x.clone();
        xp.data_mut()[5] += eps;
        let mut xm = x.clone();
        xm.data_mut()[5] -= eps;
        let fd = (l.forward(&xp, false).sum() - l.forward(&xm, false).sum()) / (2.0 * eps);
        assert!((fd - gx.data()[5]).abs() < 1e-2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::default();
        let x = Tensor::from_vec([1, 4], vec![-1., 2., -3., 4.]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = r.backward(&Tensor::full([1, 4], 1.0));
        assert_eq!(g.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut t = Tanh::default();
        let x = Tensor::from_vec([1, 2], vec![0.3, -0.7]);
        let _ = t.forward(&x, true);
        let g = t.backward(&Tensor::full([1, 2], 1.0));
        for (i, &xi) in x.data().iter().enumerate() {
            let eps = 1e-3f32;
            let fd = ((xi + eps).tanh() - (xi - eps).tanh()) / (2.0 * eps);
            assert!((g.data()[i] - fd).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut s = Sigmoid::default();
        let x = Tensor::from_vec([1, 2], vec![0.5, -1.2]);
        let _ = s.forward(&x, true);
        let g = s.backward(&Tensor::full([1, 2], 1.0));
        let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
        for (i, &xi) in x.data().iter().enumerate() {
            let eps = 1e-3f32;
            let fd = (sig(xi + eps) - sig(xi - eps)) / (2.0 * eps);
            assert!((g.data()[i] - fd).abs() < 1e-4);
        }
    }

    #[test]
    fn flatten_roundtrips_shape() {
        let mut f = Flatten::default();
        let x = Tensor::zeros([2, 3, 4, 5]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 60]);
        let g = f.backward(&Tensor::zeros([2, 60]));
        assert_eq!(g.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn conv_layer_param_roundtrip() {
        let mut rng = Xoshiro256pp::new(3);
        let c = Conv2d::new(3, 6, 5, 1, 0, &mut rng);
        assert_eq!(c.param_count(), 6 * 3 * 25 + 6);
        let mut buf = Vec::new();
        c.export_params(&mut buf);
        let mut c2 = Conv2d::new(3, 6, 5, 1, 0, &mut Xoshiro256pp::new(77));
        c2.import_params(&buf);
        let mut buf2 = Vec::new();
        c2.export_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn avgpool_known_values_and_backward() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let g = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![4.0]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0], "gradient splits evenly");
    }

    #[test]
    fn avgpool_preserves_mean() {
        let mut rng = Xoshiro256pp::new(8);
        let x = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut p = AvgPool2d::new(4);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[2, 3, 2, 2]);
        assert!((y.mean() - x.mean()).abs() < 1e-5);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec([1, 4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_masks_and_rescales_in_training() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::full([1, 1000], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 1000, "values are either dropped or scaled by 1/keep");
        assert!((350..650).contains(&zeros), "drop rate ~0.5, got {zeros}");
        // Expected value preserved (inverted dropout).
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn dropout_backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::full([1, 100], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full([1, 100], 1.0));
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv, "gradient must flow exactly where activations did");
        }
    }

    #[test]
    fn dropout_stream_is_deterministic_per_seed() {
        let run = |seed| {
            let mut d = Dropout::new(0.4, seed);
            let x = Tensor::full([1, 64], 1.0);
            let a = d.forward(&x, true);
            let b = d.forward(&x, true);
            (a, b)
        };
        let (a1, b1) = run(7);
        let (a2, b2) = run(7);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1, "consecutive forwards draw fresh masks");
    }

    #[test]
    fn zero_grads_clears_accumulated_gradients() {
        let mut rng = Xoshiro256pp::new(4);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::rand_normal([3, 2], 0.0, 1.0, &mut rng);
        let y = l.forward(&x, true);
        let _ = l.backward(&Tensor::full(y.shape().to_vec(), 1.0));
        let mut nonzero = false;
        l.visit_params(&mut |_, g| nonzero |= g.data().iter().any(|&v| v != 0.0));
        assert!(nonzero);
        l.zero_grads();
        l.visit_params(&mut |_, g| assert!(g.data().iter().all(|&v| v == 0.0)));
    }
}
