//! Evaluation metrics for recovered and freshly trained models.

use mmm_tensor::Tensor;

/// Root-mean-square error between predictions and targets.
pub fn rmse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "rmse shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    (pred.sub(target).sq_norm() / pred.len() as f32).sqrt()
}

/// Classification accuracy of logits (`[batch, classes]`) against labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.shape()[0], labels.len(), "accuracy batch mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = logits
        .argmax_rows()
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Mean absolute error.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mae shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.sub(target).map(f32::abs).sum() / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known() {
        let p = Tensor::from_vec([2], vec![1.0, 2.0]);
        let t = Tensor::from_vec([2], vec![0.0, 4.0]);
        assert!((rmse(&p, &t) - (2.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(rmse(&p, &p), 0.0);
    }

    #[test]
    fn mae_known() {
        let p = Tensor::from_vec([2], vec![1.0, 2.0]);
        let t = Tensor::from_vec([2], vec![0.0, 4.0]);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn empty_inputs_give_zero() {
        assert_eq!(rmse(&Tensor::zeros([0]), &Tensor::zeros([0])), 0.0);
        assert_eq!(accuracy(&Tensor::zeros([0, 4]), &[]), 0.0);
        assert_eq!(mae(&Tensor::zeros([0]), &Tensor::zeros([0])), 0.0);
    }
}
