//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizers keep per-parameter state in flat buffers keyed by visit
//! order, which is stable because `Model::visit_trainable` walks layers in
//! a fixed order. State buffers are lazily sized on the first step.

use crate::model::Model;
use serde::{Deserialize, Serialize};

/// Which optimizer a training run uses (persisted in provenance records).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain SGD with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
        /// Decoupled weight decay (0 disables; `#[serde(default)]` keeps
        /// older persisted provenance records readable).
        #[serde(default)]
        weight_decay: f32,
    },
    /// Adam with the usual defaults (AdamW-style decoupled decay).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Decoupled weight decay (0 disables).
        #[serde(default)]
        weight_decay: f32,
    },
    /// RMSprop (no momentum).
    RmsProp {
        /// Learning rate.
        lr: f32,
        /// Squared-gradient decay.
        alpha: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Conventional SGD configuration.
    pub fn sgd(lr: f32) -> Self {
        OptimizerKind::Sgd { lr, momentum: 0.0, weight_decay: 0.0 }
    }

    /// Conventional Adam configuration.
    pub fn adam(lr: f32) -> Self {
        OptimizerKind::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }

    /// Set decoupled weight decay (no-op for RMSprop).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        match &mut self {
            OptimizerKind::Sgd { weight_decay, .. } | OptimizerKind::Adam { weight_decay, .. } => {
                *weight_decay = wd;
            }
            OptimizerKind::RmsProp { .. } => {}
        }
        self
    }

    /// Conventional RMSprop configuration.
    pub fn rmsprop(lr: f32) -> Self {
        OptimizerKind::RmsProp { lr, alpha: 0.99, eps: 1e-8 }
    }

    /// Instantiate optimizer state.
    pub fn build(self) -> Optimizer {
        Optimizer { kind: self, slots: Vec::new(), t: 0, lr_scale: 1.0 }
    }
}

/// Per-epoch learning-rate schedule, applied as a multiplicative factor
/// on the optimizer's base learning rate. Serializable: part of the
/// provenance record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// Constant learning rate (the default).
    #[default]
    Constant,
    /// Multiply the rate by `factor` every `every_epochs` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every_epochs: usize,
        /// Multiplicative decay factor per step (e.g. 0.5).
        factor: f32,
    },
    /// Cosine annealing from 1 down to `min_factor` across the run.
    Cosine {
        /// Factor reached at the final epoch.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The learning-rate factor for `epoch` of `total_epochs`.
    pub fn factor(&self, epoch: usize, total_epochs: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every_epochs, factor } => {
                let steps = epoch.checked_div(every_epochs).unwrap_or(0);
                factor.powi(steps as i32)
            }
            LrSchedule::Cosine { min_factor } => {
                if total_epochs <= 1 {
                    return 1.0;
                }
                let progress = epoch as f32 / (total_epochs - 1) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_factor + (1.0 - min_factor) * cos
            }
        }
    }
}

/// Per-parameter-tensor optimizer state.
struct Slot {
    momentum: Vec<f32>,
    second: Vec<f32>,
}

/// Stateful optimizer applying updates to a model's trainable parameters.
pub struct Optimizer {
    kind: OptimizerKind,
    slots: Vec<Slot>,
    t: u64,
    lr_scale: f32,
}

impl Optimizer {
    /// Set the learning-rate factor for subsequent steps (LR schedules).
    pub fn set_lr_scale(&mut self, scale: f32) {
        assert!(scale > 0.0, "lr scale must be positive");
        self.lr_scale = scale;
    }

    /// Apply one update step from the gradients currently stored in the
    /// model's layers, then leave gradients untouched (caller zeroes them).
    pub fn step(&mut self, model: &mut Model) {
        self.t += 1;
        let t = self.t;
        let mut kind = self.kind;
        // Fold the schedule factor into the effective rate.
        match &mut kind {
            OptimizerKind::Sgd { lr, .. }
            | OptimizerKind::Adam { lr, .. }
            | OptimizerKind::RmsProp { lr, .. } => *lr *= self.lr_scale,
        }
        let slots = &mut self.slots;
        let mut idx = 0usize;
        model.visit_trainable(&mut |param, grad| {
            if slots.len() <= idx {
                slots.push(Slot {
                    momentum: vec![0.0; param.len()],
                    second: vec![0.0; param.len()],
                });
            }
            let slot = &mut slots[idx];
            assert_eq!(slot.momentum.len(), param.len(), "optimizer slot shape changed");
            match kind {
                OptimizerKind::Sgd { lr, momentum, weight_decay } => {
                    if weight_decay != 0.0 {
                        // Decoupled decay: shrink weights before the step.
                        for p in param.data_mut() {
                            *p -= lr * weight_decay * *p;
                        }
                    }
                    if momentum == 0.0 {
                        param.axpy(-lr, grad);
                    } else {
                        for ((p, &g), v) in param
                            .data_mut()
                            .iter_mut()
                            .zip(grad.data())
                            .zip(slot.momentum.iter_mut())
                        {
                            *v = momentum * *v + g;
                            *p -= lr * *v;
                        }
                    }
                }
                OptimizerKind::RmsProp { lr, alpha, eps } => {
                    for ((p, &g), v) in param
                        .data_mut()
                        .iter_mut()
                        .zip(grad.data())
                        .zip(slot.second.iter_mut())
                    {
                        *v = alpha * *v + (1.0 - alpha) * g * g;
                        *p -= lr * g / (v.sqrt() + eps);
                    }
                }
                OptimizerKind::Adam { lr, beta1, beta2, eps, weight_decay } => {
                    if weight_decay != 0.0 {
                        for p in param.data_mut() {
                            *p -= lr * weight_decay * *p;
                        }
                    }
                    let bc1 = 1.0 - beta1.powi(t as i32);
                    let bc2 = 1.0 - beta2.powi(t as i32);
                    for (((p, &g), m), v) in param
                        .data_mut()
                        .iter_mut()
                        .zip(grad.data())
                        .zip(slot.momentum.iter_mut())
                        .zip(slot.second.iter_mut())
                    {
                        *m = beta1 * *m + (1.0 - beta1) * g;
                        *v = beta2 * *v + (1.0 - beta2) * g * g;
                        let m_hat = *m / bc1;
                        let v_hat = *v / bc2;
                        *p -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                }
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchitectureSpec, LayerSpec};
    use crate::loss::mse;
    use mmm_tensor::Tensor;

    fn tiny_model() -> Model {
        ArchitectureSpec {
            name: "t".into(),
            input_shape: vec![1],
            layers: vec![LayerSpec::Linear { in_dim: 1, out_dim: 1 }],
        }
        .build(3)
    }

    /// One linear neuron fitting y = 2x should converge with every optimizer.
    fn converges(kind: OptimizerKind) -> f32 {
        let mut m = tiny_model();
        let mut opt = kind.build();
        let x = Tensor::from_vec([8, 1], (0..8).map(|i| i as f32 / 8.0).collect());
        let y = x.scale(2.0);
        let mut last = f32::MAX;
        for _ in 0..500 {
            m.zero_grads();
            let pred = m.forward(&x, true);
            let (l, g) = mse(&pred, &y);
            m.backward(&g);
            opt.step(&mut m);
            last = l;
        }
        last
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(OptimizerKind::sgd(0.1)) < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(OptimizerKind::Sgd { lr: 0.05, momentum: 0.9, weight_decay: 0.0 }) < 1e-4);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(OptimizerKind::adam(0.05)) < 1e-4);
    }

    #[test]
    fn rmsprop_converges() {
        // RMSprop's normalized step keeps a ~lr-sized dither near the
        // optimum, so its floor is looser than SGD/Adam's.
        assert!(converges(OptimizerKind::rmsprop(0.005)) < 1e-3);
    }

    #[test]
    fn step_is_deterministic() {
        let run = || {
            let mut m = tiny_model();
            let mut opt = OptimizerKind::adam(0.01).build();
            let x = Tensor::from_vec([4, 1], vec![0.1, 0.2, 0.3, 0.4]);
            let y = x.scale(3.0);
            for _ in 0..50 {
                m.zero_grads();
                let pred = m.forward(&x, true);
                let (_, g) = mse(&pred, &y);
                m.backward(&g);
                opt.step(&mut m);
            }
            m.export_params()
        };
        assert_eq!(run(), run(), "optimizer must be bit-deterministic");
    }

    #[test]
    fn frozen_layers_are_not_updated() {
        let spec = ArchitectureSpec {
            name: "two".into(),
            input_shape: vec![2],
            layers: vec![
                LayerSpec::Linear { in_dim: 2, out_dim: 2 },
                LayerSpec::Linear { in_dim: 2, out_dim: 1 },
            ],
        };
        let mut m = spec.build(1);
        m.set_trainable_layers(&[1]);
        let before = m.export_param_dict();
        let mut opt = OptimizerKind::sgd(0.5).build();
        let x = Tensor::from_vec([4, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let y = Tensor::from_vec([4, 1], vec![1., 0., 1., 0.]);
        for _ in 0..5 {
            m.zero_grads();
            let pred = m.forward(&x, true);
            let (_, g) = mse(&pred, &y);
            m.backward(&g);
            opt.step(&mut m);
        }
        let after = m.export_param_dict();
        assert_eq!(before.layers[0], after.layers[0], "frozen layer unchanged");
        assert_ne!(before.layers[1], after.layers[1], "trainable layer updated");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradients, decay alone must shrink weights
        // geometrically; without decay they stay put.
        let run = |wd: f32| {
            let mut m = tiny_model();
            let mut opt = OptimizerKind::sgd(0.1).with_weight_decay(wd).build();
            let x = Tensor::from_vec([2, 1], vec![0.0, 0.0]);
            let y = Tensor::from_vec([2, 1], vec![0.0, 0.0]);
            // Zero input and zero bias gradient? Bias gets gradient; look
            // only at the weight magnitude trend instead.
            for _ in 0..50 {
                m.zero_grads();
                let pred = m.forward(&x, true);
                let (_, g) = mse(&pred, &y);
                m.backward(&g);
                opt.step(&mut m);
            }
            m.export_params()[0].abs()
        };
        let decayed = run(0.5);
        let free = run(0.0);
        assert!(decayed < free, "decayed {decayed} vs free {free}");
    }

    #[test]
    fn legacy_optimizer_json_without_decay_parses() {
        let legacy = r#"{"Sgd":{"lr":0.1,"momentum":0.9}}"#;
        let k: OptimizerKind = serde_json::from_str(legacy).unwrap();
        assert_eq!(k, OptimizerKind::Sgd { lr: 0.1, momentum: 0.9, weight_decay: 0.0 });
        let legacy = r#"{"Adam":{"lr":0.001,"beta1":0.9,"beta2":0.999,"eps":1e-8}}"#;
        let k: OptimizerKind = serde_json::from_str(legacy).unwrap();
        assert!(matches!(k, OptimizerKind::Adam { weight_decay, .. } if weight_decay == 0.0));
    }

    #[test]
    fn lr_schedule_factors() {
        let c = LrSchedule::Constant;
        assert_eq!(c.factor(0, 10), 1.0);
        assert_eq!(c.factor(9, 10), 1.0);

        let s = LrSchedule::StepDecay { every_epochs: 2, factor: 0.5 };
        assert_eq!(s.factor(0, 10), 1.0);
        assert_eq!(s.factor(1, 10), 1.0);
        assert_eq!(s.factor(2, 10), 0.5);
        assert_eq!(s.factor(5, 10), 0.25);

        let k = LrSchedule::Cosine { min_factor: 0.1 };
        assert!((k.factor(0, 11) - 1.0).abs() < 1e-6);
        assert!((k.factor(10, 11) - 0.1).abs() < 1e-6);
        let mid = k.factor(5, 11);
        assert!((0.1..1.0).contains(&mid));
        // Degenerate cases don't divide by zero.
        assert_eq!(k.factor(0, 1), 1.0);
        assert_eq!(LrSchedule::StepDecay { every_epochs: 0, factor: 0.5 }.factor(7, 10), 1.0);
    }

    #[test]
    fn lr_scale_shrinks_the_step() {
        let mut m1 = tiny_model();
        let mut m2 = tiny_model();
        let x = Tensor::from_vec([4, 1], vec![0.1, 0.2, 0.3, 0.4]);
        let y = x.scale(3.0);
        let step_with_scale = |m: &mut Model, scale: f32| {
            let before = m.export_params();
            let mut opt = OptimizerKind::sgd(0.1).build();
            opt.set_lr_scale(scale);
            m.zero_grads();
            let pred = m.forward(&x, true);
            let (_, g) = mse(&pred, &y);
            m.backward(&g);
            opt.step(m);
            let after = m.export_params();
            before
                .iter()
                .zip(&after)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        let full = step_with_scale(&mut m1, 1.0);
        let half = step_with_scale(&mut m2, 0.5);
        assert!((half - full / 2.0).abs() < 1e-6, "full {full} half {half}");
    }

    #[test]
    fn serde_roundtrip_of_kind() {
        let k = OptimizerKind::Adam { lr: 0.001, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.01 };
        let s = serde_json::to_string(&k).unwrap();
        let back: OptimizerKind = serde_json::from_str(&s).unwrap();
        assert_eq!(k, back);
    }
}
