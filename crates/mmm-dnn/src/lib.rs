#![warn(missing_docs)]

//! Deterministic deep-learning substrate for multi-model management.
//!
//! This crate provides what the paper used PyTorch 1.7.1 for:
//!
//! * [`layer`] — explicit forward/backward layers (Linear, Conv2d, MaxPool,
//!   activations, Flatten) with per-layer cached state. No autograd graph:
//!   backprop is hand-written, which keeps training bit-deterministic — a
//!   hard requirement for the Provenance approach (paper §3.4), which
//!   recovers models by *re-running* training.
//! * [`model`] — [`model::Model`], a sequential container with parameter
//!   export/import at **layer granularity** (the unit at which the Update
//!   approach hashes and diffs parameters, paper §3.3).
//! * [`spec`] — [`spec::ArchitectureSpec`], a serializable architecture
//!   description. The multi-model savers persist the architecture *once*
//!   per set and rebuild models from it (optimization O1).
//! * [`architectures`] — the paper's evaluated models with their exact
//!   parameter counts: FFNN-48 (4,993), FFNN-69 (10,075), CIFAR CNN (6,882).
//! * [`loss`], [`optim`], [`train`] — MSE / cross-entropy losses, SGD /
//!   Adam optimizers, and a seed-driven training loop with support for
//!   *partial updates* (freezing layers), matching the paper's
//!   fully/partially updated model versions (§2.1).

pub mod architectures;
pub mod io;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod params;
pub mod spec;
pub mod train;

pub use architectures::Architectures;
pub use model::Model;
pub use params::{LayerParams, ParamDict};
pub use spec::{ArchitectureSpec, LayerSpec};
pub use train::{train_model, TrainConfig};
