//! Loss functions with analytic gradients.
//!
//! Each loss returns `(value, grad_wrt_predictions)` in one call — the
//! training loop feeds the gradient straight into `Model::backward`.

use mmm_tensor::Tensor;

/// Mean squared error over all elements:
/// `L = mean((pred - target)^2)`, `dL/dpred = 2 (pred - target) / n`.
///
/// Used by the battery regression models.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Softmax cross-entropy over rows of `logits` (`[batch, classes]`) against
/// integer class labels.
///
/// Returns the mean loss and `dL/dlogits = (softmax - onehot) / batch`.
/// Log-sum-exp is stabilized by subtracting the row max.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "cross_entropy expects [batch, classes]");
    let (b, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), b, "label count must equal batch size");

    let mut grad = Tensor::zeros([b, c]);
    let mut total = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &x in row {
            sum += (x - max).exp();
        }
        let log_sum = sum.ln() + max;
        total += f64::from(log_sum - row[label]);
        let g = grad.row_mut(i);
        for (j, &x) in row.iter().enumerate() {
            let softmax = (x - log_sum).exp();
            g[j] = (softmax - if j == label { 1.0 } else { 0.0 }) / b as f32;
        }
    }
    ((total / b as f64) as f32, grad)
}

/// Row-wise softmax probabilities (for inference / calibration metrics).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax expects [batch, classes]");
    let mut out = logits.clone();
    let rows = out.shape()[0];
    for i in 0..rows {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value_and_grad() {
        let pred = Tensor::from_vec([2, 1], vec![1.0, 3.0]);
        let target = Tensor::from_vec([2, 1], vec![0.0, 1.0]);
        let (l, g) = mse(&pred, &target);
        assert!((l - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(g.data(), &[1.0, 2.0]); // 2*diff/2
    }

    #[test]
    fn mse_zero_at_optimum() {
        let t = Tensor::from_vec([3], vec![1., 2., 3.]);
        let (l, g) = mse(&t, &t);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let (l, _) = cross_entropy(&logits, &[0, 3]);
        assert!((l - (4.0f32).ln()).abs() < 1e-5, "uniform loss is ln(C)");
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_row() {
        let logits = Tensor::from_vec([2, 3], vec![2.0, -1.0, 0.5, 0.0, 0.0, 5.0]);
        let (_, g) = cross_entropy(&logits, &[1, 2]);
        for i in 0..2 {
            let s: f32 = g.row(i).iter().sum();
            assert!(s.abs() < 1e-6, "softmax-minus-onehot rows sum to 0");
        }
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec([1, 3], vec![0.2, -0.4, 0.9]);
        let labels = [2usize];
        let (_, g) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut p = logits.clone();
            p.data_mut()[j] += eps;
            let mut m = logits.clone();
            m.data_mut()[j] -= eps;
            let fd = (cross_entropy(&p, &labels).0 - cross_entropy(&m, &labels).0) / (2.0 * eps);
            assert!((fd - g.data()[j]).abs() < 1e-3, "logit {j}: fd={fd} an={}", g.data()[j]);
        }
    }

    #[test]
    fn cross_entropy_is_stable_for_large_logits() {
        let logits = Tensor::from_vec([1, 2], vec![1000.0, -1000.0]);
        let (l, g) = cross_entropy(&logits, &[0]);
        assert!(l.is_finite());
        assert!(g.data().iter().all(|x| x.is_finite()));
        assert!(l < 1e-6, "confident correct prediction has ~0 loss");
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Tensor::from_vec([2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(i).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn bad_label_panics() {
        let _ = cross_entropy(&Tensor::zeros([1, 3]), &[5]);
    }
}
