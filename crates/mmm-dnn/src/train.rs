//! Seed-driven, bit-deterministic training loop.
//!
//! The training configuration is serializable because the Provenance
//! approach persists it (once per model set) and recovers models by
//! replaying the exact same run. Everything that influences the result —
//! shuffling, batching, optimizer state — is a pure function of
//! `(initial params, data, TrainConfig)`.

use crate::loss::{cross_entropy, mse};
use crate::model::Model;
use crate::optim::OptimizerKind;
use mmm_tensor::Tensor;
use mmm_util::{Rng, SplitMix64, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// Which loss the run optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean squared error (regression; battery models).
    Mse,
    /// Softmax cross-entropy (classification; CIFAR model).
    CrossEntropy,
}

/// Training targets: a regression target tensor or class labels.
#[derive(Debug, Clone)]
pub enum TrainTargets {
    /// Regression targets, first dim = sample count.
    Regression(Tensor),
    /// Integer class labels, one per sample.
    Classification(Vec<usize>),
}

impl TrainTargets {
    /// Number of target samples.
    pub fn len(&self) -> usize {
        match self {
            TrainTargets::Regression(t) => t.shape()[0],
            TrainTargets::Classification(l) => l.len(),
        }
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete, replayable training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (the last batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Optimizer and hyperparameters.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: LossKind,
    /// Seed driving shuffling (and nothing else).
    pub seed: u64,
    /// Optional global gradient-norm clip applied before each step.
    /// `#[serde(default)]` keeps older persisted provenance records
    /// readable.
    #[serde(default)]
    pub clip_norm: Option<f32>,
    /// Per-epoch learning-rate schedule (`#[serde(default)]` for
    /// back-compat with records that predate it).
    #[serde(default)]
    pub lr_schedule: crate::optim::LrSchedule,
}

impl TrainConfig {
    /// A sensible default for the small battery regression models.
    pub fn regression_default(seed: u64) -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            optimizer: OptimizerKind::adam(1e-3),
            loss: LossKind::Mse,
            seed,
            clip_norm: None,
            lr_schedule: crate::optim::LrSchedule::Constant,
        }
    }

    /// A sensible default for the CIFAR classification model.
    pub fn classification_default(seed: u64) -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            optimizer: OptimizerKind::sgd(0.05),
            loss: LossKind::CrossEntropy,
            seed,
            clip_norm: None,
            lr_schedule: crate::optim::LrSchedule::Constant,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch (NaN if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Copy the rows at `indices` (first-dimension slices) into a new tensor.
fn gather_rows(t: &Tensor, indices: &[usize]) -> Tensor {
    let stride: usize = t.shape()[1..].iter().product();
    let mut shape = t.shape().to_vec();
    shape[0] = indices.len();
    let mut out = Vec::with_capacity(indices.len() * stride);
    for &i in indices {
        out.extend_from_slice(&t.data()[i * stride..(i + 1) * stride]);
    }
    Tensor::from_vec(shape, out)
}

/// Train `model` on `(inputs, targets)` according to `cfg`.
///
/// Deterministic: the same model state, data and config always produce
/// bit-identical parameters. Respects the model's trainable-layer mask,
/// so partial updates (paper §2.1) reuse this same entry point.
///
/// # Panics
/// Panics if sample counts disagree or `batch_size == 0`.
pub fn train_model(model: &mut Model, inputs: &Tensor, targets: &TrainTargets, cfg: &TrainConfig) -> TrainReport {
    let n = inputs.shape()[0];
    assert_eq!(n, targets.len(), "input/target sample count mismatch");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(n > 0, "cannot train on an empty dataset");

    let mut opt = cfg.optimizer.build();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        opt.set_lr_scale(cfg.lr_schedule.factor(epoch, cfg.epochs));
        // Fresh generator per epoch derived from the config seed, so the
        // shuffle sequence does not depend on how many draws earlier
        // epochs consumed.
        let mut rng = Xoshiro256pp::new(SplitMix64::derive(cfg.seed, "epoch-shuffle", epoch as u64));
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);

        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch_idx in order.chunks(cfg.batch_size) {
            let x = gather_rows(inputs, batch_idx);
            model.zero_grads();
            let pred = model.forward(&x, true);
            let (loss, grad) = match (&cfg.loss, targets) {
                (LossKind::Mse, TrainTargets::Regression(t)) => {
                    let y = gather_rows(t, batch_idx);
                    mse(&pred, &y)
                }
                (LossKind::CrossEntropy, TrainTargets::Classification(labels)) => {
                    let y: Vec<usize> = batch_idx.iter().map(|&i| labels[i]).collect();
                    cross_entropy(&pred, &y)
                }
                _ => panic!("loss kind does not match target kind"),
            };
            model.backward(&grad);
            if let Some(max_norm) = cfg.clip_norm {
                model.clip_grad_norm(max_norm);
            }
            opt.step(model);
            epoch_loss += f64::from(loss);
            batches += 1;
        }
        epoch_losses.push((epoch_loss / batches as f64) as f32);
    }

    TrainReport { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchitectureSpec, LayerSpec};

    fn reg_spec() -> ArchitectureSpec {
        ArchitectureSpec {
            name: "reg".into(),
            input_shape: vec![2],
            layers: vec![
                LayerSpec::Linear { in_dim: 2, out_dim: 8 },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: 8, out_dim: 1 },
            ],
        }
    }

    fn xor_like_data() -> (Tensor, TrainTargets) {
        // y = x0 * 0.5 - x1 * 0.25: a linearly learnable function.
        let n = 64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 8) as f32 / 8.0;
            let b = (i / 8) as f32 / 8.0;
            xs.extend_from_slice(&[a, b]);
            ys.push(0.5 * a - 0.25 * b);
        }
        (
            Tensor::from_vec([n, 2], xs),
            TrainTargets::Regression(Tensor::from_vec([n, 1], ys)),
        )
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = xor_like_data();
        let mut m = reg_spec().build(1);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            optimizer: OptimizerKind::adam(0.01),
            loss: LossKind::Mse,
            seed: 5,
            clip_norm: None,
            lr_schedule: crate::optim::LrSchedule::Constant,
        };
        let report = train_model(&mut m, &x, &y, &cfg);
        assert!(report.final_loss() < report.epoch_losses[0] * 0.5, "{:?}", report.epoch_losses);
    }

    #[test]
    fn training_is_bit_deterministic() {
        let (x, y) = xor_like_data();
        let cfg = TrainConfig::regression_default(77);
        let run = || {
            let mut m = reg_spec().build(2);
            train_model(&mut m, &x, &y, &cfg);
            m.export_params()
        };
        let p1 = run();
        let p2 = run();
        assert_eq!(p1, p2, "training must be exactly reproducible");
    }

    #[test]
    fn different_seed_changes_result() {
        let (x, y) = xor_like_data();
        let mut cfg = TrainConfig::regression_default(1);
        let mut m1 = reg_spec().build(2);
        train_model(&mut m1, &x, &y, &cfg);
        cfg.seed = 2;
        let mut m2 = reg_spec().build(2);
        train_model(&mut m2, &x, &y, &cfg);
        assert_ne!(m1.export_params(), m2.export_params());
    }

    #[test]
    fn partial_update_only_touches_trainable_layers() {
        let (x, y) = xor_like_data();
        let mut m = reg_spec().build(3);
        m.set_trainable_layers(&[1]); // freeze the first linear layer
        let before = m.export_param_dict();
        train_model(&mut m, &x, &y, &TrainConfig::regression_default(9));
        let after = m.export_param_dict();
        assert_eq!(before.layers[0], after.layers[0]);
        assert_ne!(before.layers[1], after.layers[1]);
    }

    #[test]
    fn classification_training_improves_accuracy() {
        // Two well-separated clusters in 2-D.
        let n = 64;
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let off = if c == 0 { -1.0f32 } else { 1.0 };
            xs.extend_from_slice(&[off + (i as f32 * 0.01), off - (i as f32 * 0.007)]);
            labels.push(c);
        }
        let x = Tensor::from_vec([n, 2], xs);
        let spec = ArchitectureSpec {
            name: "clf".into(),
            input_shape: vec![2],
            layers: vec![
                LayerSpec::Linear { in_dim: 2, out_dim: 8 },
                LayerSpec::Relu,
                LayerSpec::Linear { in_dim: 8, out_dim: 2 },
            ],
        };
        let mut m = spec.build(4);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            optimizer: OptimizerKind::sgd(0.1),
            loss: LossKind::CrossEntropy,
            seed: 3,
            clip_norm: None,
            lr_schedule: crate::optim::LrSchedule::Constant,
        };
        train_model(&mut m, &x, &TrainTargets::Classification(labels.clone()), &cfg);
        let pred = m.forward(&x, false);
        let correct = pred
            .argmax_rows()
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count();
        assert!(correct as f32 / n as f32 > 0.95, "accuracy {correct}/{n}");
    }

    #[test]
    #[should_panic(expected = "loss kind does not match")]
    fn mismatched_loss_and_targets_panic() {
        let (x, _) = xor_like_data();
        let mut m = reg_spec().build(1);
        let cfg = TrainConfig {
            loss: LossKind::CrossEntropy,
            ..TrainConfig::regression_default(0)
        };
        let _ = train_model(&mut m, &x, &TrainTargets::Regression(Tensor::zeros([64, 1])), &cfg);
    }

    #[test]
    fn serde_roundtrip_of_config() {
        let cfg = TrainConfig::classification_default(42);
        let s = serde_json::to_string(&cfg).unwrap();
        let back: TrainConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn config_without_clip_field_still_parses() {
        // Back-compat: provenance records persisted before clip_norm
        // existed must keep loading.
        let legacy = r#"{"epochs":2,"batch_size":8,
            "optimizer":{"Sgd":{"lr":0.1,"momentum":0.0}},
            "loss":"Mse","seed":3}"#;
        let cfg: TrainConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(cfg.clip_norm, None);
        assert_eq!(cfg.epochs, 2);
    }

    #[test]
    fn clipping_caps_the_gradient_norm() {
        let (x, y) = xor_like_data();
        // Huge targets force large gradients.
        let y_big = match y {
            TrainTargets::Regression(t) => TrainTargets::Regression(t.scale(1e4)),
            other => other,
        };
        let mut m = reg_spec().build(5);
        let x2 = x.clone();
        let pred = m.forward(&x2, true);
        let (_, g) = crate::loss::mse(&pred, match &y_big {
            TrainTargets::Regression(t) => t,
            _ => unreachable!(),
        });
        m.backward(&g);
        let before = m.grad_norm();
        assert!(before > 1.0);
        let k = m.clip_grad_norm(1.0);
        assert!(k < 1.0);
        assert!((m.grad_norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn clipped_training_is_still_deterministic() {
        let (x, y) = xor_like_data();
        let cfg = TrainConfig {
            clip_norm: Some(0.5),
            ..TrainConfig::regression_default(13)
        };
        let run = || {
            let mut m = reg_spec().build(6);
            train_model(&mut m, &x, &y, &cfg);
            m.export_params()
        };
        assert_eq!(run(), run());
    }
}
