//! The paper's evaluated model architectures, with their exact parameter
//! counts (§4.1):
//!
//! * **FFNN-48** — "four fully connected layers and a total of 4,993
//!   parameters", one of the best-performing battery electric models from
//!   the Volkswagen study the paper cites. Inputs are current,
//!   temperature, charge and state-of-charge (4 features); output is the
//!   voltage response. With hidden width 48:
//!   `(4·48+48) + (48·48+48) + (48·48+48) + (48·1+1) = 4,993`. ✓
//! * **FFNN-69** — "10,075 parameters, ... except for the number of
//!   parameters per layer, identical to FFNN-48". Hidden width 69:
//!   `2·69² + 8·69 + 1 = 10,075`. ✓
//! * **CIFAR** — "a convolutional model performing image classification on
//!   CIFAR-10 with 6,882 parameters". A LeNet-style CNN:
//!   conv(3→6,k5)=456, pool, conv(6→16,k5)=2,416, pool, flatten(400),
//!   fc(400→10)=4,010 → 6,882. ✓

use crate::spec::{ArchitectureSpec, LayerSpec};

/// Factory for the paper's model architectures.
pub struct Architectures;

impl Architectures {
    /// The default battery cell model: 4 inputs → 48/48/48 tanh hidden
    /// layers → 1 output voltage. 4,993 parameters.
    pub fn ffnn48() -> ArchitectureSpec {
        Self::ffnn(48)
    }

    /// The larger battery cell model with hidden width 69.
    /// 10,075 parameters.
    pub fn ffnn69() -> ArchitectureSpec {
        Self::ffnn(69)
    }

    /// A battery FFNN with arbitrary hidden width (used by scaling
    /// experiments beyond the paper's two sizes).
    pub fn ffnn(hidden: usize) -> ArchitectureSpec {
        assert!(hidden > 0, "hidden width must be positive");
        ArchitectureSpec {
            name: format!("FFNN-{hidden}"),
            input_shape: vec![4],
            layers: vec![
                LayerSpec::Linear { in_dim: 4, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: 1 },
            ],
        }
    }

    /// A per-user recommendation model for the intro's third scenario:
    /// 16 latent item features → 32 → 16 → 1 affinity score.
    /// 1,089 parameters — deliberately small, like per-user models are.
    pub fn recommender_mlp() -> ArchitectureSpec {
        ArchitectureSpec {
            name: "RecMLP".into(),
            input_shape: vec![16],
            layers: vec![
                LayerSpec::Linear { in_dim: 16, out_dim: 32 },
                LayerSpec::Relu,
                LayerSpec::Linear { in_dim: 32, out_dim: 16 },
                LayerSpec::Relu,
                LayerSpec::Linear { in_dim: 16, out_dim: 1 },
            ],
        }
    }

    /// The CIFAR-10 convolutional classifier. 6,882 parameters.
    pub fn cifar_cnn() -> ArchitectureSpec {
        ArchitectureSpec {
            name: "CIFAR".into(),
            input_shape: vec![3, 32, 32],
            layers: vec![
                LayerSpec::Conv2d { in_ch: 3, out_ch: 6, kernel: 5, stride: 1, pad: 0 },
                LayerSpec::Relu,
                LayerSpec::MaxPool2d { window: 2 },
                LayerSpec::Conv2d { in_ch: 6, out_ch: 16, kernel: 5, stride: 1, pad: 0 },
                LayerSpec::Relu,
                LayerSpec::MaxPool2d { window: 2 },
                LayerSpec::Flatten,
                LayerSpec::Linear { in_dim: 400, out_dim: 10 },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_tensor::Tensor;

    #[test]
    fn ffnn48_has_exactly_4993_parameters() {
        assert_eq!(Architectures::ffnn48().param_count(), 4993);
    }

    #[test]
    fn ffnn69_has_exactly_10075_parameters() {
        assert_eq!(Architectures::ffnn69().param_count(), 10_075);
    }

    #[test]
    fn cifar_has_exactly_6882_parameters() {
        assert_eq!(Architectures::cifar_cnn().param_count(), 6882);
    }

    #[test]
    fn ffnn48_has_four_parametric_layers() {
        assert_eq!(Architectures::ffnn48().parametric_layer_sizes().len(), 4);
    }

    #[test]
    fn ffnn48_forward_produces_voltage() {
        let mut m = Architectures::ffnn48().build(1);
        let x = Tensor::from_vec([2, 4], vec![0.1, 0.2, 0.3, 0.4, -0.1, -0.2, -0.3, -0.4]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 1]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cifar_forward_produces_logits() {
        let mut m = Architectures::cifar_cnn().build(1);
        let x = Tensor::zeros([1, 3, 32, 32]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn cifar_backward_runs() {
        let mut m = Architectures::cifar_cnn().build(2);
        let x = Tensor::full([1, 3, 32, 32], 0.5);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::full(y.shape().to_vec(), 1.0));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn recommender_mlp_shape_and_count() {
        let spec = Architectures::recommender_mlp();
        // (16·32+32) + (32·16+16) + (16·1+1) = 544 + 528 + 17.
        assert_eq!(spec.param_count(), 1089);
        assert_eq!(spec.infer_output_shape().unwrap(), vec![1]);
    }

    #[test]
    fn ffnn69_differs_from_48_only_in_width() {
        let a = Architectures::ffnn48();
        let b = Architectures::ffnn69();
        assert_eq!(a.layers.len(), b.layers.len());
        assert_eq!(a.input_shape, b.input_shape);
    }
}
