//! [`Model`]: a sequential container of layers with layer-granularity
//! parameter export/import and per-layer freezing for partial updates.

use crate::layer::Layer;
use crate::params::{LayerParams, ParamDict};
use crate::spec::ArchitectureSpec;
use mmm_tensor::Tensor;

/// A sequential model: the architecture spec it was built from plus the
/// instantiated layers.
pub struct Model {
    spec: ArchitectureSpec,
    layers: Vec<Box<dyn Layer>>,
    /// `trainable[i]` corresponds to the i-th *parametric* layer; frozen
    /// layers are skipped by the optimizer (partial updates, paper §2.1).
    trainable: Vec<bool>,
}

impl Model {
    /// Assemble a model from a spec and matching layer objects.
    /// Prefer [`ArchitectureSpec::build`].
    pub fn new(spec: ArchitectureSpec, layers: Vec<Box<dyn Layer>>) -> Self {
        assert_eq!(spec.layers.len(), layers.len(), "spec/layer count mismatch");
        let n_parametric = layers.iter().filter(|l| l.param_count() > 0).count();
        Model {
            spec,
            layers,
            trainable: vec![true; n_parametric],
        }
    }

    /// The architecture this model instantiates.
    pub fn spec(&self) -> &ArchitectureSpec {
        &self.spec
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Number of parametric layers.
    pub fn parametric_layer_count(&self) -> usize {
        self.trainable.len()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass; returns the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zero all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Global L2 norm of the *trainable* layers' gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0f32;
        self.visit_trainable(&mut |_, g| sq += g.sq_norm());
        sq.sqrt()
    }

    /// Clip trainable gradients to a maximum global norm. Returns the
    /// scale factor applied (1.0 = no clipping happened).
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.grad_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let k = max_norm / norm;
        // Scaling all layers (not just trainable ones) is safe: frozen
        // layers' gradients are never read by the optimizer.
        for layer in &mut self.layers {
            layer.scale_grads(k);
        }
        k
    }

    /// Mark every parametric layer trainable (full update).
    pub fn set_all_trainable(&mut self) {
        self.trainable.iter_mut().for_each(|t| *t = true);
    }

    /// Restrict training to the given parametric-layer indices (partial
    /// update). Indices refer to parametric layers in model order.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn set_trainable_layers(&mut self, indices: &[usize]) {
        self.trainable.iter_mut().for_each(|t| *t = false);
        for &i in indices {
            assert!(i < self.trainable.len(), "parametric layer index {i} out of range");
            self.trainable[i] = true;
        }
    }

    /// Trainability flags of the parametric layers.
    pub fn trainable_layers(&self) -> &[bool] {
        &self.trainable
    }

    /// Visit `(param, grad)` of every parametric layer with its
    /// parametric index and trainability — the optimizer entry point.
    pub fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        let mut pi = 0usize;
        for layer in &mut self.layers {
            if layer.param_count() == 0 {
                continue;
            }
            if self.trainable[pi] {
                layer.visit_params(f);
            }
            pi += 1;
        }
    }

    /// Snapshot all parameters at layer granularity.
    pub fn export_param_dict(&self) -> ParamDict {
        let names = self.spec.parametric_layer_names();
        let mut layers = Vec::with_capacity(names.len());
        let mut ni = 0usize;
        for layer in &self.layers {
            if layer.param_count() == 0 {
                continue;
            }
            let mut data = Vec::with_capacity(layer.param_count());
            layer.export_params(&mut data);
            layers.push(LayerParams { name: names[ni].clone(), data });
            ni += 1;
        }
        ParamDict { layers }
    }

    /// Flat snapshot of all parameters (concatenated layer order).
    pub fn export_params(&self) -> Vec<f32> {
        self.export_param_dict().concat()
    }

    /// Load a layer-granularity snapshot produced by
    /// [`Model::export_param_dict`] on a model of the same architecture.
    ///
    /// # Panics
    /// Panics on layer-count or parameter-count mismatch.
    pub fn import_param_dict(&mut self, dict: &ParamDict) {
        let mut di = 0usize;
        for layer in &mut self.layers {
            if layer.param_count() == 0 {
                continue;
            }
            assert!(
                di < dict.layers.len(),
                "param dict has fewer layers than the model"
            );
            layer.import_params(&dict.layers[di].data);
            di += 1;
        }
        assert_eq!(di, dict.layers.len(), "param dict has more layers than the model");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerSpec;

    fn spec() -> ArchitectureSpec {
        ArchitectureSpec {
            name: "tiny".into(),
            input_shape: vec![3],
            layers: vec![
                LayerSpec::Linear { in_dim: 3, out_dim: 4 },
                LayerSpec::Relu,
                LayerSpec::Linear { in_dim: 4, out_dim: 2 },
            ],
        }
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut m = spec().build(1);
        let x = Tensor::from_vec([2, 3], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let y1 = m.forward(&x, false);
        let y2 = m.forward(&x, false);
        assert_eq!(y1.shape(), &[2, 2]);
        assert_eq!(y1, y2);
    }

    #[test]
    fn export_import_roundtrip_bitexact() {
        let m1 = spec().build(1);
        let dict = m1.export_param_dict();
        assert_eq!(dict.layers.len(), 2);
        assert_eq!(dict.param_count(), m1.param_count());

        let mut m2 = spec().build(999); // different init
        assert_ne!(m1.export_params(), m2.export_params());
        m2.import_param_dict(&dict);
        assert_eq!(m1.export_params(), m2.export_params());

        // Behavioural equality, not just parameter equality.
        let x = Tensor::from_vec([1, 3], vec![1.0, -1.0, 0.5]);
        let mut m1 = m1;
        assert_eq!(m1.forward(&x, false), m2.forward(&x, false));
    }

    #[test]
    fn trainable_mask_controls_visit() {
        let mut m = spec().build(2);
        m.set_trainable_layers(&[1]); // only the second linear layer
        let mut visited = 0usize;
        m.visit_trainable(&mut |p, _| visited += p.len());
        // Second linear layer: 4*2 weights + 2 bias = 10.
        assert_eq!(visited, 10);
        m.set_all_trainable();
        let mut visited_all = 0usize;
        m.visit_trainable(&mut |p, _| visited_all += p.len());
        assert_eq!(visited_all, m.param_count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trainable_index_out_of_range_panics() {
        let mut m = spec().build(3);
        m.set_trainable_layers(&[5]);
    }

    #[test]
    fn gradients_flow_after_backward() {
        let mut m = spec().build(4);
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::full(y.shape().to_vec(), 1.0));
        assert_eq!(g.shape(), x.shape());
        let mut any_nonzero = false;
        m.visit_trainable(&mut |_, grad| any_nonzero |= grad.data().iter().any(|&v| v != 0.0));
        assert!(any_nonzero, "backward must populate gradients");
    }

    #[test]
    #[should_panic(expected = "more layers")]
    fn import_with_extra_layer_panics() {
        let mut m = spec().build(5);
        let mut dict = m.export_param_dict();
        dict.layers.push(crate::params::LayerParams { name: "extra".into(), data: vec![] });
        m.import_param_dict(&dict);
    }
}
