//! Serializable architecture descriptions.
//!
//! An [`ArchitectureSpec`] captures everything needed to rebuild a model's
//! computational structure. The multi-model savers persist one spec per
//! *set* of models instead of one per model — optimization O1 of the paper
//! (redundant model data).

use serde::{Deserialize, Serialize};

use crate::layer::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, Sigmoid, Tanh};
use crate::model::Model;
use mmm_util::{Rng, SplitMix64, Xoshiro256pp};

/// One layer of an architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected `in_dim -> out_dim`.
    Linear {
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel side length.
        kernel: usize,
        /// Stride in both dimensions.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
    },
    /// Square-window max pooling.
    MaxPool2d {
        /// Window side length (also the stride).
        window: usize,
    },
    /// Flatten trailing dims.
    Flatten,
    /// ReLU activation.
    Relu,
    /// Tanh activation.
    Tanh,
    /// Sigmoid activation.
    Sigmoid,
}

impl LayerSpec {
    /// Number of parameters this layer will have.
    pub fn param_count(&self) -> usize {
        match *self {
            LayerSpec::Linear { in_dim, out_dim } => in_dim * out_dim + out_dim,
            LayerSpec::Conv2d { in_ch, out_ch, kernel, .. } => out_ch * in_ch * kernel * kernel + out_ch,
            _ => 0,
        }
    }

    /// True if the layer has trainable parameters.
    pub fn is_parametric(&self) -> bool {
        self.param_count() > 0
    }

    fn build(&self, rng: &mut impl Rng) -> Box<dyn Layer> {
        match *self {
            LayerSpec::Linear { in_dim, out_dim } => Box::new(Linear::new(in_dim, out_dim, rng)),
            LayerSpec::Conv2d { in_ch, out_ch, kernel, stride, pad } => {
                Box::new(Conv2d::new(in_ch, out_ch, kernel, stride, pad, rng))
            }
            LayerSpec::MaxPool2d { window } => Box::new(MaxPool2d::new(window)),
            LayerSpec::Flatten => Box::new(Flatten::default()),
            LayerSpec::Relu => Box::new(Relu::default()),
            LayerSpec::Tanh => Box::new(Tanh::default()),
            LayerSpec::Sigmoid => Box::new(Sigmoid::default()),
        }
    }
}

/// A complete, serializable model architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchitectureSpec {
    /// Human-readable architecture name (e.g. "FFNN-48").
    pub name: String,
    /// Expected input shape, excluding the batch dimension.
    pub input_shape: Vec<usize>,
    /// The layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ArchitectureSpec {
    /// Total parameter count across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(LayerSpec::param_count).sum()
    }

    /// Parameter counts of the parametric layers, in order.
    pub fn parametric_layer_sizes(&self) -> Vec<usize> {
        self.layers
            .iter()
            .filter(|l| l.is_parametric())
            .map(LayerSpec::param_count)
            .collect()
    }

    /// Names of the parametric layers, in order, as persisted layer keys
    /// (e.g. `"2.linear"` — index within the full layer list plus kind).
    pub fn parametric_layer_names(&self) -> Vec<String> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_parametric())
            .map(|(i, l)| {
                let kind = match l {
                    LayerSpec::Linear { .. } => "linear",
                    LayerSpec::Conv2d { .. } => "conv2d",
                    _ => unreachable!("non-parametric layer filtered out"),
                };
                format!("{i}.{kind}")
            })
            .collect()
    }

    /// Infer the output shape (excluding the batch dimension) by
    /// propagating `input_shape` through the layers, validating every
    /// transition. Returns a description of the first inconsistency
    /// (wrong `in_dim`, non-divisible pooling, conv on flat input, ...).
    pub fn infer_output_shape(&self) -> std::result::Result<Vec<usize>, String> {
        let mut shape = self.input_shape.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            shape = match layer {
                LayerSpec::Linear { in_dim, out_dim } => {
                    if shape.len() != 1 {
                        return Err(format!(
                            "layer {i} (linear) expects a flat input, got shape {shape:?}; insert Flatten"
                        ));
                    }
                    if shape[0] != *in_dim {
                        return Err(format!(
                            "layer {i} (linear) expects in_dim {in_dim}, got {}",
                            shape[0]
                        ));
                    }
                    vec![*out_dim]
                }
                LayerSpec::Conv2d { in_ch, out_ch, kernel, stride, pad } => {
                    if shape.len() != 3 {
                        return Err(format!(
                            "layer {i} (conv2d) expects [C,H,W] input, got shape {shape:?}"
                        ));
                    }
                    if shape[0] != *in_ch {
                        return Err(format!(
                            "layer {i} (conv2d) expects {in_ch} channels, got {}",
                            shape[0]
                        ));
                    }
                    let out = |d: usize| -> std::result::Result<usize, String> {
                        let padded = d + 2 * pad;
                        if *kernel > padded {
                            Err(format!(
                                "layer {i} (conv2d) kernel {kernel} exceeds padded input {padded}"
                            ))
                        } else {
                            Ok((padded - kernel) / stride + 1)
                        }
                    };
                    vec![*out_ch, out(shape[1])?, out(shape[2])?]
                }
                LayerSpec::MaxPool2d { window } => {
                    if shape.len() != 3 {
                        return Err(format!(
                            "layer {i} (maxpool2d) expects [C,H,W] input, got shape {shape:?}"
                        ));
                    }
                    if !shape[1].is_multiple_of(*window) || !shape[2].is_multiple_of(*window) {
                        return Err(format!(
                            "layer {i} (maxpool2d) window {window} does not divide {}×{}",
                            shape[1], shape[2]
                        ));
                    }
                    vec![shape[0], shape[1] / window, shape[2] / window]
                }
                LayerSpec::Flatten => vec![shape.iter().product()],
                LayerSpec::Relu | LayerSpec::Tanh | LayerSpec::Sigmoid => shape,
            };
        }
        Ok(shape)
    }

    /// Validate the architecture's internal consistency (see
    /// [`ArchitectureSpec::infer_output_shape`]).
    pub fn validate(&self) -> std::result::Result<(), String> {
        self.infer_output_shape().map(|_| ())
    }

    /// Build a model with freshly initialized parameters.
    ///
    /// Initialization is fully determined by `seed`: each layer draws from
    /// a sub-seeded generator, so inserting a stateless layer does not
    /// shift the draws of the layers after it.
    pub fn build(&self, seed: u64) -> Model {
        let layers: Vec<Box<dyn Layer>> = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut rng = Xoshiro256pp::new(SplitMix64::derive(seed, "layer-init", i as u64));
                spec.build(&mut rng)
            })
            .collect();
        Model::new(self.clone(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ffnn(hidden: usize) -> ArchitectureSpec {
        ArchitectureSpec {
            name: format!("FFNN-{hidden}"),
            input_shape: vec![4],
            layers: vec![
                LayerSpec::Linear { in_dim: 4, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: hidden },
                LayerSpec::Tanh,
                LayerSpec::Linear { in_dim: hidden, out_dim: 1 },
            ],
        }
    }

    #[test]
    fn param_counts() {
        assert_eq!(LayerSpec::Linear { in_dim: 3, out_dim: 5 }.param_count(), 20);
        assert_eq!(
            LayerSpec::Conv2d { in_ch: 3, out_ch: 6, kernel: 5, stride: 1, pad: 0 }.param_count(),
            456
        );
        assert_eq!(LayerSpec::Relu.param_count(), 0);
        assert!(!LayerSpec::Flatten.is_parametric());
    }

    #[test]
    fn ffnn48_matches_paper_count() {
        // Paper §4.1: FFNN-48 has four fully connected layers and 4,993
        // parameters in total.
        assert_eq!(ffnn(48).param_count(), 4993);
    }

    #[test]
    fn parametric_layer_names_and_sizes() {
        let spec = ffnn(48);
        assert_eq!(spec.parametric_layer_sizes(), vec![240, 2352, 2352, 49]);
        assert_eq!(
            spec.parametric_layer_names(),
            vec!["0.linear", "2.linear", "4.linear", "6.linear"]
        );
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let spec = ffnn(8);
        let m1 = spec.build(7);
        let m2 = spec.build(7);
        let m3 = spec.build(8);
        assert_eq!(m1.export_params(), m2.export_params());
        assert_ne!(m1.export_params(), m3.export_params());
    }

    #[test]
    fn shape_inference_on_valid_architectures() {
        assert_eq!(ffnn(48).infer_output_shape().unwrap(), vec![1]);
        assert!(ffnn(48).validate().is_ok());
        let cifar = crate::architectures::Architectures::cifar_cnn();
        assert_eq!(cifar.infer_output_shape().unwrap(), vec![10]);
    }

    #[test]
    fn shape_inference_catches_wrong_in_dim() {
        let mut spec = ffnn(8);
        spec.layers[2] = LayerSpec::Linear { in_dim: 9, out_dim: 8 };
        let err = spec.validate().unwrap_err();
        assert!(err.contains("expects in_dim 9, got 8"), "{err}");
    }

    #[test]
    fn shape_inference_catches_missing_flatten() {
        let spec = ArchitectureSpec {
            name: "bad".into(),
            input_shape: vec![3, 8, 8],
            layers: vec![LayerSpec::Linear { in_dim: 192, out_dim: 10 }],
        };
        let err = spec.validate().unwrap_err();
        assert!(err.contains("insert Flatten"), "{err}");
    }

    #[test]
    fn shape_inference_catches_bad_pooling_and_channels() {
        let spec = ArchitectureSpec {
            name: "bad".into(),
            input_shape: vec![3, 9, 9],
            layers: vec![LayerSpec::MaxPool2d { window: 2 }],
        };
        assert!(spec.validate().unwrap_err().contains("does not divide"));

        let spec = ArchitectureSpec {
            name: "bad".into(),
            input_shape: vec![3, 8, 8],
            layers: vec![LayerSpec::Conv2d { in_ch: 4, out_ch: 2, kernel: 3, stride: 1, pad: 0 }],
        };
        assert!(spec.validate().unwrap_err().contains("expects 4 channels"));
    }

    #[test]
    fn serde_roundtrip() {
        let spec = ffnn(48);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ArchitectureSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
