//! Storage-backend selection: plain, content-addressed, or tiered.
//!
//! The management env owns a [`BlobStore`], which dispatches every blob
//! operation to a [`FileStore`] (the paper's layout: one file per blob),
//! a [`CasStore`] (chunk-deduplicated, cached), or a [`TieredStore`]
//! (hot/cold split for million-model chains). All backends are
//! bit-identical at the logical key→blob level, so savers and recovery
//! code are backend-agnostic; only accounting (bytes billed, simulated
//! latency) differs.

use std::path::Path;

use mmm_obs::Observer;
use mmm_util::{Result, VirtualClock};

use crate::cas::{CasConfig, CasStore};
use crate::fault::FaultInjector;
use crate::file_store::{BlobWriter, FileStore};
use crate::mmap::BlobBytes;
use crate::profile::LatencyProfile;
use crate::stats::StoreStats;
use crate::tier::TieredStore;

/// Which blob-store implementation an environment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// One file per blob, exactly the bytes the saver produced (the
    /// paper's storage layout).
    #[default]
    Plain,
    /// Content-addressed: blobs become chunk manifests, identical chunks
    /// are stored once, repeat reads hit an in-memory recovery cache.
    Cas,
    /// Hot/cold tiering: writes land on a fast hot tier, demoted chain
    /// links live on a slow "object store" tier, reads route by key.
    Tiered,
}

impl StorageBackend {
    /// Canonical lowercase name (CLI flag value, on-disk marker).
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::Plain => "plain",
            StorageBackend::Cas => "cas",
            StorageBackend::Tiered => "tiered",
        }
    }

    /// Inverse of [`StorageBackend::name`].
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "plain" => Some(StorageBackend::Plain),
            "cas" => Some(StorageBackend::Cas),
            "tiered" => Some(StorageBackend::Tiered),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A blob store that is either plain or content-addressed. Mirrors the
/// [`FileStore`] API; see [`StorageBackend`] for the semantics of each
/// variant.
// One store per environment: the size gap between the variants is
// irrelevant, and boxing would cost a pointer hop on every blob op.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BlobStore {
    /// Plain one-file-per-blob backend.
    Plain(FileStore),
    /// Content-addressed deduplicating backend.
    Cas(CasStore),
    /// Hot/cold tiered backend.
    Tiered(TieredStore),
}

impl BlobStore {
    /// Open a blob store of the chosen backend rooted at `dir`.
    ///
    /// `profile` prices the store (the *hot* tier for the tiered
    /// backend); `cold_profile` prices the tiered backend's cold tier
    /// and is ignored by the others (`None` defaults to
    /// [`LatencyProfile::object_store`]).
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        backend: StorageBackend,
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        cold_profile: Option<LatencyProfile>,
        clock: VirtualClock,
        stats: StoreStats,
        faults: FaultInjector,
        cas_config: CasConfig,
    ) -> Result<Self> {
        Ok(match backend {
            StorageBackend::Plain => BlobStore::Plain(FileStore::open_with_faults(
                dir, profile, clock, stats, faults,
            )?),
            StorageBackend::Cas => BlobStore::Cas(CasStore::open(
                dir, profile, clock, stats, faults, cas_config,
            )?),
            StorageBackend::Tiered => BlobStore::Tiered(TieredStore::open(
                dir,
                profile,
                cold_profile.unwrap_or_else(LatencyProfile::object_store),
                clock,
                stats,
                faults,
            )?),
        })
    }

    /// Which backend this store uses.
    pub fn backend(&self) -> StorageBackend {
        match self {
            BlobStore::Plain(_) => StorageBackend::Plain,
            BlobStore::Cas(_) => StorageBackend::Cas,
            BlobStore::Tiered(_) => StorageBackend::Tiered,
        }
    }

    /// The content-addressed layer, when active (dedup/cache counters,
    /// audits, orphan reclamation).
    pub fn cas(&self) -> Option<&CasStore> {
        match self {
            BlobStore::Cas(c) => Some(c),
            _ => None,
        }
    }

    /// The tiered layer, when active (demotion/promotion, per-tier
    /// stats).
    pub fn tiered(&self) -> Option<&TieredStore> {
        match self {
            BlobStore::Tiered(t) => Some(t),
            _ => None,
        }
    }

    /// Install an observer on the underlying store.
    pub fn set_observer(&mut self, obs: Observer) {
        match self {
            BlobStore::Plain(s) => s.set_observer(obs),
            BlobStore::Cas(s) => s.set_observer(obs),
            BlobStore::Tiered(s) => s.set_observer(obs),
        }
    }

    /// Write a blob (see [`FileStore::put`]).
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.put(key, bytes),
            BlobStore::Cas(s) => s.put(key, bytes),
            BlobStore::Tiered(s) => s.put(key, bytes),
        }
    }

    /// Write a blob, hinting semantic chunk boundaries (layer spans). The
    /// plain and tiered backends store the bytes as-is; the
    /// content-addressed backend cuts chunks at the boundaries so
    /// identical layers dedup.
    pub fn put_with_boundaries(&self, key: &str, bytes: &[u8], boundaries: &[usize]) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.put(key, bytes),
            BlobStore::Cas(s) => s.put_with_boundaries(key, bytes, boundaries),
            BlobStore::Tiered(s) => s.put(key, bytes),
        }
    }

    /// Open a streaming writer for a blob. The plain and tiered backends
    /// stream chunks straight to a temp file (peak memory stays at one
    /// chunk); the content-addressed backend needs the whole payload to
    /// cut and dedup chunks, so its sink buffers and lands the blob at
    /// [`BlobSink::finish`]. Either way the accounting equals one
    /// `put` of the total bytes, charged at finish.
    pub fn put_writer(&self, key: &str) -> Result<BlobSink<'_>> {
        Ok(match self {
            BlobStore::Plain(s) => BlobSink::File(s.put_writer(key)?),
            BlobStore::Cas(s) => {
                BlobSink::Buffered { store: s, key: key.to_string(), buf: Vec::new() }
            }
            BlobStore::Tiered(s) => BlobSink::Tiered { writer: s.put_writer(key)?, store: s },
        })
    }

    /// Read a whole blob (see [`FileStore::get`]).
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        match self {
            BlobStore::Plain(s) => s.get(key),
            BlobStore::Cas(s) => s.get(key),
            BlobStore::Tiered(s) => s.get(key),
        }
    }

    /// Read a whole blob as a zero-copy view where the backend supports
    /// it. Plain and tiered blobs come back memory-mapped (decode reads
    /// straight from the page cache); a content-addressed blob must be
    /// assembled from chunks, so it comes back as an owned buffer with
    /// the copies it took recorded by the underlying chunk reads.
    /// Accounting (latency, op counts, bytes read) is identical to
    /// [`BlobStore::get`] — only `bytes_copied` differs.
    pub fn get_mapped(&self, key: &str) -> Result<BlobBytes> {
        match self {
            BlobStore::Plain(s) => s.get_mapped(key),
            BlobStore::Cas(s) => Ok(BlobBytes::from_vec(s.get(key)?)),
            BlobStore::Tiered(s) => s.get_mapped(key),
        }
    }

    /// Ranged read (see [`FileStore::get_range`]).
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        match self {
            BlobStore::Plain(s) => s.get_range(key, offset, len),
            BlobStore::Cas(s) => s.get_range(key, offset, len),
            BlobStore::Tiered(s) => s.get_range(key, offset, len),
        }
    }

    /// Whether a blob exists (not charged).
    pub fn exists(&self, key: &str) -> bool {
        match self {
            BlobStore::Plain(s) => s.exists(key),
            BlobStore::Cas(s) => s.exists(key),
            BlobStore::Tiered(s) => s.exists(key),
        }
    }

    /// Logical size of a stored blob in bytes (not charged).
    pub fn size(&self, key: &str) -> Result<u64> {
        match self {
            BlobStore::Plain(s) => s.size(key),
            BlobStore::Cas(s) => s.size(key),
            BlobStore::Tiered(s) => s.size(key),
        }
    }

    /// Delete a blob; the content-addressed backend also releases and
    /// reclaims its chunks.
    pub fn delete(&self, key: &str) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.delete(key),
            BlobStore::Cas(s) => s.delete(key),
            BlobStore::Tiered(s) => s.delete(key),
        }
    }

    /// All logical keys under a prefix (sorted, not charged). The
    /// content-addressed backend hides its chunk namespace; the tiered
    /// backend merges both tiers.
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        match self {
            BlobStore::Plain(s) => s.list_keys(prefix),
            BlobStore::Cas(s) => s.list_keys(prefix),
            BlobStore::Tiered(s) => s.list_keys(prefix),
        }
    }

    /// Ground-truth disk usage of the store.
    pub fn disk_bytes(&self) -> u64 {
        match self {
            BlobStore::Plain(s) => s.disk_bytes(),
            BlobStore::Cas(s) => s.disk_bytes(),
            BlobStore::Tiered(s) => s.disk_bytes(),
        }
    }

    /// Check that a blob is structurally recoverable without reading it
    /// through the charged path: plain and tiered blobs only need to
    /// exist; a content-addressed blob additionally needs every chunk its
    /// manifest references to be present with the advertised length.
    pub fn verify_blob(&self, key: &str) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.size(key).map(|_| ()),
            BlobStore::Cas(s) => s.verify(key),
            BlobStore::Tiered(s) => s.size(key).map(|_| ()),
        }
    }

    /// The store's fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        match self {
            BlobStore::Plain(s) => s.faults(),
            BlobStore::Cas(s) => s.faults(),
            BlobStore::Tiered(s) => s.faults(),
        }
    }
}

/// A backend-agnostic streaming blob sink from [`BlobStore::put_writer`].
///
/// Write chunks with [`BlobSink::write`], then land the blob with
/// [`BlobSink::finish`]; dropping without finishing aborts (no blob, no
/// charge). Only the content-addressed variant holds the payload in
/// memory — the others keep peak memory at one chunk.
#[derive(Debug)]
pub enum BlobSink<'a> {
    /// Streams to a plain file store.
    File(BlobWriter<'a>),
    /// Streams to a tiered store's hot tier; finish mirrors the put into
    /// the per-tier stats.
    Tiered {
        /// Writer into the hot tier.
        writer: BlobWriter<'a>,
        /// Owning tiered store, for per-tier accounting at finish.
        store: &'a TieredStore,
    },
    /// Buffers for the content-addressed backend (chunking needs the
    /// whole payload).
    Buffered {
        /// Destination store.
        store: &'a CasStore,
        /// Destination key.
        key: String,
        /// Accumulated payload.
        buf: Vec<u8>,
    },
}

impl BlobSink<'_> {
    /// Append a chunk.
    pub fn write(&mut self, chunk: &[u8]) -> Result<()> {
        match self {
            BlobSink::File(w) => w.write(chunk),
            BlobSink::Tiered { writer, .. } => writer.write(chunk),
            BlobSink::Buffered { buf, .. } => {
                buf.extend_from_slice(chunk);
                Ok(())
            }
        }
    }

    /// Bytes accepted so far.
    pub fn bytes_written(&self) -> u64 {
        match self {
            BlobSink::File(w) => w.bytes_written(),
            BlobSink::Tiered { writer, .. } => writer.bytes_written(),
            BlobSink::Buffered { buf, .. } => buf.len() as u64,
        }
    }

    /// Land the blob: rename into place (streaming variants) or put the
    /// buffered payload (content-addressed). Charges one blob put of the
    /// total byte count.
    pub fn finish(self) -> Result<()> {
        match self {
            BlobSink::File(w) => w.finish(),
            BlobSink::Tiered { writer, store } => {
                let total = writer.bytes_written();
                writer.finish()?;
                store.note_streamed_put(total);
                Ok(())
            }
            BlobSink::Buffered { store, key, buf } => store.put(&key, &buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::{Error, TempDir};

    const ALL: [StorageBackend; 3] =
        [StorageBackend::Plain, StorageBackend::Cas, StorageBackend::Tiered];

    fn open_backend(backend: StorageBackend, dir: &std::path::Path) -> BlobStore {
        BlobStore::open(
            backend,
            dir,
            LatencyProfile::zero(),
            None,
            VirtualClock::new(),
            StoreStats::new(),
            FaultInjector::new(),
            CasConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn backend_names_round_trip() {
        for b in ALL {
            assert_eq!(StorageBackend::by_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(StorageBackend::by_name("mongo"), None);
        assert_eq!(StorageBackend::default(), StorageBackend::Plain);
    }

    #[test]
    fn all_backends_agree_on_logical_contents() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 13) as u8).collect();
        let mut logical = Vec::new();
        for backend in ALL {
            let dir = TempDir::new("mmm-backend").unwrap();
            let store = open_backend(backend, dir.path());
            store.put_with_boundaries("m/params.bin", &data, &[10_000, 20_000]).unwrap();
            store.put("m/meta.bin", b"meta").unwrap();
            assert_eq!(store.backend(), backend);
            assert_eq!(store.get("m/params.bin").unwrap(), data);
            assert_eq!(store.get_range("m/params.bin", 9_990, 20).unwrap(), &data[9_990..10_010]);
            assert_eq!(store.size("m/params.bin").unwrap(), data.len() as u64);
            store.verify_blob("m/params.bin").unwrap();
            assert!(matches!(store.verify_blob("nope"), Err(Error::NotFound(_))));
            logical.push(store.list_keys("").unwrap());
            store.delete("m/meta.bin").unwrap();
            assert!(!store.exists("m/meta.bin"));
        }
        assert_eq!(logical[0], logical[1], "backends expose identical key spaces");
        assert_eq!(logical[1], logical[2], "backends expose identical key spaces");
    }

    #[test]
    fn mapped_reads_match_copying_reads_on_every_backend() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        for backend in ALL {
            let dir = TempDir::new("mmm-backend").unwrap();
            let store = open_backend(backend, dir.path());
            store.put("m/params.bin", &data).unwrap();
            let view = store.get_mapped("m/params.bin").unwrap();
            assert_eq!(&*view, &data[..], "{backend}: mapped view must be bit-identical");
            // CAS must assemble; the others map on unix.
            if backend == StorageBackend::Cas {
                assert!(!view.is_mapped());
            } else if cfg!(unix) {
                assert!(view.is_mapped(), "{backend}: expected a zero-copy mapping");
            }
            assert!(matches!(store.get_mapped("absent"), Err(Error::NotFound(_))));
        }
    }

    #[test]
    fn streaming_sink_lands_identical_blobs_on_every_backend() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
        for backend in ALL {
            let dir = TempDir::new("mmm-backend").unwrap();
            let stats = StoreStats::new();
            let store = BlobStore::open(
                backend,
                dir.path(),
                LatencyProfile::zero(),
                None,
                VirtualClock::new(),
                stats.clone(),
                FaultInjector::new(),
                CasConfig::default(),
            )
            .unwrap();
            let mut sink = store.put_writer("s/blob.bin").unwrap();
            for chunk in data.chunks(7_001) {
                sink.write(chunk).unwrap();
            }
            assert_eq!(sink.bytes_written(), data.len() as u64);
            sink.finish().unwrap();
            assert_eq!(store.get("s/blob.bin").unwrap(), data, "{backend}");
            let snap = stats.snapshot();
            if backend == StorageBackend::Cas {
                // CAS charges per chunk (plus the manifest write).
                assert!(snap.blob_puts >= 1, "{backend}");
            } else {
                assert_eq!(snap.blob_puts, 1, "{backend}: one charged put at finish");
            }
            if backend == StorageBackend::Tiered {
                let t = store.tiered().unwrap();
                assert_eq!(t.tier_stats(crate::tier::StorageTier::Hot).blob_puts, 1);
            }
            // An abandoned sink leaves nothing behind.
            let mut orphan = store.put_writer("s/orphan.bin").unwrap();
            orphan.write(b"partial").unwrap();
            drop(orphan);
            assert!(!store.exists("s/orphan.bin"), "{backend}");
        }
    }
}
