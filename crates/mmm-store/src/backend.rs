//! Storage-backend selection: plain file store vs. content-addressed.
//!
//! The management env owns a [`BlobStore`], which dispatches every blob
//! operation to either a [`FileStore`] (the paper's layout: one file per
//! blob) or a [`CasStore`] (chunk-deduplicated, cached). Both backends
//! are bit-identical at the logical key→blob level, so savers and
//! recovery code are backend-agnostic; only accounting (bytes billed,
//! simulated latency) differs.

use std::path::Path;

use mmm_obs::Observer;
use mmm_util::{Result, VirtualClock};

use crate::cas::{CasConfig, CasStore};
use crate::fault::FaultInjector;
use crate::file_store::FileStore;
use crate::profile::LatencyProfile;
use crate::stats::StoreStats;

/// Which blob-store implementation an environment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// One file per blob, exactly the bytes the saver produced (the
    /// paper's storage layout).
    #[default]
    Plain,
    /// Content-addressed: blobs become chunk manifests, identical chunks
    /// are stored once, repeat reads hit an in-memory recovery cache.
    Cas,
}

impl StorageBackend {
    /// Canonical lowercase name (CLI flag value, on-disk marker).
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::Plain => "plain",
            StorageBackend::Cas => "cas",
        }
    }

    /// Inverse of [`StorageBackend::name`].
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "plain" => Some(StorageBackend::Plain),
            "cas" => Some(StorageBackend::Cas),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A blob store that is either plain or content-addressed. Mirrors the
/// [`FileStore`] API; see [`StorageBackend`] for the semantics of each
/// variant.
// One store per environment: the size gap between the variants is
// irrelevant, and boxing would cost a pointer hop on every blob op.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BlobStore {
    /// Plain one-file-per-blob backend.
    Plain(FileStore),
    /// Content-addressed deduplicating backend.
    Cas(CasStore),
}

impl BlobStore {
    /// Open a blob store of the chosen backend rooted at `dir`.
    pub fn open(
        backend: StorageBackend,
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
        faults: FaultInjector,
        cas_config: CasConfig,
    ) -> Result<Self> {
        Ok(match backend {
            StorageBackend::Plain => BlobStore::Plain(FileStore::open_with_faults(
                dir, profile, clock, stats, faults,
            )?),
            StorageBackend::Cas => BlobStore::Cas(CasStore::open(
                dir, profile, clock, stats, faults, cas_config,
            )?),
        })
    }

    /// Which backend this store uses.
    pub fn backend(&self) -> StorageBackend {
        match self {
            BlobStore::Plain(_) => StorageBackend::Plain,
            BlobStore::Cas(_) => StorageBackend::Cas,
        }
    }

    /// The content-addressed layer, when active (dedup/cache counters,
    /// audits, orphan reclamation).
    pub fn cas(&self) -> Option<&CasStore> {
        match self {
            BlobStore::Plain(_) => None,
            BlobStore::Cas(c) => Some(c),
        }
    }

    /// Install an observer on the underlying store.
    pub fn set_observer(&mut self, obs: Observer) {
        match self {
            BlobStore::Plain(s) => s.set_observer(obs),
            BlobStore::Cas(s) => s.set_observer(obs),
        }
    }

    /// Write a blob (see [`FileStore::put`]).
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.put(key, bytes),
            BlobStore::Cas(s) => s.put(key, bytes),
        }
    }

    /// Write a blob, hinting semantic chunk boundaries (layer spans). The
    /// plain backend stores the bytes as-is; the content-addressed
    /// backend cuts chunks at the boundaries so identical layers dedup.
    pub fn put_with_boundaries(&self, key: &str, bytes: &[u8], boundaries: &[usize]) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.put(key, bytes),
            BlobStore::Cas(s) => s.put_with_boundaries(key, bytes, boundaries),
        }
    }

    /// Read a whole blob (see [`FileStore::get`]).
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        match self {
            BlobStore::Plain(s) => s.get(key),
            BlobStore::Cas(s) => s.get(key),
        }
    }

    /// Ranged read (see [`FileStore::get_range`]).
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        match self {
            BlobStore::Plain(s) => s.get_range(key, offset, len),
            BlobStore::Cas(s) => s.get_range(key, offset, len),
        }
    }

    /// Whether a blob exists (not charged).
    pub fn exists(&self, key: &str) -> bool {
        match self {
            BlobStore::Plain(s) => s.exists(key),
            BlobStore::Cas(s) => s.exists(key),
        }
    }

    /// Logical size of a stored blob in bytes (not charged).
    pub fn size(&self, key: &str) -> Result<u64> {
        match self {
            BlobStore::Plain(s) => s.size(key),
            BlobStore::Cas(s) => s.size(key),
        }
    }

    /// Delete a blob; the content-addressed backend also releases and
    /// reclaims its chunks.
    pub fn delete(&self, key: &str) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.delete(key),
            BlobStore::Cas(s) => s.delete(key),
        }
    }

    /// All logical keys under a prefix (sorted, not charged). The
    /// content-addressed backend hides its chunk namespace.
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        match self {
            BlobStore::Plain(s) => s.list_keys(prefix),
            BlobStore::Cas(s) => s.list_keys(prefix),
        }
    }

    /// Ground-truth disk usage of the store.
    pub fn disk_bytes(&self) -> u64 {
        match self {
            BlobStore::Plain(s) => s.disk_bytes(),
            BlobStore::Cas(s) => s.disk_bytes(),
        }
    }

    /// Check that a blob is structurally recoverable without reading it
    /// through the charged path: plain blobs only need to exist; a
    /// content-addressed blob additionally needs every chunk its manifest
    /// references to be present with the advertised length.
    pub fn verify_blob(&self, key: &str) -> Result<()> {
        match self {
            BlobStore::Plain(s) => s.size(key).map(|_| ()),
            BlobStore::Cas(s) => s.verify(key),
        }
    }

    /// The store's fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        match self {
            BlobStore::Plain(s) => s.faults(),
            BlobStore::Cas(s) => s.faults(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::{Error, TempDir};

    #[test]
    fn backend_names_round_trip() {
        for b in [StorageBackend::Plain, StorageBackend::Cas] {
            assert_eq!(StorageBackend::by_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(StorageBackend::by_name("mongo"), None);
        assert_eq!(StorageBackend::default(), StorageBackend::Plain);
    }

    #[test]
    fn both_backends_agree_on_logical_contents() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 13) as u8).collect();
        let mut logical = Vec::new();
        for backend in [StorageBackend::Plain, StorageBackend::Cas] {
            let dir = TempDir::new("mmm-backend").unwrap();
            let store = BlobStore::open(
                backend,
                dir.path(),
                LatencyProfile::zero(),
                VirtualClock::new(),
                StoreStats::new(),
                FaultInjector::new(),
                CasConfig::default(),
            )
            .unwrap();
            store.put_with_boundaries("m/params.bin", &data, &[10_000, 20_000]).unwrap();
            store.put("m/meta.bin", b"meta").unwrap();
            assert_eq!(store.backend(), backend);
            assert_eq!(store.get("m/params.bin").unwrap(), data);
            assert_eq!(store.get_range("m/params.bin", 9_990, 20).unwrap(), &data[9_990..10_010]);
            assert_eq!(store.size("m/params.bin").unwrap(), data.len() as u64);
            store.verify_blob("m/params.bin").unwrap();
            assert!(matches!(store.verify_blob("nope"), Err(Error::NotFound(_))));
            logical.push(store.list_keys("").unwrap());
            store.delete("m/meta.bin").unwrap();
            assert!(!store.exists("m/meta.bin"));
        }
        assert_eq!(logical[0], logical[1], "backends expose identical key spaces");
    }
}
