//! Operation and byte accounting shared by the stores.
//!
//! The paper's storage-consumption metric is "the amount of storage
//! needed to save a set of models" — we measure it as the exact bytes the
//! savers hand to the stores, tracked here and cross-checked against
//! on-disk file sizes in integration tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe counters. Clone is cheap (Arc inside).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    doc_inserts: AtomicU64,
    doc_queries: AtomicU64,
    doc_deletes: AtomicU64,
    blob_puts: AtomicU64,
    blob_gets: AtomicU64,
    blob_deletes: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Document-store inserts.
    pub doc_inserts: u64,
    /// Document-store queries.
    pub doc_queries: u64,
    /// Document-store deletions.
    pub doc_deletes: u64,
    /// File-store writes.
    pub blob_puts: u64,
    /// File-store reads.
    pub blob_gets: u64,
    /// File-store deletions.
    pub blob_deletes: u64,
    /// Total payload bytes written (documents + blobs).
    pub bytes_written: u64,
    /// Total payload bytes read.
    pub bytes_read: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            doc_inserts: self.doc_inserts - rhs.doc_inserts,
            doc_queries: self.doc_queries - rhs.doc_queries,
            doc_deletes: self.doc_deletes - rhs.doc_deletes,
            blob_puts: self.blob_puts - rhs.blob_puts,
            blob_gets: self.blob_gets - rhs.blob_gets,
            blob_deletes: self.blob_deletes - rhs.blob_deletes,
            bytes_written: self.bytes_written - rhs.bytes_written,
            bytes_read: self.bytes_read - rhs.bytes_read,
        }
    }
}

impl StatsSnapshot {
    /// Total store round-trips (reads + writes + deletes).
    pub fn total_ops(&self) -> u64 {
        self.doc_inserts
            + self.doc_queries
            + self.doc_deletes
            + self.blob_puts
            + self.blob_gets
            + self.blob_deletes
    }
}

impl StoreStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_doc_insert(&self, bytes: u64) {
        self.inner.doc_inserts.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_doc_query(&self, bytes: u64) {
        self.inner.doc_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_blob_put(&self, bytes: u64) {
        self.inner.blob_puts.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_blob_get(&self, bytes: u64) {
        self.inner.blob_gets.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_doc_delete(&self, bytes: u64) {
        self.inner.doc_deletes.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_blob_delete(&self) {
        self.inner.blob_deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            doc_inserts: self.inner.doc_inserts.load(Ordering::Relaxed),
            doc_queries: self.inner.doc_queries.load(Ordering::Relaxed),
            doc_deletes: self.inner.doc_deletes.load(Ordering::Relaxed),
            blob_puts: self.inner.blob_puts.load(Ordering::Relaxed),
            blob_gets: self.inner.blob_gets.load(Ordering::Relaxed),
            blob_deletes: self.inner.blob_deletes.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = StoreStats::new();
        s.record_doc_insert(100);
        s.record_blob_put(1000);
        let a = s.snapshot();
        assert_eq!(a.doc_inserts, 1);
        assert_eq!(a.bytes_written, 1100);
        s.record_doc_query(50);
        s.record_blob_get(500);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.doc_inserts, 0);
        assert_eq!(d.doc_queries, 1);
        assert_eq!(d.bytes_read, 550);
        assert_eq!(d.total_ops(), 2);
    }

    #[test]
    fn clones_share_counters() {
        let s = StoreStats::new();
        let s2 = s.clone();
        s2.record_blob_put(7);
        assert_eq!(s.snapshot().blob_puts, 1);
    }
}
