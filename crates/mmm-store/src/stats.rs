//! Operation and byte accounting shared by the stores.
//!
//! The paper's storage-consumption metric is "the amount of storage
//! needed to save a set of models" — we measure it as the exact bytes the
//! savers hand to the stores, tracked here and cross-checked against
//! on-disk file sizes in integration tests.
//!
//! Global counters are exact sums regardless of thread count: every
//! operation is recorded once whether it ran sequentially or on a worker
//! lane. In addition, a worker thread registered via
//! [`StoreStats::enter_lane`] gets a private per-lane copy of each
//! counter, so a parallel section can report how work and bytes were
//! distributed across its lanes without perturbing the global sums.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

/// Maximum number of finished-lane snapshots kept in the history log.
const LANE_LOG_CAPACITY: usize = 4096;

/// Shared, thread-safe counters. Clone is cheap (Arc inside).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    inner: Arc<Counters>,
    /// Number of currently registered lanes; 0 ⇒ record() skips the map.
    lane_count: Arc<AtomicUsize>,
    /// Worker-thread → per-lane counters.
    lanes: Arc<Mutex<HashMap<ThreadId, Arc<Counters>>>>,
    /// Snapshots of finished lanes, newest last, capped at
    /// [`LANE_LOG_CAPACITY`] (oldest evicted). Observability reads this
    /// to report how ops/bytes were distributed across worker lanes.
    lane_log: Arc<Mutex<Vec<StatsSnapshot>>>,
}

#[derive(Debug, Default)]
struct Counters {
    doc_inserts: AtomicU64,
    doc_queries: AtomicU64,
    doc_deletes: AtomicU64,
    blob_puts: AtomicU64,
    blob_gets: AtomicU64,
    blob_deletes: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_copied: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            doc_inserts: self.doc_inserts.load(Ordering::Relaxed),
            doc_queries: self.doc_queries.load(Ordering::Relaxed),
            doc_deletes: self.doc_deletes.load(Ordering::Relaxed),
            blob_puts: self.blob_puts.load(Ordering::Relaxed),
            blob_gets: self.blob_gets.load(Ordering::Relaxed),
            blob_deletes: self.blob_deletes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Document-store inserts.
    pub doc_inserts: u64,
    /// Document-store queries.
    pub doc_queries: u64,
    /// Document-store deletions.
    pub doc_deletes: u64,
    /// File-store writes.
    pub blob_puts: u64,
    /// File-store reads.
    pub blob_gets: u64,
    /// File-store deletions.
    pub blob_deletes: u64,
    /// Total payload bytes written (documents + blobs).
    pub bytes_written: u64,
    /// Total payload bytes read.
    pub bytes_read: u64,
    /// Payload bytes that were *materialized* into heap buffers on the
    /// read path (`get`/`get_range`, CAS chunk assembly, and the owned
    /// fallback of `get_mapped`). Memory-mapped reads serve decoders
    /// straight from the page cache and add nothing here, so
    /// `bytes_copied / bytes_read` over a recovery is the
    /// copies-per-recovered-byte ratio reported by the scale bench.
    pub bytes_copied: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            doc_inserts: self.doc_inserts - rhs.doc_inserts,
            doc_queries: self.doc_queries - rhs.doc_queries,
            doc_deletes: self.doc_deletes - rhs.doc_deletes,
            blob_puts: self.blob_puts - rhs.blob_puts,
            blob_gets: self.blob_gets - rhs.blob_gets,
            blob_deletes: self.blob_deletes - rhs.blob_deletes,
            bytes_written: self.bytes_written - rhs.bytes_written,
            bytes_read: self.bytes_read - rhs.bytes_read,
            bytes_copied: self.bytes_copied - rhs.bytes_copied,
        }
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            doc_inserts: self.doc_inserts + rhs.doc_inserts,
            doc_queries: self.doc_queries + rhs.doc_queries,
            doc_deletes: self.doc_deletes + rhs.doc_deletes,
            blob_puts: self.blob_puts + rhs.blob_puts,
            blob_gets: self.blob_gets + rhs.blob_gets,
            blob_deletes: self.blob_deletes + rhs.blob_deletes,
            bytes_written: self.bytes_written + rhs.bytes_written,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_copied: self.bytes_copied + rhs.bytes_copied,
        }
    }
}

impl StatsSnapshot {
    /// Total store round-trips (reads + writes + deletes).
    pub fn total_ops(&self) -> u64 {
        self.doc_inserts
            + self.doc_queries
            + self.doc_deletes
            + self.blob_puts
            + self.blob_gets
            + self.blob_deletes
    }
}

impl StoreStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply `f` to the global counters and, if the current thread is a
    /// registered lane, to that lane's private counters too.
    fn record(&self, f: impl Fn(&Counters)) {
        f(&self.inner);
        if self.lane_count.load(Ordering::Relaxed) != 0 {
            if let Some(lane) = self.lanes.lock().get(&std::thread::current().id()) {
                f(lane);
            }
        }
    }

    pub(crate) fn record_doc_insert(&self, bytes: u64) {
        self.record(|c| {
            c.doc_inserts.fetch_add(1, Ordering::Relaxed);
            c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_doc_query(&self, bytes: u64) {
        self.record(|c| {
            c.doc_queries.fetch_add(1, Ordering::Relaxed);
            c.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_blob_put(&self, bytes: u64) {
        self.record(|c| {
            c.blob_puts.fetch_add(1, Ordering::Relaxed);
            c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_blob_get(&self, bytes: u64) {
        self.record(|c| {
            c.blob_gets.fetch_add(1, Ordering::Relaxed);
            c.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_doc_delete(&self, bytes: u64) {
        self.record(|c| {
            c.doc_deletes.fetch_add(1, Ordering::Relaxed);
            c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_bytes_copied(&self, bytes: u64) {
        self.record(|c| {
            c.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    pub(crate) fn record_blob_delete(&self) {
        self.record(|c| {
            c.blob_deletes.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Register the current thread as a parallel lane: until the guard
    /// drops, every operation recorded from this thread is *also*
    /// mirrored into the guard's private counters. Global counters keep
    /// their exact totals either way.
    pub fn enter_lane(&self) -> StatsLaneGuard {
        let counters = Arc::new(Counters::default());
        let tid = std::thread::current().id();
        // Nesting-tolerant: an inner lane shadows the outer one and the
        // guard restores it on drop, so composed instrumentation (a
        // frontend lane around a worker lane) never panics.
        let prev = self.lanes.lock().insert(tid, counters.clone());
        if prev.is_none() {
            self.lane_count.fetch_add(1, Ordering::Relaxed);
        }
        StatsLaneGuard { stats: self.clone(), tid, counters, prev }
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// Snapshots of lanes that have finished (guard dropped), oldest
    /// first. Bounded: only the most recent `LANE_LOG_CAPACITY` (4096)
    /// lanes are retained.
    pub fn lane_history(&self) -> Vec<StatsSnapshot> {
        self.lane_log.lock().clone()
    }

    /// Clear the finished-lane history (e.g. between benchmark phases).
    pub fn clear_lane_history(&self) {
        self.lane_log.lock().clear();
    }
}

impl mmm_util::parallel::WorkerHook for StoreStats {
    fn enter(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.enter_lane())
    }
}

/// Guard for a thread registered as a statistics lane; see
/// [`StoreStats::enter_lane`]. Dropping unregisters the lane.
#[derive(Debug)]
pub struct StatsLaneGuard {
    stats: StoreStats,
    tid: ThreadId,
    counters: Arc<Counters>,
    /// The lane this one shadowed (nested registration), restored on drop.
    prev: Option<Arc<Counters>>,
}

impl StatsLaneGuard {
    /// The operations recorded on this lane so far.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.counters.snapshot()
    }
}

impl Drop for StatsLaneGuard {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(outer) => {
                self.stats.lanes.lock().insert(self.tid, outer);
            }
            None => {
                self.stats.lanes.lock().remove(&self.tid);
                self.stats.lane_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let snap = self.counters.snapshot();
        let mut log = self.stats.lane_log.lock();
        if log.len() == LANE_LOG_CAPACITY {
            log.remove(0);
        }
        log.push(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = StoreStats::new();
        s.record_doc_insert(100);
        s.record_blob_put(1000);
        let a = s.snapshot();
        assert_eq!(a.doc_inserts, 1);
        assert_eq!(a.bytes_written, 1100);
        s.record_doc_query(50);
        s.record_blob_get(500);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.doc_inserts, 0);
        assert_eq!(d.doc_queries, 1);
        assert_eq!(d.bytes_read, 550);
        assert_eq!(d.total_ops(), 2);
    }

    #[test]
    fn clones_share_counters() {
        let s = StoreStats::new();
        let s2 = s.clone();
        s2.record_blob_put(7);
        assert_eq!(s.snapshot().blob_puts, 1);
    }

    #[test]
    fn lane_counters_mirror_without_perturbing_globals() {
        let s = StoreStats::new();
        s.record_blob_put(10); // before any lane exists
        let worker = s.clone();
        let lane_snap = std::thread::spawn(move || {
            let lane = worker.enter_lane();
            worker.record_blob_put(100);
            worker.record_doc_query(30);
            lane.snapshot()
        })
        .join()
        .unwrap();
        assert_eq!(lane_snap.blob_puts, 1);
        assert_eq!(lane_snap.bytes_written, 100);
        assert_eq!(lane_snap.doc_queries, 1);
        // Globals see everything: the pre-lane put plus the lane's ops.
        let g = s.snapshot();
        assert_eq!(g.blob_puts, 2);
        assert_eq!(g.bytes_written, 110);
        // After the guard dropped, this thread records globally only.
        s.record_blob_put(1);
        assert_eq!(s.snapshot().blob_puts, 3);
    }

    #[test]
    fn finished_lanes_are_logged_in_order() {
        let s = StoreStats::new();
        assert!(s.lane_history().is_empty());
        for bytes in [10u64, 20] {
            let worker = s.clone();
            std::thread::spawn(move || {
                let _lane = worker.enter_lane();
                worker.record_blob_put(bytes);
            })
            .join()
            .unwrap();
        }
        let log = s.lane_history();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].bytes_written, 10);
        assert_eq!(log[1].bytes_written, 20);
        s.clear_lane_history();
        assert!(s.lane_history().is_empty());
    }

    #[test]
    fn lanes_on_other_threads_do_not_capture_this_threads_ops() {
        let s = StoreStats::new();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = s.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let lane = worker.enter_lane();
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                assert_eq!(lane.snapshot(), StatsSnapshot::default());
            });
            ready_rx.recv().unwrap();
            s.record_doc_insert(42); // not a lane → global only
            done_tx.send(()).unwrap();
        });
        assert_eq!(s.snapshot().doc_inserts, 1);
    }

    #[test]
    fn nested_lanes_shadow_and_restore() {
        let s = StoreStats::new();
        let outer = s.enter_lane();
        s.record_doc_insert(10);
        {
            let inner = s.enter_lane();
            s.record_doc_insert(20);
            assert_eq!(inner.snapshot().doc_inserts, 1);
            assert_eq!(inner.snapshot().bytes_written, 20);
        }
        // The outer lane is active again and missed the inner op.
        s.record_doc_insert(30);
        assert_eq!(outer.snapshot().doc_inserts, 2);
        assert_eq!(outer.snapshot().bytes_written, 40);
        drop(outer);
        assert_eq!(s.snapshot().doc_inserts, 3, "global totals are exact");
        assert_eq!(s.lane_history().len(), 2);
    }
}
