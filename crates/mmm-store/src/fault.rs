//! Deterministic fault injection for the storage substrate.
//!
//! The paper's deployment story (thousands of models saved every update
//! cycle, recovered on demand) only holds if the substrate survives the
//! failures real disks and connections produce: processes dying between
//! two writes, appends torn mid-record, bits rotting in a blob, stores
//! flaking for a few round-trips. This module lets tests script exactly
//! those failures, deterministically:
//!
//! * a [`FaultPlan`] names a trigger (the `index`-th operation matching
//!   a [`FaultTarget`]) and a [`FaultMode`] (crash, torn write, bit
//!   flips, transient errors);
//! * a [`FaultInjector`] is a cheap-clone handle threaded through
//!   [`crate::FileStore`] and [`crate::DocumentStore`]; a disarmed
//!   injector only counts operations;
//! * all randomness (bit-flip positions) comes from the plan's seed via
//!   [`mmm_util::SplitMix64`], so a failing run replays bit-for-bit
//!   from the seed alone.

use std::sync::Arc;

use parking_lot::Mutex;

use mmm_util::{Error, Result, Rng, SplitMix64};

/// Store operation classes a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// [`crate::FileStore::put`].
    BlobPut,
    /// [`crate::FileStore::get`] / [`crate::FileStore::get_range`].
    BlobGet,
    /// [`crate::FileStore::delete`].
    BlobDelete,
    /// [`crate::DocumentStore::insert`].
    DocInsert,
    /// [`crate::DocumentStore::get`] / [`crate::DocumentStore::find_eq`].
    DocQuery,
    /// [`crate::DocumentStore::delete`].
    DocDelete,
}

impl OpClass {
    /// Whether operations of this class mutate the store.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OpClass::BlobPut | OpClass::BlobDelete | OpClass::DocInsert | OpClass::DocDelete
        )
    }
}

/// Which operations count toward a plan's trigger index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every store operation.
    Any,
    /// Only mutating operations ([`OpClass::is_write`]).
    Writes,
    /// Only one operation class.
    Class(OpClass),
}

impl FaultTarget {
    fn matches(self, class: OpClass) -> bool {
        match self {
            FaultTarget::Any => true,
            FaultTarget::Writes => class.is_write(),
            FaultTarget::Class(c) => c == class,
        }
    }
}

/// What happens when a plan triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails with a permanent I/O error before touching
    /// disk — the process is assumed to die here.
    Crash,
    /// A write persists only the first `keep` bytes of its payload and
    /// then fails — a crash mid-write. Operations without a payload
    /// degrade to [`FaultMode::Crash`].
    TornWrite {
        /// Payload bytes that reach disk before the failure.
        keep: usize,
    },
    /// `flips` payload bits (positions drawn from the plan's seed) are
    /// inverted and the operation reports success — silent media
    /// corruption, only discovered when the data is read back.
    BitFlip {
        /// Number of bit positions drawn (duplicate draws cancel).
        flips: usize,
    },
    /// The operation fails with [`Error::Transient`] `times` times
    /// (the triggering operation and its retries), then succeeds.
    Transient {
        /// Consecutive failures before the fault clears.
        times: u32,
    },
}

/// One planned fault: trigger at the `index`-th operation matching
/// `target`, counted per plan from the moment it is armed (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which operations count toward `index`.
    pub target: FaultTarget,
    /// 0-based rank of the matching operation that triggers the fault.
    pub index: u64,
    /// What happens at the trigger.
    pub mode: FaultMode,
    /// Seed for the mode's randomness (bit-flip positions). The same
    /// seed over the same operation stream reproduces the same damage.
    pub seed: u64,
}

impl FaultPlan {
    /// Crash the `index`-th operation matching `target`.
    pub fn crash_at(target: FaultTarget, index: u64) -> Self {
        FaultPlan { target, index, mode: FaultMode::Crash, seed: 0 }
    }

    /// Tear the `index`-th matching write after `keep` payload bytes.
    pub fn torn_write_at(target: FaultTarget, index: u64, keep: usize) -> Self {
        FaultPlan { target, index, mode: FaultMode::TornWrite { keep }, seed: 0 }
    }

    /// Flip `flips` seeded bits in the `index`-th matching payload.
    pub fn bit_flip_at(target: FaultTarget, index: u64, flips: usize, seed: u64) -> Self {
        FaultPlan { target, index, mode: FaultMode::BitFlip { flips }, seed }
    }

    /// Fail the `index`-th matching operation transiently `times` times.
    pub fn transient_at(target: FaultTarget, index: u64, times: u32) -> Self {
        FaultPlan { target, index, mode: FaultMode::Transient { times }, seed: 0 }
    }
}

/// The injector's verdict on one operation that is allowed to proceed.
/// (Crash and transient faults surface as `Err` from
/// [`FaultInjector::on_op`] instead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// Execute the operation unchanged.
    Clean,
    /// Persist only the first `keep` payload bytes, then fail the
    /// operation (the store reports the I/O error).
    Torn {
        /// Payload bytes that reach disk.
        keep: usize,
    },
    /// Apply [`flip_bits`] with this seed/count to the payload and
    /// report success.
    Flip {
        /// Seed for [`flip_bits`].
        seed: u64,
        /// Bit-position draws for [`flip_bits`].
        flips: usize,
    },
}

struct Armed {
    plan: FaultPlan,
    /// Matching operations observed since arming.
    seen: u64,
    /// Remaining failures for [`FaultMode::Transient`].
    transients_left: u32,
    done: bool,
}

#[derive(Default)]
struct State {
    armed: Vec<Armed>,
    ops: u64,
    write_ops: u64,
    /// Optional service gate (deadlines + breakers): every operation is
    /// submitted to it before fault evaluation, and its breakers are fed
    /// the operation's verdict. The injector is the one chokepoint both
    /// stores already pass every operation through, which makes it the
    /// natural mount point for mid-operation request gating.
    gate: Option<crate::gate::ServiceGate>,
}

/// Cheap-clone fault-injection handle shared by the stores of one
/// environment. The default handle is disarmed and merely counts
/// operations (one uncontended mutex acquisition per op).
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Mutex<State>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.lock();
        f.debug_struct("FaultInjector")
            .field("armed", &s.armed.len())
            .field("ops", &s.ops)
            .finish()
    }
}

impl FaultInjector {
    /// A disarmed injector (counts operations, injects nothing).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Arm a plan. Its operation counter starts at this moment, so
    /// `index` is relative to the work issued *after* arming.
    pub fn arm(&self, plan: FaultPlan) {
        self.inner.lock().armed.push(Armed {
            transients_left: match plan.mode {
                FaultMode::Transient { times } => times,
                _ => 0,
            },
            plan,
            seen: 0,
            done: false,
        });
    }

    /// Drop all armed plans (operation counters keep running).
    pub fn disarm_all(&self) {
        self.inner.lock().armed.clear();
    }

    /// Total operations observed over the injector's lifetime.
    pub fn ops_observed(&self) -> u64 {
        self.inner.lock().ops
    }

    /// Mutating operations observed over the injector's lifetime. The
    /// difference across a save is the number of injectable crash
    /// points that save exposes.
    pub fn write_ops_observed(&self) -> u64 {
        self.inner.lock().write_ops
    }

    /// Install a [`crate::gate::ServiceGate`]: from now on every
    /// operation is gated (deadline + breaker) before fault evaluation,
    /// and gated-out operations do not count toward plan indices.
    pub fn install_gate(&self, gate: crate::gate::ServiceGate) {
        self.inner.lock().gate = Some(gate);
    }

    /// The installed service gate, if any.
    pub fn gate(&self) -> Option<crate::gate::ServiceGate> {
        self.inner.lock().gate.clone()
    }

    /// Register one operation of `class` with payload size `len` and
    /// decide its fate. Crash and transient faults return `Err`; torn
    /// writes and bit flips return an effect the store must apply.
    ///
    /// When a service gate is installed, the gate rules first: an
    /// expired deadline or an open breaker rejects the operation before
    /// it counts toward any fault plan (the store never attempted it),
    /// and admitted operations report their verdict to the backend's
    /// breaker (injected crash/transient faults and torn writes count
    /// as environment failures).
    pub fn on_op(&self, class: OpClass, _len: usize) -> Result<FaultEffect> {
        let mut state = self.inner.lock();
        // The gate takes its own (leaf) locks; it never calls back into
        // the injector, so holding our lock across it cannot deadlock.
        if let Some(gate) = &state.gate {
            gate.pre_op(class)?;
        }
        state.ops += 1;
        if class.is_write() {
            state.write_ops += 1;
        }
        let mut effect = FaultEffect::Clean;
        let mut error: Option<Error> = None;
        for armed in &mut state.armed {
            if armed.done || !armed.plan.target.matches(class) {
                continue;
            }
            let rank = armed.seen;
            armed.seen += 1;
            if rank < armed.plan.index {
                continue;
            }
            match armed.plan.mode {
                // Only the exact trigger index fires for one-shot modes;
                // later matching ops run clean (the plan is done).
                FaultMode::Crash => {
                    armed.done = true;
                    if rank == armed.plan.index && error.is_none() {
                        error = Some(Error::Io(std::io::Error::other(format!(
                            "injected crash at {class:?} #{rank}"
                        ))));
                    }
                }
                FaultMode::TornWrite { keep } => {
                    armed.done = true;
                    if rank == armed.plan.index && error.is_none() {
                        if class.is_write() {
                            effect = FaultEffect::Torn { keep };
                        } else {
                            error = Some(Error::Io(std::io::Error::other(format!(
                                "injected crash at {class:?} #{rank}"
                            ))));
                        }
                    }
                }
                FaultMode::BitFlip { flips } => {
                    armed.done = true;
                    if rank == armed.plan.index && error.is_none() {
                        effect = FaultEffect::Flip { seed: armed.plan.seed, flips };
                    }
                }
                FaultMode::Transient { .. } => {
                    if armed.transients_left > 0 {
                        armed.transients_left -= 1;
                        if armed.transients_left == 0 {
                            armed.done = true;
                        }
                        if error.is_none() {
                            error = Some(Error::transient(format!(
                                "injected transient fault at {class:?} #{rank}"
                            )));
                        }
                    } else {
                        armed.done = true;
                    }
                }
            }
        }
        if let Some(gate) = &state.gate {
            // Torn writes persist partial bytes and then fail in the
            // store; for the breaker they are failures like any other
            // environment fault.
            let failed = error.is_some() || matches!(effect, FaultEffect::Torn { .. });
            gate.record_op(class, !failed);
        }
        match error {
            Some(e) => Err(e),
            None => Ok(effect),
        }
    }
}

/// Invert `flips` bits of `bytes` at positions drawn deterministically
/// from `seed`. Duplicate draws cancel each other, so use an odd count
/// when a guaranteed change is needed. No-op on an empty slice.
pub fn flip_bits(bytes: &mut [u8], seed: u64, flips: usize) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = SplitMix64::new(seed);
    for _ in 0..flips {
        let i = rng.below(bytes.len() as u64) as usize;
        let bit = rng.below(8) as u32;
        bytes[i] ^= 1u8 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_counts_and_passes_everything() {
        let inj = FaultInjector::new();
        for _ in 0..3 {
            assert_eq!(inj.on_op(OpClass::BlobPut, 10).unwrap(), FaultEffect::Clean);
            assert_eq!(inj.on_op(OpClass::DocQuery, 0).unwrap(), FaultEffect::Clean);
        }
        assert_eq!(inj.ops_observed(), 6);
        assert_eq!(inj.write_ops_observed(), 3);
    }

    #[test]
    fn crash_fires_exactly_once_at_its_index() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::crash_at(FaultTarget::Class(OpClass::BlobPut), 2));
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok()); // #0
        assert!(inj.on_op(OpClass::DocInsert, 1).is_ok()); // not counted
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok()); // #1
        assert!(matches!(inj.on_op(OpClass::BlobPut, 1), Err(Error::Io(_)))); // #2
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok(), "one-shot: later ops run clean");
    }

    #[test]
    fn writes_target_skips_reads() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::crash_at(FaultTarget::Writes, 0));
        assert!(inj.on_op(OpClass::BlobGet, 0).is_ok());
        assert!(inj.on_op(OpClass::DocQuery, 0).is_ok());
        assert!(inj.on_op(OpClass::DocInsert, 5).is_err());
    }

    #[test]
    fn torn_write_yields_effect_for_writes_and_error_for_reads() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::torn_write_at(FaultTarget::Class(OpClass::BlobPut), 0, 7));
        assert_eq!(inj.on_op(OpClass::BlobPut, 100).unwrap(), FaultEffect::Torn { keep: 7 });

        let inj = FaultInjector::new();
        inj.arm(FaultPlan::torn_write_at(FaultTarget::Class(OpClass::BlobGet), 0, 7));
        assert!(inj.on_op(OpClass::BlobGet, 0).is_err());
    }

    #[test]
    fn transient_fails_n_times_then_succeeds() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::transient_at(FaultTarget::Class(OpClass::DocInsert), 1, 2));
        assert!(inj.on_op(OpClass::DocInsert, 1).is_ok()); // #0
        assert!(matches!(inj.on_op(OpClass::DocInsert, 1), Err(Error::Transient(_)))); // #1
        assert!(matches!(inj.on_op(OpClass::DocInsert, 1), Err(Error::Transient(_)))); // retry
        assert!(inj.on_op(OpClass::DocInsert, 1).is_ok(), "fault cleared");
        assert!(inj.on_op(OpClass::DocInsert, 1).is_ok());
    }

    #[test]
    fn bit_flips_are_deterministic_in_the_seed() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        flip_bits(&mut a, 42, 3);
        flip_bits(&mut b, 42, 3);
        assert_eq!(a, b, "same seed, same damage");
        assert_ne!(a, vec![0u8; 64], "odd flip count must change the buffer");
        let mut c = vec![0u8; 64];
        flip_bits(&mut c, 43, 3);
        assert_ne!(a, c, "different seed, different damage");
        // Empty buffers are left alone.
        flip_bits(&mut [], 1, 5);
    }

    #[test]
    fn plans_count_from_arming_not_from_injector_birth() {
        let inj = FaultInjector::new();
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok());
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok());
        inj.arm(FaultPlan::crash_at(FaultTarget::Class(OpClass::BlobPut), 0));
        assert!(inj.on_op(OpClass::BlobPut, 1).is_err(), "index 0 = first op after arming");
    }

    #[test]
    fn disarm_clears_pending_plans() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::crash_at(FaultTarget::Any, 0));
        inj.disarm_all();
        assert!(inj.on_op(OpClass::BlobPut, 1).is_ok());
    }

    #[test]
    fn installed_gate_rejects_before_plans_count_and_feeds_breakers() {
        use crate::gate::{Backend, BreakerConfig, BreakerState, ServiceGate};
        use mmm_util::VirtualClock;
        use std::time::Duration;

        let inj = FaultInjector::new();
        let gate = ServiceGate::new(
            VirtualClock::new(),
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(3600),
                half_open_probes: 1,
            },
        );
        inj.install_gate(gate.clone());

        // Two injected transient faults trip the blobs breaker...
        inj.arm(FaultPlan::transient_at(FaultTarget::Class(OpClass::BlobPut), 0, 2));
        assert!(inj.on_op(OpClass::BlobPut, 1).is_err());
        assert!(inj.on_op(OpClass::BlobPut, 1).is_err());
        assert_eq!(gate.breaker(Backend::Blobs).state(), BreakerState::Open);

        // ...after which ops are rejected *before* the op counter moves
        // or any armed plan sees them.
        let ops_before = inj.ops_observed();
        inj.arm(FaultPlan::crash_at(FaultTarget::Class(OpClass::BlobPut), 0));
        let err = inj.on_op(OpClass::BlobPut, 1).unwrap_err();
        assert!(err.is_unavailable(), "breaker verdict, not the armed crash: {err}");
        assert_eq!(inj.ops_observed(), ops_before, "gated-out ops are never counted");

        // The docs backend is unaffected; its clean ops feed its breaker.
        assert!(inj.on_op(OpClass::DocInsert, 1).is_ok());
        assert_eq!(gate.breaker(Backend::Docs).state(), BreakerState::Closed);
    }
}
