//! Hot/cold storage tiering.
//!
//! At million-model scale the version *chain* dominates storage: the tip
//! is recovered constantly, but old chain links are touched only when a
//! deep re-derivation walks through them. [`TieredStore`] models that
//! split with two [`FileStore`]s under one namespace — a **hot** tier on
//! a fast profile holding recent versions, and a **cold** tier on a slow
//! "object store" profile (see [`LatencyProfile::object_store`]) holding
//! demoted chain links.
//!
//! Reads route transparently: a key is served from whichever tier holds
//! it, with the tier's own latency profile charged, so recovering a
//! demoted version *feels* the cold tier's round-trips in TTR without
//! any caller changes. Writes always land hot; [`TieredStore::demote`]
//! and [`TieredStore::promote`] migrate blobs between tiers explicitly
//! (policy lives in the management layer, mechanism here).
//!
//! Accounting: both tiers share the environment's global [`StoreStats`]
//! (measurements stay exact sums), and each tier additionally mirrors
//! its own operations into a private per-tier [`StoreStats`] exposed via
//! [`TieredStore::tier_stats`] — the per-tier read/write traffic split
//! is a first-class output of the scale bench.

use std::path::Path;

use mmm_obs::Observer;
use mmm_util::{Error, Result, VirtualClock};

use crate::fault::FaultInjector;
use crate::file_store::{BlobWriter, FileStore};
use crate::mmap::BlobBytes;
use crate::profile::LatencyProfile;
use crate::stats::{StatsSnapshot, StoreStats};

/// Which tier a blob currently lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTier {
    /// Fast profile; all writes land here.
    Hot,
    /// Slow "object store" profile; reached only by demotion.
    Cold,
}

impl StorageTier {
    /// Stable lowercase name ("hot" / "cold").
    pub fn name(self) -> &'static str {
        match self {
            StorageTier::Hot => "hot",
            StorageTier::Cold => "cold",
        }
    }
}

/// A two-tier blob store; see the module docs.
#[derive(Debug, Clone)]
pub struct TieredStore {
    hot: FileStore,
    cold: FileStore,
    hot_stats: StoreStats,
    cold_stats: StoreStats,
}

impl TieredStore {
    /// Open a tiered store under `dir` (subdirectories `hot/` and
    /// `cold/`). Both tiers share `clock`, `stats`, and `faults`, so
    /// global accounting and fault plans behave as one store.
    pub fn open(
        dir: impl AsRef<Path>,
        hot_profile: LatencyProfile,
        cold_profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
        faults: FaultInjector,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let hot = FileStore::open_with_faults(
            dir.join("hot"),
            hot_profile,
            clock.clone(),
            stats.clone(),
            faults.clone(),
        )?;
        let cold = FileStore::open_with_faults(
            dir.join("cold"),
            cold_profile,
            clock,
            stats,
            faults,
        )?;
        Ok(TieredStore { hot, cold, hot_stats: StoreStats::new(), cold_stats: StoreStats::new() })
    }

    /// Install an observer on both tiers.
    pub fn set_observer(&mut self, obs: Observer) {
        self.hot.set_observer(obs.clone());
        self.cold.set_observer(obs);
    }

    /// Which tier currently holds `key`, if any. Hot shadows cold (a
    /// blob mid-promotion may transiently exist on both).
    pub fn tier_of(&self, key: &str) -> Option<StorageTier> {
        if self.hot.exists(key) {
            Some(StorageTier::Hot)
        } else if self.cold.exists(key) {
            Some(StorageTier::Cold)
        } else {
            None
        }
    }

    fn route(&self, key: &str) -> (&FileStore, &StoreStats) {
        match self.tier_of(key) {
            Some(StorageTier::Cold) => (&self.cold, &self.cold_stats),
            // Missing keys route hot so the NotFound carries hot-tier
            // charging, like a plain store.
            _ => (&self.hot, &self.hot_stats),
        }
    }

    /// Write a blob (always to the hot tier).
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.hot.put(key, bytes)?;
        self.hot_stats.record_blob_put(bytes.len() as u64);
        Ok(())
    }

    /// Open a streaming writer (always to the hot tier). Per-tier stats
    /// record at finish time via [`TieredStore::note_streamed_put`] —
    /// the writer itself only touches the global counters.
    pub fn put_writer(&self, key: &str) -> Result<BlobWriter<'_>> {
        self.hot.put_writer(key)
    }

    /// Mirror a finished streamed put of `bytes` bytes into the hot
    /// tier's private stats (the global stats were already recorded by
    /// the writer).
    pub fn note_streamed_put(&self, bytes: u64) {
        self.hot_stats.record_blob_put(bytes);
    }

    /// Read a blob from whichever tier holds it.
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        let (store, tier_stats) = self.route(key);
        let bytes = store.get(key)?;
        tier_stats.record_blob_get(bytes.len() as u64);
        Ok(bytes)
    }

    /// Zero-copy read from whichever tier holds the blob.
    pub fn get_mapped(&self, key: &str) -> Result<BlobBytes> {
        let (store, tier_stats) = self.route(key);
        let view = store.get_mapped(key)?;
        tier_stats.record_blob_get(view.len() as u64);
        Ok(view)
    }

    /// Ranged read from whichever tier holds the blob.
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let (store, tier_stats) = self.route(key);
        let bytes = store.get_range(key, offset, len)?;
        tier_stats.record_blob_get(bytes.len() as u64);
        Ok(bytes)
    }

    /// Whether either tier holds the blob.
    pub fn exists(&self, key: &str) -> bool {
        self.hot.exists(key) || self.cold.exists(key)
    }

    /// Size of the blob on whichever tier holds it.
    pub fn size(&self, key: &str) -> Result<u64> {
        let (store, _) = self.route(key);
        store.size(key)
    }

    /// Delete the blob from whichever tier holds it.
    pub fn delete(&self, key: &str) -> Result<()> {
        let (store, tier_stats) = self.route(key);
        store.delete(key)?;
        tier_stats.record_blob_delete();
        Ok(())
    }

    /// Union of both tiers' keys under a prefix (sorted, deduplicated).
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        let mut keys = self.hot.list_keys(prefix)?;
        keys.extend(self.cold.list_keys(prefix)?);
        keys.sort();
        keys.dedup();
        Ok(keys)
    }

    /// Ground-truth disk usage across both tiers.
    pub fn disk_bytes(&self) -> u64 {
        self.hot.disk_bytes() + self.cold.disk_bytes()
    }

    /// Disk usage of one tier.
    pub fn tier_disk_bytes(&self, tier: StorageTier) -> u64 {
        match tier {
            StorageTier::Hot => self.hot.disk_bytes(),
            StorageTier::Cold => self.cold.disk_bytes(),
        }
    }

    /// Move a blob hot → cold. Charged as one cold-tier put of the
    /// blob's bytes (the cross-tier transfer the migration actually
    /// pays); the hot copy is then dropped as a local file operation,
    /// not a store round-trip. A no-op `Ok` if the key is already cold.
    pub fn demote(&self, key: &str) -> Result<()> {
        match self.tier_of(key) {
            Some(StorageTier::Cold) => Ok(()),
            None => Err(Error::not_found(format!("blob {key:?}"))),
            Some(StorageTier::Hot) => {
                let bytes = self.hot.read_local(key)?;
                self.cold.put(key, &bytes)?;
                self.cold_stats.record_blob_put(bytes.len() as u64);
                self.hot.remove_local(key)?;
                Ok(())
            }
        }
    }

    /// Move a blob cold → hot (e.g. ahead of a planned deep recovery).
    /// Charged as one cold-tier get — the transfer out of the slow tier
    /// is the dominant cost the migration pays.
    pub fn promote(&self, key: &str) -> Result<()> {
        match self.tier_of(key) {
            Some(StorageTier::Hot) => Ok(()),
            None => Err(Error::not_found(format!("blob {key:?}"))),
            Some(StorageTier::Cold) => {
                let bytes = self.cold.get(key)?;
                self.cold_stats.record_blob_get(bytes.len() as u64);
                self.hot.put_local(key, &bytes)?;
                self.cold.remove_local(key)?;
                Ok(())
            }
        }
    }

    /// Point-in-time per-tier counters (ops routed to that tier since
    /// open). Global totals live in the shared environment stats.
    pub fn tier_stats(&self, tier: StorageTier) -> StatsSnapshot {
        match tier {
            StorageTier::Hot => self.hot_stats.snapshot(),
            StorageTier::Cold => self.cold_stats.snapshot(),
        }
    }

    /// The shared fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        self.hot.faults()
    }

    /// The hot tier's underlying store (maintenance tooling).
    pub fn hot(&self) -> &FileStore {
        &self.hot
    }

    /// The cold tier's underlying store (maintenance tooling).
    pub fn cold(&self) -> &FileStore {
        &self.cold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    fn tiered() -> (TempDir, TieredStore, StoreStats, VirtualClock) {
        let dir = TempDir::new("mmm-tier").unwrap();
        let stats = StoreStats::new();
        let clock = VirtualClock::new();
        let ts = TieredStore::open(
            dir.path(),
            LatencyProfile::zero(),
            LatencyProfile::object_store(),
            clock.clone(),
            stats.clone(),
            FaultInjector::new(),
        )
        .unwrap();
        (dir, ts, stats, clock)
    }

    #[test]
    fn writes_land_hot_and_reads_route() {
        let (_d, ts, stats, _clock) = tiered();
        ts.put("a/params.bin", b"hot bytes").unwrap();
        assert_eq!(ts.tier_of("a/params.bin"), Some(StorageTier::Hot));
        assert_eq!(ts.get("a/params.bin").unwrap(), b"hot bytes");
        assert_eq!(ts.tier_stats(StorageTier::Hot).blob_gets, 1);
        assert_eq!(ts.tier_stats(StorageTier::Cold).blob_gets, 0);
        // Global stats see the same ops exactly once.
        assert_eq!(stats.snapshot().blob_puts, 1);
        assert_eq!(stats.snapshot().blob_gets, 1);
    }

    #[test]
    fn demotion_moves_bytes_and_charges_the_cold_profile() {
        let (_d, ts, _stats, clock) = tiered();
        ts.put("old/params.bin", &[7u8; 10_000]).unwrap();
        let before = clock.simulated();
        ts.demote("old/params.bin").unwrap();
        assert_eq!(ts.tier_of("old/params.bin"), Some(StorageTier::Cold));
        assert!(!ts.hot().exists("old/params.bin"));
        // The migration paid the cold tier's put cost.
        let migration = clock.simulated() - before;
        assert!(migration >= LatencyProfile::object_store().blob_put.cost(10_000));
        // Reads now come back cold — identical bytes, slower charge.
        let before = clock.simulated();
        assert_eq!(ts.get("old/params.bin").unwrap(), vec![7u8; 10_000]);
        assert!(clock.simulated() - before >= LatencyProfile::object_store().blob_get.cost(10_000));
        assert_eq!(ts.tier_stats(StorageTier::Cold).blob_gets, 1);
        // Demoting again is a no-op.
        ts.demote("old/params.bin").unwrap();
        assert_eq!(ts.tier_stats(StorageTier::Cold).blob_puts, 1);
    }

    #[test]
    fn promotion_restores_hot_latency() {
        let (_d, ts, _stats, clock) = tiered();
        ts.put("k", &[1u8; 5000]).unwrap();
        ts.demote("k").unwrap();
        ts.promote("k").unwrap();
        assert_eq!(ts.tier_of("k"), Some(StorageTier::Hot));
        let before = clock.simulated();
        assert_eq!(ts.get("k").unwrap(), vec![1u8; 5000]);
        assert_eq!(clock.simulated(), before, "hot tier is the zero profile here");
        // Promoting a hot key and moving a missing key behave sanely.
        ts.promote("k").unwrap();
        assert!(ts.demote("missing").is_err());
        assert!(ts.promote("missing").is_err());
    }

    #[test]
    fn mapped_reads_route_and_count_no_copies() {
        let (_d, ts, stats, _clock) = tiered();
        ts.put("m", &[3u8; 4096]).unwrap();
        let before = stats.snapshot();
        let view = ts.get_mapped("m").unwrap();
        assert_eq!(&*view, &[3u8; 4096][..]);
        let delta = stats.snapshot() - before;
        assert_eq!(delta.blob_gets, 1);
        assert_eq!(delta.bytes_read, 4096);
        if view.is_mapped() {
            assert_eq!(delta.bytes_copied, 0, "mapped read copies nothing");
        }
        ts.demote("m").unwrap();
        let cold_view = ts.get_mapped("m").unwrap();
        assert_eq!(&*cold_view, &[3u8; 4096][..]);
        assert_eq!(ts.tier_stats(StorageTier::Cold).blob_gets, 1);
    }

    #[test]
    fn list_and_disk_span_both_tiers() {
        let (_d, ts, _stats, _clock) = tiered();
        ts.put("x/a.bin", &[0u8; 10]).unwrap();
        ts.put("x/b.bin", &[0u8; 20]).unwrap();
        ts.demote("x/a.bin").unwrap();
        assert_eq!(ts.list_keys("x").unwrap(), vec!["x/a.bin".to_string(), "x/b.bin".to_string()]);
        assert_eq!(ts.disk_bytes(), 30);
        assert_eq!(ts.tier_disk_bytes(StorageTier::Cold), 10);
        assert_eq!(ts.tier_disk_bytes(StorageTier::Hot), 20);
        ts.delete("x/a.bin").unwrap();
        assert!(!ts.exists("x/a.bin"));
        assert_eq!(ts.tier_stats(StorageTier::Cold).blob_deletes, 1);
    }

    #[test]
    fn streamed_puts_land_hot() {
        let (_d, ts, stats, _clock) = tiered();
        let mut w = ts.put_writer("s/stream.bin").unwrap();
        w.write(&[1u8; 100]).unwrap();
        w.write(&[2u8; 50]).unwrap();
        w.finish().unwrap();
        ts.note_streamed_put(150);
        assert_eq!(ts.tier_of("s/stream.bin"), Some(StorageTier::Hot));
        assert_eq!(ts.get("s/stream.bin").unwrap().len(), 150);
        assert_eq!(stats.snapshot().bytes_written, 150);
        assert_eq!(ts.tier_stats(StorageTier::Hot).blob_puts, 1);
    }
}
