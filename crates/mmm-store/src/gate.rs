//! Service gate: per-request deadlines and per-backend circuit breakers.
//!
//! A long-running management service fans many tenants into one store.
//! Two failure amplifiers must be cut off *inside* the store, not at the
//! request boundary:
//!
//! * a request that has already blown its time budget keeps issuing
//!   round-trips (and charging simulated latency) unless every operation
//!   checks the budget — the [`ServiceGate`] holds per-thread deadlines
//!   that [`crate::FaultInjector::on_op`] consults before each store
//!   operation, so an expired request fails **mid-operation** with
//!   [`Error::DeadlineExceeded`];
//! * a faulting backend (the document store or the blob store) turns
//!   every tenant's retry loop into a backoff storm — a per-backend
//!   [`CircuitBreaker`] counts consecutive environment faults and, once
//!   open, rejects operations immediately with [`Error::Unavailable`]
//!   until a cooldown elapses on the environment's [`VirtualClock`]
//!   (hybrid real + simulated time), then lets a bounded number of
//!   half-open probes decide whether to close again.
//!
//! Both rejections are *non-retriable by design* (see the error
//! taxonomy): retrying cannot refill a deadline or close a breaker, so
//! the retry loop in the core env fails fast and the fleet frontend
//! decides what to do at the request level (shed, or serve a stale
//! version).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mmm_util::{Error, Result, VirtualClock};

use crate::fault::OpClass;

/// The two storage backends a breaker can guard. Every [`OpClass`]
/// belongs to exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The document store (metadata collections).
    Docs,
    /// The blob store (parameter/diff payloads), plain or CAS.
    Blobs,
}

impl Backend {
    /// Which backend serves operations of `class`.
    pub fn of(class: OpClass) -> Backend {
        match class {
            OpClass::BlobPut | OpClass::BlobGet | OpClass::BlobDelete => Backend::Blobs,
            OpClass::DocInsert | OpClass::DocQuery | OpClass::DocDelete => Backend::Docs,
        }
    }

    /// Stable lowercase name (metric labels, error messages).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Docs => "docs",
            Backend::Blobs => "blobs",
        }
    }
}

/// Circuit-breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every operation is admitted.
    Closed,
    /// Tripped: operations are rejected until the cooldown elapses.
    Open,
    /// Probing: a bounded number of operations are admitted; the first
    /// verdict decides between [`BreakerState::Closed`] and re-opening.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (metric labels, reports).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive environment faults (transient or I/O) that trip the
    /// breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing half-open
    /// probes, measured on the environment clock's hybrid time
    /// (real + simulated — simulated backoff charges count).
    pub cooldown: Duration,
    /// Operations admitted concurrently while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
            half_open_probes: 1,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock hybrid time when the breaker last opened.
    opened_at: Duration,
    probes_in_flight: u32,
    trips: u64,
    rejections: u64,
}

/// A closed/open/half-open circuit breaker guarding one [`Backend`].
///
/// Driven by the retry taxonomy: only environment faults (injected
/// transients and I/O failures — the errors [`Error::is_transient`]
/// classifies as retryable plus hard I/O) count toward the trip
/// threshold; caller errors (`NotFound`, `Invalid`) never trip it.
#[derive(Debug)]
pub struct CircuitBreaker {
    backend: Backend,
    config: BreakerConfig,
    clock: VirtualClock,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    fn new(backend: Backend, config: BreakerConfig, clock: VirtualClock) -> Self {
        CircuitBreaker {
            backend,
            config,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                probes_in_flight: 0,
                trips: 0,
                rejections: 0,
            }),
        }
    }

    /// Decide whether one operation may proceed. Open breakers reject
    /// with [`Error::Unavailable`] until the cooldown elapses, then
    /// flip to half-open and admit a bounded number of probes.
    pub fn admit(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                if self.clock.elapsed().saturating_sub(inner.opened_at) >= self.config.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probes_in_flight = 1;
                    Ok(())
                } else {
                    inner.rejections += 1;
                    Err(Error::unavailable(format!(
                        "{} backend circuit breaker open (cooling down)",
                        self.backend.name()
                    )))
                }
            }
            BreakerState::HalfOpen => {
                if inner.probes_in_flight < self.config.half_open_probes {
                    inner.probes_in_flight += 1;
                    Ok(())
                } else {
                    inner.rejections += 1;
                    Err(Error::unavailable(format!(
                        "{} backend circuit breaker half-open (probe in flight)",
                        self.backend.name()
                    )))
                }
            }
        }
    }

    /// Record the outcome of one admitted operation. `ok = false` means
    /// an environment fault (transient, I/O, torn write) — the only
    /// outcomes that count toward tripping.
    pub fn record(&self, ok: bool) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                if ok {
                    inner.consecutive_failures = 0;
                } else {
                    inner.consecutive_failures += 1;
                    if inner.consecutive_failures >= self.config.failure_threshold {
                        inner.state = BreakerState::Open;
                        inner.opened_at = self.clock.elapsed();
                        inner.trips += 1;
                    }
                }
            }
            BreakerState::HalfOpen => {
                inner.probes_in_flight = inner.probes_in_flight.saturating_sub(1);
                if ok {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                } else {
                    inner.state = BreakerState::Open;
                    inner.opened_at = self.clock.elapsed();
                    inner.trips += 1;
                }
            }
            // An op admitted before the trip can report after it; the
            // verdict is already in.
            BreakerState::Open => {}
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Times the breaker has transitioned to open.
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }

    /// Operations rejected while open/half-open.
    pub fn rejections(&self) -> u64 {
        self.inner.lock().rejections
    }
}

/// One thread's armed request deadline.
#[derive(Debug, Clone, Copy)]
struct ThreadDeadline {
    started_real: Instant,
    started_sim: Duration,
    budget: Duration,
}

#[derive(Debug)]
struct GateInner {
    clock: VirtualClock,
    docs: CircuitBreaker,
    blobs: CircuitBreaker,
    deadlines: Mutex<HashMap<ThreadId, ThreadDeadline>>,
    /// Fast-path skip: number of armed deadlines (mostly zero outside
    /// the fleet frontend).
    armed: AtomicUsize,
    deadline_rejections: AtomicU64,
}

/// Cheap-clone handle combining the per-backend breakers and the
/// per-thread deadline registry of one environment. Installed into the
/// environment's [`crate::FaultInjector`] so that **every** store
/// operation passes through [`ServiceGate::pre_op`] — deadline and
/// breaker enforcement happen mid-operation, deep inside a save or
/// recover, not just at the request boundary.
///
/// Deadlines are per *thread*: the fleet frontend arms one on the
/// request's thread (normally also registered as a clock lane, so the
/// simulated charge attribution is per-request). Worker threads a save
/// spawns internally are not covered — the request thread re-checks on
/// join.
#[derive(Debug, Clone)]
pub struct ServiceGate {
    inner: Arc<GateInner>,
}

impl ServiceGate {
    /// A gate over `clock` with both breakers using `config`.
    pub fn new(clock: VirtualClock, config: BreakerConfig) -> Self {
        ServiceGate {
            inner: Arc::new(GateInner {
                docs: CircuitBreaker::new(Backend::Docs, config, clock.clone()),
                blobs: CircuitBreaker::new(Backend::Blobs, config, clock.clone()),
                clock,
                deadlines: Mutex::new(HashMap::new()),
                armed: AtomicUsize::new(0),
                deadline_rejections: AtomicU64::new(0),
            }),
        }
    }

    /// The breaker guarding `backend`.
    pub fn breaker(&self, backend: Backend) -> &CircuitBreaker {
        match backend {
            Backend::Docs => &self.inner.docs,
            Backend::Blobs => &self.inner.blobs,
        }
    }

    /// Arm a deadline of `budget` for the current thread. Until the
    /// guard drops, every store operation issued from this thread fails
    /// with [`Error::DeadlineExceeded`] once the hybrid elapsed time
    /// (real + this thread's simulated charges) exceeds the budget.
    /// Nested arms stack: the inner guard restores the outer deadline.
    pub fn arm_deadline(&self, budget: Duration) -> DeadlineGuard {
        let tid = std::thread::current().id();
        let entry = ThreadDeadline {
            started_real: Instant::now(),
            started_sim: self.inner.clock.thread_simulated(),
            budget,
        };
        let prev = self.inner.deadlines.lock().insert(tid, entry);
        if prev.is_none() {
            self.inner.armed.fetch_add(1, Ordering::Relaxed);
        }
        DeadlineGuard { gate: self.clone(), tid, prev, disarmed: false }
    }

    fn spent(&self, d: &ThreadDeadline) -> Duration {
        let sim = self.inner.clock.thread_simulated().saturating_sub(d.started_sim);
        d.started_real.elapsed() + sim
    }

    /// Time left on the current thread's deadline; `None` when no
    /// deadline is armed.
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.armed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let tid = std::thread::current().id();
        let d = *self.inner.deadlines.lock().get(&tid)?;
        Some(d.budget.saturating_sub(self.spent(&d)))
    }

    /// Fail with [`Error::DeadlineExceeded`] if the current thread's
    /// armed deadline has expired. A no-op when none is armed.
    pub fn check_deadline(&self) -> Result<()> {
        if self.inner.armed.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let tid = std::thread::current().id();
        let d = match self.inner.deadlines.lock().get(&tid) {
            Some(d) => *d,
            None => return Ok(()),
        };
        let spent = self.spent(&d);
        if spent > d.budget {
            self.inner.deadline_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(Error::deadline_exceeded(format!(
                "request budget {:?} spent ({:?} elapsed)",
                d.budget, spent
            )));
        }
        Ok(())
    }

    /// The gate's verdict on one store operation, called by the fault
    /// injector before the operation touches disk or charges latency:
    /// deadline first (an expired request must stop even when the
    /// backend is healthy), then the backend's breaker.
    pub fn pre_op(&self, class: OpClass) -> Result<()> {
        self.check_deadline()?;
        self.breaker(Backend::of(class)).admit()
    }

    /// Record the outcome of one admitted operation on the backend's
    /// breaker.
    pub fn record_op(&self, class: OpClass, ok: bool) {
        self.breaker(Backend::of(class)).record(ok);
    }

    /// Operations rejected because a deadline had expired.
    pub fn deadline_rejections(&self) -> u64 {
        self.inner.deadline_rejections.load(Ordering::Relaxed)
    }
}

/// Guard for an armed per-thread deadline; dropping disarms it (and
/// restores any outer deadline it shadowed).
#[derive(Debug)]
pub struct DeadlineGuard {
    gate: ServiceGate,
    tid: ThreadId,
    prev: Option<ThreadDeadline>,
    disarmed: bool,
}

impl DeadlineGuard {
    fn disarm(&mut self) {
        if self.disarmed {
            return;
        }
        self.disarmed = true;
        let mut map = self.gate.inner.deadlines.lock();
        match self.prev.take() {
            Some(prev) => {
                map.insert(self.tid, prev);
            }
            None => {
                if map.remove(&self.tid).is_some() {
                    self.gate.inner.armed.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(cfg: BreakerConfig) -> ServiceGate {
        ServiceGate::new(VirtualClock::new(), cfg)
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_rejects() {
        let g = gate(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(3600),
            half_open_probes: 1,
        });
        let b = g.breaker(Backend::Blobs);
        for _ in 0..2 {
            b.admit().unwrap();
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.admit().unwrap();
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        let err = b.admit().unwrap_err();
        assert!(err.is_unavailable(), "open breaker rejects fast: {err}");
        assert!(!err.is_transient(), "breaker-open must not be retried");
        assert_eq!(b.rejections(), 1);
        // The docs breaker is independent.
        g.breaker(Backend::Docs).admit().unwrap();
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let g = gate(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(3600),
            half_open_probes: 1,
        });
        let b = g.breaker(Backend::Docs);
        b.record(false);
        b.record(true);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive failures never trip");
    }

    #[test]
    fn cooldown_elapses_on_simulated_time_then_probe_decides() {
        let clock = VirtualClock::new();
        let g = ServiceGate::new(
            clock.clone(),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(5),
                half_open_probes: 1,
            },
        );
        let b = g.breaker(Backend::Blobs);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err(), "cooldown not elapsed");
        // Simulated charges count toward the cooldown (hybrid time).
        clock.charge(Duration::from_secs(6));
        b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit().is_err(), "only one probe admitted");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        clock.charge(Duration::from_secs(6));
        b.admit().unwrap();
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed, "successful probe closes");
        b.admit().unwrap();
    }

    #[test]
    fn deadline_expires_on_simulated_charges() {
        let clock = VirtualClock::new();
        let g = ServiceGate::new(clock.clone(), BreakerConfig::default());
        assert!(g.check_deadline().is_ok(), "no deadline armed");
        assert_eq!(g.remaining(), None);
        let guard = g.arm_deadline(Duration::from_secs(10));
        g.check_deadline().unwrap();
        assert!(g.remaining().unwrap() > Duration::from_secs(9));
        clock.charge(Duration::from_secs(11));
        let err = g.check_deadline().unwrap_err();
        assert!(err.is_deadline_exceeded(), "got {err}");
        assert!(!err.is_transient(), "deadline-exceeded must not be retried");
        assert_eq!(g.remaining().unwrap(), Duration::ZERO);
        assert_eq!(g.deadline_rejections(), 1);
        drop(guard);
        assert!(g.check_deadline().is_ok(), "disarmed on drop");
    }

    #[test]
    fn deadlines_are_per_thread_and_nested_arms_restore() {
        let clock = VirtualClock::new();
        let g = ServiceGate::new(clock.clone(), BreakerConfig::default());
        let _outer = g.arm_deadline(Duration::from_secs(3600));
        {
            let g2 = g.clone();
            // Another thread is unaffected by this thread's deadline.
            std::thread::spawn(move || {
                assert_eq!(g2.remaining(), None);
                g2.check_deadline().unwrap();
            })
            .join()
            .unwrap();
        }
        {
            let _inner = g.arm_deadline(Duration::from_secs(1));
            clock.charge(Duration::from_secs(2));
            assert!(g.check_deadline().is_err(), "inner deadline expired");
        }
        g.check_deadline().unwrap_or_else(|e| panic!("outer deadline restored: {e}"));
    }

    #[test]
    fn pre_op_routes_classes_to_their_backend() {
        let g = gate(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
            half_open_probes: 1,
        });
        g.record_op(OpClass::BlobPut, false);
        assert!(g.pre_op(OpClass::BlobGet).is_err(), "blobs breaker open");
        g.pre_op(OpClass::DocInsert).unwrap();
        g.pre_op(OpClass::DocQuery).unwrap();
        assert_eq!(Backend::of(OpClass::DocDelete), Backend::Docs);
        assert_eq!(Backend::of(OpClass::BlobDelete), Backend::Blobs);
    }
}
