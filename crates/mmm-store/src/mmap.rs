//! Zero-copy blob views.
//!
//! [`BlobBytes`] is the unit of zero-copy recovery: a read-only view of a
//! blob's bytes that is either a plain owned `Vec<u8>` or a private
//! read-only memory mapping of the backing file. Decoders take `&[u8]`
//! either way (via `Deref`), so the copying and mapped paths are
//! *bit-identical by construction* — the only difference is whether the
//! parameter bytes flow through an intermediate heap buffer or straight
//! from the page cache.
//!
//! The mapping is hand-rolled against the platform's `mmap(2)`/`munmap(2)`
//! (std already links libc on unix; no new dependency). Anything that
//! prevents mapping — a non-unix platform, an empty file, or an `mmap`
//! failure — falls back to an owned read at the call site, so
//! [`BlobBytes`] is total: callers never need a second code path.

use std::fs::File;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    //! Minimal raw bindings for read-only private mappings.
    //!
    //! `PROT_READ`/`MAP_PRIVATE` have the values below on every unix this
    //! workspace targets (Linux, macOS, the BSDs). The `offset` parameter
    //! is declared `isize` to match the platform `off_t`/`long` width on
    //! LP64 targets; we only ever pass 0.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: isize,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory mapping of a whole file.
///
/// Safety invariants: the pointer came from a successful `mmap` of
/// `len > 0` bytes with `PROT_READ | MAP_PRIVATE`, is never written
/// through, and is unmapped exactly once on drop. `MAP_PRIVATE` makes
/// later writes to the file invisible to the mapping (copy-on-write
/// semantics), and the store's own writes are atomic rename-overs which
/// never mutate the mapped inode in place — so the view is stable for
/// its lifetime.
#[cfg(unix)]
#[derive(Debug)]
struct Mapping {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

// Read-only private mapping: no interior mutability, safe to share and
// send across threads (the parallel decode path slices it from workers).
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl Mapping {
    /// Map `len` bytes of `file` read-only, or `None` if the kernel
    /// refuses (callers fall back to an owned read).
    fn map(file: &File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None; // zero-length mmap is EINVAL
        }
        let ptr = unsafe {
            sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd(), 0)
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return None;
        }
        Some(Mapping { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[derive(Debug)]
enum Repr {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped(Mapping),
}

/// A read-only view of a blob's bytes: either an owned buffer or a
/// memory-mapped file. Derefs to `&[u8]`, so decoders are agnostic.
#[derive(Debug)]
pub struct BlobBytes {
    repr: Repr,
}

impl BlobBytes {
    /// Wrap an owned buffer (the copying path, and the universal
    /// fallback for platforms or files that cannot be mapped).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        BlobBytes { repr: Repr::Owned(bytes) }
    }

    /// Try to map `len` bytes of `file`; `None` means the caller should
    /// read the file into memory instead. Always `None` off unix and for
    /// empty files.
    pub fn map_file(file: &File, len: usize) -> Option<Self> {
        #[cfg(unix)]
        {
            Mapping::map(file, len).map(|m| BlobBytes { repr: Repr::Mapped(m) })
        }
        #[cfg(not(unix))]
        {
            let _ = (file, len);
            None
        }
    }

    /// Whether this view is a memory mapping (as opposed to an owned
    /// copy). Drives the store's bytes-copied accounting and lets tests
    /// pin that the zero-copy path actually engaged.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Owned(_) => false,
            #[cfg(unix)]
            Repr::Mapped(_) => true,
        }
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(v) => v,
            #[cfg(unix)]
            Repr::Mapped(m) => m.as_slice(),
        }
    }
}

impl Deref for BlobBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BlobBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_view_derefs() {
        let v = BlobBytes::from_vec(vec![1, 2, 3]);
        assert!(!v.is_mapped());
        assert_eq!(&*v, &[1, 2, 3]);
        assert_eq!(v.as_ref(), &[1, 2, 3]);
    }

    #[cfg(unix)]
    #[test]
    fn mapped_view_matches_file_contents() {
        let dir = mmm_util::TempDir::new("mmm-mmap").unwrap();
        let path = dir.path().join("blob.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let view = BlobBytes::map_file(&file, payload.len()).expect("mmap of a real file");
        assert!(view.is_mapped());
        assert_eq!(&*view, &payload[..]);
    }

    #[cfg(unix)]
    #[test]
    fn empty_file_is_not_mappable() {
        let dir = mmm_util::TempDir::new("mmm-mmap").unwrap();
        let path = dir.path().join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(BlobBytes::map_file(&file, 0).is_none());
    }

    #[cfg(unix)]
    #[test]
    fn mapped_view_is_shareable_across_threads() {
        let dir = mmm_util::TempDir::new("mmm-mmap").unwrap();
        let path = dir.path().join("blob.bin");
        let payload = vec![7u8; 4096];
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let view = BlobBytes::map_file(&file, payload.len()).unwrap();
        std::thread::scope(|s| {
            for chunk in view.chunks(1024) {
                s.spawn(move || assert!(chunk.iter().all(|&b| b == 7)));
            }
        });
    }
}
