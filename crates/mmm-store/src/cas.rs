//! Content-addressed blob store with chunk-level deduplication, refcount
//! GC, and an LRU recovery cache.
//!
//! Motivated by NeurStore-style tensor deduplication: the paper's Update
//! approach exploits redundancy only between a model and its immediate
//! base version, while a content-addressed store deduplicates identical
//! layers across *all* models, sets, and versions at once.
//!
//! # Layout
//!
//! A logical blob `key` is stored as a small **manifest** file at `key`
//! itself, listing chunk digests, while chunk payloads live under
//! `cas/chunks/<hash>-<len>.bin`. Chunk identity is the pair
//! (xxhash64 of the bytes, byte length); the length component guards the
//! non-cryptographic hash against accidental collisions between blobs of
//! different sizes. Callers pass *semantic* chunk boundaries (per-layer
//! parameter spans) via [`CasStore::put_with_boundaries`] so identical
//! layers become identical chunks regardless of their position in the
//! enclosing blob; boundary-less puts fall back to fixed-size chunking.
//!
//! # Accounting
//!
//! A deduplicated chunk costs no store round-trip: only *new* chunk
//! payloads and the manifest are written through the charged
//! [`FileStore`] path. Storage consumption as measured by
//! [`crate::stats::StoreStats`] therefore drops exactly by the bytes that
//! dedup avoided writing. Symmetrically, a recovery-cache hit serves
//! chunk bytes from memory with **zero** simulated latency, which is what
//! makes warm `recover_models` runs measurably faster on the virtual
//! clock.
//!
//! # Crash consistency
//!
//! The manifest write is the commit point of a put: chunks are written
//! first, so a crash can only leak *unreferenced* chunks (plus in-memory
//! refcount drift that dies with the process). Leaked chunks are found by
//! [`CasStore::audit`] and reclaimed by [`CasStore::reclaim_orphans`];
//! they never corrupt live blobs. The in-memory refcount index is rebuilt
//! from the manifests on every [`CasStore::open`], so it never has to be
//! persisted atomically.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use mmm_obs::Observer;
use mmm_util::{codec, xxhash64, Error, Result, VirtualClock};

use crate::fault::FaultInjector;
use crate::file_store::FileStore;
use crate::profile::LatencyProfile;
use crate::stats::StoreStats;

use parking_lot::Mutex;

/// Reserved key namespace for chunk payloads (and any future CAS
/// bookkeeping). Logical blob keys must not start with this prefix.
pub const CAS_PREFIX: &str = "cas/";

/// Directory prefix under which chunk payloads are stored.
const CHUNK_PREFIX: &str = "cas/chunks/";

/// Manifest magic bytes ("MMCS" = mmm content store).
const MANIFEST_MAGIC: [u8; 4] = *b"MMCS";

/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// Default maximum chunk size for boundary-less puts, and the cap applied
/// to caller-supplied spans. 64 KiB keeps manifests small while still
/// splitting multi-megabyte parameter buffers into reusable pieces.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Default recovery-cache budget (64 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Identity of one stored chunk: content digest plus exact length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ChunkId {
    hash: u64,
    len: u32,
}

impl ChunkId {
    fn of(data: &[u8]) -> Self {
        ChunkId { hash: xxhash64(data, 0), len: data.len() as u32 }
    }

    /// The blob key the chunk payload is stored under.
    fn key(&self) -> String {
        format!("{CHUNK_PREFIX}{:016x}-{:08x}.bin", self.hash, self.len)
    }

    /// Inverse of [`ChunkId::key`]; `None` for foreign keys.
    fn parse_key(key: &str) -> Option<ChunkId> {
        let name = key.strip_prefix(CHUNK_PREFIX)?.strip_suffix(".bin")?;
        let (h, l) = name.split_once('-')?;
        Some(ChunkId {
            hash: u64::from_str_radix(h, 16).ok()?,
            len: u32::from_str_radix(l, 16).ok()?,
        })
    }
}

/// Tuning knobs for a [`CasStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasConfig {
    /// Maximum chunk size in bytes; spans larger than this are split.
    pub chunk_size: usize,
    /// Recovery-cache byte budget; `0` disables caching entirely.
    pub cache_bytes: u64,
}

impl Default for CasConfig {
    fn default() -> Self {
        CasConfig { chunk_size: DEFAULT_CHUNK_SIZE, cache_bytes: DEFAULT_CACHE_BYTES }
    }
}

/// Monotone counters describing dedup and cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasCounters {
    /// Chunk payloads actually written to the underlying store.
    pub chunk_puts: u64,
    /// Bytes of chunk payloads actually written.
    pub chunk_put_bytes: u64,
    /// Chunks deduplicated on put (refcount bumped, no write).
    pub dedup_hits: u64,
    /// Bytes that deduplication avoided writing.
    pub dedup_bytes: u64,
    /// Chunk reads served from the recovery cache.
    pub cache_hits: u64,
    /// Bytes served from the recovery cache.
    pub cache_hit_bytes: u64,
    /// Chunk reads that missed the cache and hit the store.
    pub cache_misses: u64,
}

#[derive(Debug, Default)]
struct AtomicCounters {
    chunk_puts: AtomicU64,
    chunk_put_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_hit_bytes: AtomicU64,
    cache_misses: AtomicU64,
}

/// One cached chunk payload with its LRU stamp.
#[derive(Debug)]
struct CacheEntry {
    bytes: Vec<u8>,
    stamp: u64,
}

/// Mutable CAS bookkeeping: refcount index plus the LRU cache. One mutex
/// guards both so a put's check-then-write on a chunk is atomic with
/// respect to concurrent puts of the same content from parallel lanes.
#[derive(Debug, Default)]
struct CasState {
    /// Live references per chunk, as implied by the stored manifests.
    refs: HashMap<ChunkId, u32>,
    /// Recovery cache: chunk → payload, LRU-evicted by byte budget.
    cache: HashMap<ChunkId, CacheEntry>,
    cache_used: u64,
    tick: u64,
}

impl CasState {
    fn cache_insert(&mut self, id: ChunkId, bytes: Vec<u8>, budget: u64) {
        let len = bytes.len() as u64;
        if len == 0 || len > budget || self.cache.contains_key(&id) {
            return;
        }
        while self.cache_used + len > budget {
            // Evict the least-recently-used entry (linear scan: the cache
            // holds at most budget/len entries and eviction is rare
            // relative to hits).
            let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            if let Some(e) = self.cache.remove(&victim) {
                self.cache_used -= e.bytes.len() as u64;
            }
        }
        self.cache_used += len;
        self.tick += 1;
        let stamp = self.tick;
        self.cache.insert(id, CacheEntry { bytes, stamp });
    }

    fn cache_remove(&mut self, id: &ChunkId) {
        if let Some(e) = self.cache.remove(id) {
            self.cache_used -= e.bytes.len() as u64;
        }
    }
}

/// Result of a [`CasStore::audit`]: how the on-disk chunk population
/// relates to what the manifests reference.
#[derive(Debug, Clone, Default)]
pub struct CasAudit {
    /// Logical blobs (manifests) scanned.
    pub manifests: usize,
    /// Distinct chunks referenced by at least one manifest.
    pub referenced_chunks: usize,
    /// Chunk keys present on disk but referenced by no manifest
    /// (crash-leaked or left by interrupted GC) — safe to reclaim.
    pub orphan_chunks: Vec<String>,
    /// Chunks whose stored bytes no longer match their digest or length,
    /// with the logical blob keys that reference them.
    pub corrupt_chunks: Vec<(String, Vec<String>)>,
    /// Chunks referenced by a manifest but missing on disk, with the
    /// logical blob keys that reference them.
    pub missing_chunks: Vec<(String, Vec<String>)>,
    /// Entries where the in-memory refcount disagreed with the manifests
    /// (e.g. drift from a failed put); the index is resynced by the audit.
    pub refcount_drift: usize,
}

impl CasAudit {
    /// Whether the chunk store is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.orphan_chunks.is_empty()
            && self.corrupt_chunks.is_empty()
            && self.missing_chunks.is_empty()
            && self.refcount_drift == 0
    }
}

/// A content-addressed blob store layered over a [`FileStore`].
///
/// Presents the same logical key→blob API as [`FileStore`] (put / get /
/// ranged get / delete / list), but stores blobs as chunk manifests so
/// identical content is written and billed once. See the module docs for
/// the layout, accounting, and crash-consistency model.
#[derive(Debug)]
pub struct CasStore {
    inner: FileStore,
    profile: LatencyProfile,
    config: CasConfig,
    state: Mutex<CasState>,
    counters: AtomicCounters,
    obs: Observer,
}

impl CasStore {
    /// Open (creating if needed) a content-addressed store rooted at
    /// `dir`, rebuilding the refcount index from the stored manifests.
    pub fn open(
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
        faults: FaultInjector,
        config: CasConfig,
    ) -> Result<Self> {
        let inner = FileStore::open_with_faults(dir, profile, clock, stats, faults)?;
        let store = CasStore {
            inner,
            profile,
            config,
            state: Mutex::new(CasState::default()),
            counters: AtomicCounters::default(),
            obs: Observer::disabled(),
        };
        let refs = store.refs_from_manifests()?;
        store.state.lock().refs = refs;
        Ok(store)
    }

    /// Install an observer mirroring dedup/cache activity into metrics.
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs.clone();
        self.inner.set_observer(obs);
    }

    /// The store's fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        self.inner.faults()
    }

    /// The store's tuning knobs.
    pub fn config(&self) -> CasConfig {
        self.config
    }

    /// Snapshot of the dedup/cache counters.
    pub fn counters(&self) -> CasCounters {
        CasCounters {
            chunk_puts: self.counters.chunk_puts.load(Ordering::Relaxed),
            chunk_put_bytes: self.counters.chunk_put_bytes.load(Ordering::Relaxed),
            dedup_hits: self.counters.dedup_hits.load(Ordering::Relaxed),
            dedup_bytes: self.counters.dedup_bytes.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_hit_bytes: self.counters.cache_hit_bytes.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently held by the recovery cache.
    pub fn cache_used_bytes(&self) -> u64 {
        self.state.lock().cache_used
    }

    /// Store a blob with fixed-size chunking. See
    /// [`CasStore::put_with_boundaries`] for the boundary-aware form.
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.put_with_boundaries(key, bytes, &[])
    }

    /// Store a blob, chunking at the given byte offsets (typically layer
    /// boundaries so identical layers dedup across blobs). Boundaries
    /// outside `(0, len)` are ignored; spans larger than the configured
    /// chunk size are further split. Overwrites release the previous
    /// version's chunk references.
    pub fn put_with_boundaries(&self, key: &str, bytes: &[u8], boundaries: &[usize]) -> Result<()> {
        if key.starts_with(CAS_PREFIX) {
            return Err(Error::invalid(format!(
                "blob key {key:?} collides with the reserved {CAS_PREFIX:?} namespace"
            )));
        }
        // Chunks a previous version of this key referenced, to release
        // after the new manifest lands.
        let old_ids = match self.inner.read_local(key) {
            Ok(m) => decode_manifest(&m).map(|(_, ids)| ids).ok(),
            Err(_) => None,
        };
        let spans = chunk_spans(bytes.len(), boundaries, self.config.chunk_size);
        let ids = self.store_chunks(bytes, &spans)?;
        let manifest = encode_manifest(bytes.len() as u64, &ids);
        if let Err(e) = self.inner.put(key, &manifest) {
            // The manifest never landed: drop the references we took.
            // Chunk files written for them may survive as orphans; audit
            // reclaims those.
            let mut st = self.state.lock();
            for id in &ids {
                if let Some(r) = st.refs.get_mut(id) {
                    *r = r.saturating_sub(1);
                    if *r == 0 {
                        st.refs.remove(id);
                    }
                }
            }
            return Err(e);
        }
        if let Some(old) = old_ids {
            self.release_chunks(&old)?;
        }
        Ok(())
    }

    /// Write (or dedup) every chunk of a put, returning the chunk ids in
    /// order. Holds the state lock across the whole loop so concurrent
    /// puts of identical content from parallel lanes cannot race the
    /// exists-check against each other's in-flight writes.
    fn store_chunks(&self, bytes: &[u8], spans: &[(usize, usize)]) -> Result<Vec<ChunkId>> {
        let mut ids = Vec::with_capacity(spans.len());
        let mut st = self.state.lock();
        for &(start, end) in spans {
            let data = &bytes[start..end];
            let id = ChunkId::of(data);
            let entry = st.refs.entry(id).or_insert(0);
            if *entry > 0 || self.inner.exists(&id.key()) {
                // Dedup hit (or adoption of an orphan already on disk):
                // no store round-trip, no bytes billed.
                *entry += 1;
                self.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
                self.counters.dedup_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                self.obs.inc("mmm_cas_dedup_hits_total", 1);
                self.obs.inc("mmm_cas_dedup_bytes_total", data.len() as u64);
            } else {
                if let Err(e) = self.inner.put(&id.key(), data) {
                    st.refs.remove(&id);
                    // Release references taken so far; the caller's put
                    // failed as a whole.
                    for taken in &ids {
                        if let Some(r) = st.refs.get_mut(taken) {
                            *r = r.saturating_sub(1);
                            if *r == 0 {
                                st.refs.remove(taken);
                            }
                        }
                    }
                    return Err(e);
                }
                *st.refs.entry(id).or_insert(0) += 1;
                self.counters.chunk_puts.fetch_add(1, Ordering::Relaxed);
                self.counters.chunk_put_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                self.obs.inc("mmm_cas_puts_total", 1);
                self.obs.inc("mmm_cas_put_bytes_total", data.len() as u64);
            }
            ids.push(id);
        }
        Ok(ids)
    }

    /// Drop one reference per listed chunk, deleting payloads whose count
    /// reaches zero. Missing payload files are tolerated (already
    /// reclaimed or never landed).
    fn release_chunks(&self, ids: &[ChunkId]) -> Result<()> {
        for id in ids {
            let reclaim = {
                let mut st = self.state.lock();
                match st.refs.get_mut(id) {
                    Some(r) => {
                        *r = r.saturating_sub(1);
                        if *r == 0 {
                            st.refs.remove(id);
                            st.cache_remove(id);
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            };
            if reclaim {
                match self.inner.delete(&id.key()) {
                    Ok(()) | Err(Error::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Read a whole blob, assembling it from (possibly cached) chunks.
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        let manifest = self.inner.get(key)?;
        let (total, ids) = decode_manifest(&manifest)
            .map_err(|_| Error::corrupt(format!("blob {key:?} has a corrupt CAS manifest")))?;
        let mut out = Vec::with_capacity(total as usize);
        for id in &ids {
            out.extend_from_slice(&self.chunk_bytes(id, key)?);
        }
        if out.len() as u64 != total {
            return Err(Error::corrupt(format!(
                "blob {key:?}: chunks sum to {} bytes, manifest says {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Ranged read: fetches only the chunks covering
    /// `[offset, offset+len)`, through the cache.
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let manifest = self.inner.get(key)?;
        let (total, ids) = decode_manifest(&manifest)
            .map_err(|_| Error::corrupt(format!("blob {key:?} has a corrupt CAS manifest")))?;
        let end = offset.checked_add(len as u64).ok_or_else(|| {
            Error::invalid(format!("range {offset}+{len} overflows for blob {key:?}"))
        })?;
        if end > total {
            return Err(Error::invalid(format!(
                "range {offset}+{len} exceeds blob {key:?} of {total} bytes"
            )));
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = 0u64;
        for id in &ids {
            let c_start = pos;
            let c_end = pos + id.len as u64;
            pos = c_end;
            if c_end <= offset {
                continue;
            }
            if c_start >= end {
                break;
            }
            let bytes = self.chunk_bytes(id, key)?;
            let lo = offset.saturating_sub(c_start) as usize;
            let hi = (end.min(c_end) - c_start) as usize;
            out.extend_from_slice(&bytes[lo..hi]);
        }
        Ok(out)
    }

    /// Fetch one chunk, preferring the recovery cache. A hit serves the
    /// bytes with zero simulated latency and records the round-trip cost
    /// it avoided; a miss reads through the charged store path and
    /// populates the cache.
    fn chunk_bytes(&self, id: &ChunkId, owner: &str) -> Result<Vec<u8>> {
        {
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            if let Some(e) = st.cache.get_mut(id) {
                e.stamp = tick;
                let bytes = e.bytes.clone();
                drop(st);
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.counters.cache_hit_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                let saved = self.profile.blob_get.cost(bytes.len() as u64);
                self.obs.cache_hit(bytes.len() as u64, saved);
                return Ok(bytes);
            }
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let bytes = self.inner.get(&id.key()).map_err(|e| match e {
            Error::NotFound(_) => {
                Error::corrupt(format!("blob {owner:?}: missing chunk {}", id.key()))
            }
            other => other,
        })?;
        if bytes.len() != id.len as usize {
            return Err(Error::corrupt(format!(
                "blob {owner:?}: chunk {} is {} bytes, expected {}",
                id.key(),
                bytes.len(),
                id.len
            )));
        }
        self.state.lock().cache_insert(*id, bytes.clone(), self.config.cache_bytes);
        Ok(bytes)
    }

    /// Whether a logical blob exists (not charged).
    pub fn exists(&self, key: &str) -> bool {
        self.inner.exists(key)
    }

    /// Logical size of a stored blob in bytes (not charged — manifest
    /// metadata, like [`FileStore::size`]).
    pub fn size(&self, key: &str) -> Result<u64> {
        let manifest = self
            .inner
            .read_local(key)
            .map_err(|_| Error::not_found(format!("blob {key:?}")))?;
        let (total, _) = decode_manifest(&manifest)
            .map_err(|_| Error::corrupt(format!("blob {key:?} has a corrupt CAS manifest")))?;
        Ok(total)
    }

    /// Delete a logical blob: removes its manifest (one charged delete)
    /// and releases its chunk references, reclaiming payloads that reach
    /// refcount zero.
    pub fn delete(&self, key: &str) -> Result<()> {
        if key.starts_with(CAS_PREFIX) {
            // Maintenance path (fsck repair of an orphan chunk): delete
            // the chunk file directly and drop any index entry.
            self.inner.delete(key)?;
            if let Some(id) = ChunkId::parse_key(key) {
                let mut st = self.state.lock();
                st.refs.remove(&id);
                st.cache_remove(&id);
            }
            return Ok(());
        }
        let ids = match self.inner.read_local(key) {
            Ok(m) => decode_manifest(&m).map(|(_, ids)| ids).unwrap_or_default(),
            Err(_) => Vec::new(), // missing → let inner.delete report NotFound
        };
        self.inner.delete(key)?;
        self.release_chunks(&ids)
    }

    /// All logical keys under a prefix (chunk payloads are filtered out).
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .inner
            .list_keys(prefix)?
            .into_iter()
            .filter(|k| !k.starts_with(CAS_PREFIX))
            .collect())
    }

    /// Ground-truth disk usage: manifests plus deduplicated chunk
    /// payloads.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.disk_bytes()
    }

    /// Verify that a logical blob is structurally recoverable: its
    /// manifest parses and every referenced chunk payload exists with the
    /// advertised length (not charged — maintenance path used by fsck).
    pub fn verify(&self, key: &str) -> Result<()> {
        let manifest = self
            .inner
            .read_local(key)
            .map_err(|_| Error::not_found(format!("blob {key:?}")))?;
        let (_, ids) = decode_manifest(&manifest)
            .map_err(|_| Error::corrupt(format!("blob {key:?} has a corrupt CAS manifest")))?;
        for id in &ids {
            let size = self
                .inner
                .size(&id.key())
                .map_err(|_| Error::corrupt(format!("blob {key:?}: missing chunk {}", id.key())))?;
            if size != id.len as u64 {
                return Err(Error::corrupt(format!(
                    "blob {key:?}: chunk {} is {size} bytes, expected {}",
                    id.key(),
                    id.len
                )));
            }
        }
        Ok(())
    }

    /// Recompute the chunk refcounts implied by every stored manifest
    /// (uncharged local reads).
    fn refs_from_manifests(&self) -> Result<HashMap<ChunkId, u32>> {
        let mut refs: HashMap<ChunkId, u32> = HashMap::new();
        for key in self.list_keys("")? {
            let Ok(bytes) = self.inner.read_local(&key) else { continue };
            if let Ok((_, ids)) = decode_manifest(&bytes) {
                for id in ids {
                    *refs.entry(id).or_insert(0) += 1;
                }
            }
        }
        Ok(refs)
    }

    /// Cross-check manifests, the refcount index, and the on-disk chunk
    /// population; resyncs the in-memory index to the manifests. Entirely
    /// uncharged (maintenance path).
    pub fn audit(&self) -> Result<CasAudit> {
        let mut report = CasAudit::default();
        // Who references which chunk, straight from the manifests.
        let mut owners: HashMap<ChunkId, Vec<String>> = HashMap::new();
        for key in self.list_keys("")? {
            let Ok(bytes) = self.inner.read_local(&key) else { continue };
            if let Ok((_, ids)) = decode_manifest(&bytes) {
                report.manifests += 1;
                for id in ids {
                    owners.entry(id).or_default().push(key.clone());
                }
            }
        }
        report.referenced_chunks = owners.len();
        let mut refs: HashMap<ChunkId, u32> = HashMap::new();
        for (id, who) in &owners {
            refs.insert(*id, who.len() as u32);
        }
        // Compare the on-disk population against the references.
        let mut on_disk = HashSet::new();
        for key in self.inner.list_keys(CHUNK_PREFIX)? {
            let Some(id) = ChunkId::parse_key(&key) else {
                report.orphan_chunks.push(key);
                continue;
            };
            on_disk.insert(id);
            match owners.get(&id) {
                None => report.orphan_chunks.push(key),
                Some(who) => {
                    let bytes = self.inner.read_local(&key)?;
                    if ChunkId::of(&bytes) != id {
                        report.corrupt_chunks.push((key, who.clone()));
                    }
                }
            }
        }
        for (id, who) in &owners {
            if !on_disk.contains(id) {
                report.missing_chunks.push((id.key(), who.clone()));
            }
        }
        report.orphan_chunks.sort();
        report.corrupt_chunks.sort();
        report.missing_chunks.sort();
        // Resync the live index, counting how far it had drifted.
        let mut st = self.state.lock();
        let mut drift = 0usize;
        for (id, n) in &refs {
            if st.refs.get(id).copied().unwrap_or(0) != *n {
                drift += 1;
            }
        }
        for id in st.refs.keys() {
            if !refs.contains_key(id) {
                drift += 1;
            }
        }
        report.refcount_drift = drift;
        st.refs = refs;
        Ok(report)
    }

    /// Delete every chunk payload no manifest references. Returns the
    /// number of chunks and payload bytes reclaimed.
    pub fn reclaim_orphans(&self) -> Result<(usize, u64)> {
        let audit = self.audit()?;
        let mut count = 0usize;
        let mut bytes = 0u64;
        for key in &audit.orphan_chunks {
            let size = self.inner.size(key).unwrap_or(0);
            match self.inner.delete(key) {
                Ok(()) => {
                    count += 1;
                    bytes += size;
                    if let Some(id) = ChunkId::parse_key(key) {
                        let mut st = self.state.lock();
                        st.refs.remove(&id);
                        st.cache_remove(&id);
                    }
                }
                Err(Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((count, bytes))
    }
}

/// Split `[0, len)` into chunk spans: cuts at each caller boundary inside
/// `(0, len)`, then caps every span at `max` bytes.
fn chunk_spans(len: usize, boundaries: &[usize], max: usize) -> Vec<(usize, usize)> {
    let max = max.max(1);
    let mut cuts: Vec<usize> = boundaries.iter().copied().filter(|&b| b > 0 && b < len).collect();
    cuts.push(0);
    cuts.push(len);
    cuts.sort_unstable();
    cuts.dedup();
    let mut spans = Vec::new();
    for w in cuts.windows(2) {
        let (mut start, end) = (w[0], w[1]);
        while end - start > max {
            spans.push((start, start + max));
            start += max;
        }
        if start < end {
            spans.push((start, end));
        }
    }
    spans
}

/// Encode a manifest: magic, version, logical length, chunk list.
fn encode_manifest(total: u64, ids: &[ChunkId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(20 + 12 * ids.len());
    buf.extend_from_slice(&MANIFEST_MAGIC);
    codec::put_u32(&mut buf, MANIFEST_VERSION);
    codec::put_u64(&mut buf, total);
    codec::put_u32(&mut buf, ids.len() as u32);
    for id in ids {
        codec::put_u64(&mut buf, id.hash);
        codec::put_u32(&mut buf, id.len);
    }
    buf
}

/// Decode a manifest; errors on anything that is not a well-formed
/// version-1 manifest whose chunk lengths sum to the logical length.
fn decode_manifest(bytes: &[u8]) -> Result<(u64, Vec<ChunkId>)> {
    let mut r = codec::Reader::new(bytes);
    if r.bytes(4)? != MANIFEST_MAGIC {
        return Err(Error::corrupt("bad CAS manifest magic"));
    }
    let version = r.u32()?;
    if version != MANIFEST_VERSION {
        return Err(Error::corrupt(format!("unsupported CAS manifest version {version}")));
    }
    let total = r.u64()?;
    let n = r.u32()? as usize;
    if r.remaining() != 12 * n {
        return Err(Error::corrupt("CAS manifest length mismatch"));
    }
    let mut ids = Vec::with_capacity(n);
    let mut sum = 0u64;
    for _ in 0..n {
        let hash = r.u64()?;
        let len = r.u32()?;
        sum += len as u64;
        ids.push(ChunkId { hash, len });
    }
    if sum != total {
        return Err(Error::corrupt("CAS manifest chunk lengths do not sum to total"));
    }
    Ok((total, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    fn open(dir: &Path, config: CasConfig) -> CasStore {
        CasStore::open(
            dir,
            LatencyProfile::zero(),
            VirtualClock::new(),
            StoreStats::new(),
            FaultInjector::new(),
            config,
        )
        .unwrap()
    }

    fn store(config: CasConfig) -> (TempDir, CasStore) {
        let dir = TempDir::new("mmm-cas").unwrap();
        let cas = open(dir.path(), config);
        (dir, cas)
    }

    #[test]
    fn chunk_spans_respect_boundaries_and_cap() {
        assert_eq!(chunk_spans(10, &[], 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_spans(10, &[3, 7], 100), vec![(0, 3), (3, 7), (7, 10)]);
        assert_eq!(chunk_spans(10, &[0, 10, 99], 100), vec![(0, 10)]);
        assert_eq!(chunk_spans(0, &[], 4), Vec::<(usize, usize)>::new());
        // Boundaries and the cap compose.
        assert_eq!(chunk_spans(10, &[5], 3), vec![(0, 3), (3, 5), (5, 8), (8, 10)]);
    }

    #[test]
    fn roundtrip_and_logical_listing() {
        let (_d, cas) = store(CasConfig::default());
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        cas.put("a/params.bin", &data).unwrap();
        assert_eq!(cas.get("a/params.bin").unwrap(), data);
        assert_eq!(cas.size("a/params.bin").unwrap(), data.len() as u64);
        assert!(cas.exists("a/params.bin"));
        assert_eq!(cas.list_keys("").unwrap(), vec!["a/params.bin".to_string()]);
        assert!(matches!(cas.get("missing"), Err(Error::NotFound(_))));
        assert!(matches!(cas.size("missing"), Err(Error::NotFound(_))));
    }

    #[test]
    fn identical_blobs_share_chunks() {
        let (_d, cas) = store(CasConfig::default());
        let data = vec![7u8; 50_000];
        cas.put("one.bin", &data).unwrap();
        let before = cas.counters();
        cas.put("two.bin", &data).unwrap();
        let after = cas.counters();
        assert_eq!(after.chunk_puts, before.chunk_puts, "second copy wrote no chunks");
        assert_eq!(after.dedup_bytes - before.dedup_bytes, data.len() as u64);
        assert_eq!(cas.get("two.bin").unwrap(), data);
        // Deleting one copy keeps the shared chunks alive.
        cas.delete("one.bin").unwrap();
        assert_eq!(cas.get("two.bin").unwrap(), data);
        cas.delete("two.bin").unwrap();
        assert!(cas.inner.list_keys(CHUNK_PREFIX).unwrap().is_empty(), "chunks reclaimed");
    }

    #[test]
    fn boundary_chunking_dedups_shared_layers() {
        let (_d, cas) = store(CasConfig::default());
        let layer_a = vec![1u8; 1000];
        let layer_b = vec![2u8; 1000];
        let layer_c = vec![3u8; 1000];
        let blob1: Vec<u8> = [layer_a.clone(), layer_b.clone()].concat();
        let blob2: Vec<u8> = [layer_a.clone(), layer_c.clone()].concat();
        cas.put_with_boundaries("m1", &blob1, &[1000]).unwrap();
        let before = cas.counters();
        cas.put_with_boundaries("m2", &blob2, &[1000]).unwrap();
        let after = cas.counters();
        assert_eq!(after.chunk_puts - before.chunk_puts, 1, "only layer_c is new");
        assert_eq!(after.dedup_bytes - before.dedup_bytes, 1000);
        assert_eq!(cas.get("m2").unwrap(), blob2);
    }

    #[test]
    fn overwrite_releases_old_chunks() {
        let (_d, cas) = store(CasConfig::default());
        cas.put("k", &vec![1u8; 5000]).unwrap();
        cas.put("k", &vec![2u8; 5000]).unwrap();
        assert_eq!(cas.get("k").unwrap(), vec![2u8; 5000]);
        assert_eq!(cas.inner.list_keys(CHUNK_PREFIX).unwrap().len(), 1, "old chunk reclaimed");
        let audit = cas.audit().unwrap();
        assert!(audit.is_clean(), "{audit:?}");
    }

    #[test]
    fn ranged_reads_match_file_store_semantics() {
        let (_d, cas) = store(CasConfig { chunk_size: 64, ..CasConfig::default() });
        let data: Vec<u8> = (0..=255).collect();
        cas.put("blob", &data).unwrap();
        assert_eq!(cas.get_range("blob", 0, 4).unwrap(), &data[..4]);
        assert_eq!(cas.get_range("blob", 100, 50).unwrap(), &data[100..150]);
        assert_eq!(cas.get_range("blob", 252, 4).unwrap(), &data[252..]);
        assert_eq!(cas.get_range("blob", 10, 0).unwrap(), Vec::<u8>::new());
        assert!(matches!(cas.get_range("blob", 250, 10), Err(Error::Invalid(_))));
        assert!(matches!(cas.get_range("blob", u64::MAX, 2), Err(Error::Invalid(_))));
        assert!(matches!(cas.get_range("missing", 0, 1), Err(Error::NotFound(_))));
    }

    #[test]
    fn cache_serves_repeat_reads_and_tracks_bytes() {
        let (_d, cas) = store(CasConfig { chunk_size: 1024, cache_bytes: 1 << 20 });
        // Distinct content per chunk, so a cold read can't hit the
        // cache via intra-blob dedup.
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        cas.put("k", &data).unwrap();
        assert_eq!(cas.counters().cache_hits, 0);
        let _ = cas.get("k").unwrap(); // cold: misses populate the cache
        let cold = cas.counters();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.cache_misses > 0);
        let _ = cas.get("k").unwrap(); // warm: all chunks cached
        let warm = cas.counters();
        assert_eq!(warm.cache_misses, cold.cache_misses);
        assert_eq!(warm.cache_hit_bytes, data.len() as u64);
        assert!(cas.cache_used_bytes() >= data.len() as u64);
    }

    #[test]
    fn cache_hits_charge_no_simulated_latency() {
        let dir = TempDir::new("mmm-cas").unwrap();
        let clock = VirtualClock::new();
        let cas = CasStore::open(
            dir.path(),
            LatencyProfile::m1(),
            clock.clone(),
            StoreStats::new(),
            FaultInjector::new(),
            CasConfig { chunk_size: 1024, cache_bytes: 1 << 20 },
        )
        .unwrap();
        cas.put("k", &vec![5u8; 8192]).unwrap();
        let _ = cas.get("k").unwrap();
        let cold = clock.simulated();
        let _ = cas.get("k").unwrap();
        let warm = clock.simulated();
        // The warm read still pays for the manifest get, but not for the
        // chunk payloads.
        let manifest_only = LatencyProfile::m1().blob_get.cost(cas.inner.size("k").unwrap());
        assert!(
            warm - cold <= manifest_only + std::time::Duration::from_micros(1),
            "warm read cost {:?} exceeds manifest-only cost {:?}",
            warm - cold,
            manifest_only
        );
    }

    #[test]
    fn cache_respects_byte_budget_with_lru_eviction() {
        let (_d, cas) = store(CasConfig { chunk_size: 1000, cache_bytes: 2500 });
        for (k, fill) in [("a", 1u8), ("b", 2), ("c", 3)] {
            cas.put(k, &vec![fill; 1000]).unwrap();
        }
        let _ = cas.get("a").unwrap();
        let _ = cas.get("b").unwrap();
        assert_eq!(cas.cache_used_bytes(), 2000);
        let _ = cas.get("c").unwrap(); // evicts "a", the LRU entry
        assert!(cas.cache_used_bytes() <= 2500);
        let before = cas.counters();
        let _ = cas.get("b").unwrap(); // still cached
        assert_eq!(cas.counters().cache_misses, before.cache_misses);
        let _ = cas.get("a").unwrap(); // was evicted → miss
        assert!(cas.counters().cache_misses > before.cache_misses);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let (_d, cas) = store(CasConfig { chunk_size: 1024, cache_bytes: 0 });
        cas.put("k", &vec![1u8; 4096]).unwrap();
        let _ = cas.get("k").unwrap();
        let _ = cas.get("k").unwrap();
        assert_eq!(cas.counters().cache_hits, 0);
        assert_eq!(cas.cache_used_bytes(), 0);
    }

    #[test]
    fn dedup_survives_reopen() {
        let dir = TempDir::new("mmm-cas").unwrap();
        let data = vec![4u8; 20_000];
        {
            let cas = open(dir.path(), CasConfig::default());
            cas.put("first", &data).unwrap();
        }
        let cas = open(dir.path(), CasConfig::default());
        let before = cas.counters();
        cas.put("second", &data).unwrap();
        assert_eq!(cas.counters().chunk_puts, before.chunk_puts, "index rebuilt on open");
        // Deleting one keeps the chunks for the other.
        cas.delete("first").unwrap();
        assert_eq!(cas.get("second").unwrap(), data);
        let audit = cas.audit().unwrap();
        assert!(audit.is_clean(), "{audit:?}");
    }

    #[test]
    fn logical_keys_may_not_enter_the_cas_namespace() {
        let (_d, cas) = store(CasConfig::default());
        assert!(matches!(cas.put("cas/evil", b"x"), Err(Error::Invalid(_))));
    }

    #[test]
    fn audit_finds_orphans_and_reclaim_removes_them() {
        let (_d, cas) = store(CasConfig::default());
        cas.put("live", &vec![1u8; 3000]).unwrap();
        // Simulate a crash-leaked chunk: a payload no manifest references.
        let leaked = ChunkId::of(b"leaked payload");
        cas.inner.put(&leaked.key(), b"leaked payload").unwrap();
        let audit = cas.audit().unwrap();
        assert_eq!(audit.orphan_chunks, vec![leaked.key()]);
        assert!(audit.corrupt_chunks.is_empty());
        let (n, bytes) = cas.reclaim_orphans().unwrap();
        assert_eq!((n, bytes), (1, b"leaked payload".len() as u64));
        assert!(cas.audit().unwrap().is_clean());
        assert_eq!(cas.get("live").unwrap(), vec![1u8; 3000]);
    }

    #[test]
    fn audit_reports_corrupt_and_missing_chunks_with_owners() {
        let (_d, cas) = store(CasConfig { chunk_size: 1000, ..CasConfig::default() });
        cas.put("victim", &vec![1u8; 1000]).unwrap();
        cas.put("other", &vec![2u8; 1000]).unwrap();
        let victim_chunk = ChunkId::of(&vec![1u8; 1000]);
        // Corrupt the payload behind the manifest's back.
        cas.inner.put(&victim_chunk.key(), &vec![9u8; 1000]).unwrap();
        let audit = cas.audit().unwrap();
        assert_eq!(audit.corrupt_chunks.len(), 1);
        assert_eq!(audit.corrupt_chunks[0].1, vec!["victim".to_string()]);
        assert!(cas.verify("other").is_ok());
        // Now remove it entirely → missing, and verify flags the blob.
        cas.inner.delete(&victim_chunk.key()).unwrap();
        let audit = cas.audit().unwrap();
        assert_eq!(audit.missing_chunks.len(), 1);
        assert_eq!(audit.missing_chunks[0].1, vec!["victim".to_string()]);
        assert!(matches!(cas.verify("victim"), Err(Error::Corrupt(_))));
        assert!(matches!(cas.get("victim"), Err(Error::Corrupt(_))));
    }

    #[test]
    fn dedup_reduces_billed_bytes() {
        let dir = TempDir::new("mmm-cas").unwrap();
        let stats = StoreStats::new();
        let cas = CasStore::open(
            dir.path(),
            LatencyProfile::zero(),
            VirtualClock::new(),
            stats.clone(),
            FaultInjector::new(),
            CasConfig::default(),
        )
        .unwrap();
        let data = vec![3u8; 40_000];
        cas.put("a", &data).unwrap();
        let first = stats.snapshot().bytes_written;
        cas.put("b", &data).unwrap();
        let second = stats.snapshot().bytes_written - first;
        assert!(
            second < data.len() as u64 / 100,
            "dedup'd put billed {second} bytes for a {} byte blob",
            data.len()
        );
    }

    #[test]
    fn concurrent_identical_puts_keep_consistent_refcounts() {
        let (_d, cas) = store(CasConfig::default());
        let data = vec![0u8; 10_000];
        std::thread::scope(|s| {
            for i in 0..4 {
                let cas = &cas;
                let data = &data;
                s.spawn(move || {
                    cas.put(&format!("copy-{i}"), data).unwrap();
                });
            }
        });
        let audit = cas.audit().unwrap();
        assert!(audit.is_clean(), "{audit:?}");
        for i in 0..4 {
            assert_eq!(cas.get(&format!("copy-{i}")).unwrap(), data);
        }
    }
}
