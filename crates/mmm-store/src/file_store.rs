//! Key→blob file store with atomic writes, latency charging, and
//! byte accounting.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mmm_obs::{EventLevel, Observer};
use mmm_util::{Error, Result, VirtualClock};

use crate::fault::{flip_bits, FaultEffect, FaultInjector, OpClass};
use crate::profile::LatencyProfile;
use crate::stats::StoreStats;

/// Prefix of in-flight temp files. Each write gets a process-unique
/// name so concurrent puts never collide, and a crash can only leak a
/// file with this prefix — swept away on the next [`FileStore::open`].
const TMP_PREFIX: &str = ".mmm-tmp.";

/// Process-wide sequence for temp-file uniqueness.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A blob store backed by a directory tree. Keys may contain `/` to form
/// sub-namespaces (e.g. `"set-3/params.bin"`).
#[derive(Debug, Clone)]
pub struct FileStore {
    root: PathBuf,
    clock: VirtualClock,
    profile: LatencyProfile,
    stats: StoreStats,
    faults: FaultInjector,
    /// Observability sink; disabled (a no-op) unless installed via
    /// [`FileStore::set_observer`]. Never affects stored bytes, stats,
    /// or clock charges — it only mirrors them into metrics.
    obs: Observer,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
    ) -> Result<Self> {
        Self::open_with_faults(dir, profile, clock, stats, FaultInjector::new())
    }

    /// Open a store with a fault-injection handle (tests of the
    /// crash-recovery protocol; a disarmed injector is free).
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
        faults: FaultInjector,
    ) -> Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        sweep_stale_temps(&root)?;
        Ok(FileStore { root, clock, profile, stats, faults, obs: Observer::disabled() })
    }

    /// Install an observer that mirrors op latencies, payload sizes, and
    /// fault activations into metrics. Purely additive: the store's
    /// behaviour, accounting, and stored bytes are unchanged.
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Run the fault gate for one operation, counting any activation
    /// (damage effect or injected error) in the observer's metrics.
    fn fault_gate(&self, class: OpClass, op: &'static str, bytes: usize) -> Result<FaultEffect> {
        match self.faults.on_op(class, bytes) {
            Ok(FaultEffect::Clean) => Ok(FaultEffect::Clean),
            Ok(effect) => {
                self.obs.inc(&format!("mmm_fault_activations_total{{op=\"{op}\"}}"), 1);
                self.obs
                    .event(EventLevel::Warn, || format!("fault injected during {op}: {effect:?}"));
                Ok(effect)
            }
            Err(e) => {
                self.obs.inc(&format!("mmm_fault_activations_total{{op=\"{op}\"}}"), 1);
                self.obs.event(EventLevel::Warn, || format!("fault injected during {op}: {e}"));
                Err(e)
            }
        }
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() || key.contains("..") || key.starts_with('/') {
            return Err(Error::invalid(format!("illegal blob key {key:?}")));
        }
        Ok(self.root.join(key))
    }

    /// Write a blob. Overwrites an existing blob under the same key.
    /// Charged as one `blob_put` round-trip plus transfer cost.
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename with a per-write unique temp name: a crash
        // never leaves a torn blob, concurrent puts to keys sharing a
        // stem (`a.bin` vs `a.txt`) never collide, and a leaked temp is
        // recognizable by prefix and swept on the next open.
        let tmp = tmp_path(&path)?;
        match self.fault_gate(OpClass::BlobPut, "blob_put", bytes.len())? {
            FaultEffect::Clean => {
                fs::write(&tmp, bytes)?;
                fs::rename(&tmp, &path)?;
            }
            FaultEffect::Torn { keep } => {
                // Crash mid-write: part of the payload reaches the temp
                // file, the rename never happens, the caller dies.
                fs::write(&tmp, &bytes[..keep.min(bytes.len())])?;
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected torn write to blob {key:?}"
                ))));
            }
            FaultEffect::Flip { seed, flips } => {
                let mut corrupted = bytes.to_vec();
                flip_bits(&mut corrupted, seed, flips);
                fs::write(&tmp, &corrupted)?;
                fs::rename(&tmp, &path)?;
            }
        }
        let cost = self.profile.blob_put.cost(bytes.len() as u64);
        self.stats.record_blob_put(bytes.len() as u64);
        self.clock.charge(cost);
        self.obs.store_op("blob_put", bytes.len() as u64, cost);
        Ok(())
    }

    /// Read a blob. Charged as one `blob_get` round-trip plus transfer.
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        let effect = self.fault_gate(OpClass::BlobGet, "blob_get", 0)?;
        let path = self.path_for(key)?;
        let mut bytes = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        match effect {
            FaultEffect::Clean => {}
            // Read-side damage: short read / flipped bits in transit.
            FaultEffect::Torn { keep } => bytes.truncate(keep),
            FaultEffect::Flip { seed, flips } => flip_bits(&mut bytes, seed, flips),
        }
        let cost = self.profile.blob_get.cost(bytes.len() as u64);
        self.stats.record_blob_get(bytes.len() as u64);
        self.stats.record_bytes_copied(bytes.len() as u64);
        self.clock.charge(cost);
        self.obs.store_op("blob_get", bytes.len() as u64, cost);
        Ok(bytes)
    }

    /// Read a blob as a zero-copy view: the returned [`BlobBytes`](crate::mmap::BlobBytes) is a
    /// read-only memory mapping of the stored file where the platform
    /// allows it, so decoders consume parameter bytes straight from the
    /// page cache with no intermediate heap copy.
    ///
    /// Charging is identical to [`FileStore::get`] — one `blob_get`
    /// round-trip plus per-byte transfer cost for the full blob — so the
    /// mapped and copying recovery paths report the same simulated
    /// timings and op counts. Only `bytes_copied` differs: a mapped read
    /// adds nothing, an owned fallback adds the blob's length.
    ///
    /// Falls back to an owned read (still one charge) when mapping is
    /// impossible (non-unix, empty blob, kernel refusal) or when the
    /// fault gate demands read-side damage, which must materialize the
    /// bytes to apply a truncation or bit flip.
    pub fn get_mapped(&self, key: &str) -> Result<crate::mmap::BlobBytes> {
        let effect = self.fault_gate(OpClass::BlobGet, "blob_get", 0)?;
        let path = self.path_for(key)?;
        let not_found = |e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        };
        let view = if effect == FaultEffect::Clean {
            let file = fs::File::open(&path).map_err(not_found)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| Error::invalid(format!("blob {key:?} exceeds address space")))?;
            match crate::mmap::BlobBytes::map_file(&file, len) {
                Some(view) => view,
                None => {
                    let bytes = fs::read(&path).map_err(not_found)?;
                    self.stats.record_bytes_copied(bytes.len() as u64);
                    crate::mmap::BlobBytes::from_vec(bytes)
                }
            }
        } else {
            // Fault effects rewrite the payload; that requires an owned
            // buffer (and fault runs are test scenarios, where the copy
            // is irrelevant).
            let mut bytes = fs::read(&path).map_err(not_found)?;
            match effect {
                FaultEffect::Clean => unreachable!("clean handled above"),
                FaultEffect::Torn { keep } => bytes.truncate(keep),
                FaultEffect::Flip { seed, flips } => flip_bits(&mut bytes, seed, flips),
            }
            self.stats.record_bytes_copied(bytes.len() as u64);
            crate::mmap::BlobBytes::from_vec(bytes)
        };
        let cost = self.profile.blob_get.cost(view.len() as u64);
        self.stats.record_blob_get(view.len() as u64);
        self.clock.charge(cost);
        self.obs.store_op("blob_get", view.len() as u64, cost);
        Ok(view)
    }

    /// Open a streaming writer for a blob: chunks are appended with
    /// [`BlobWriter::write`] and the blob becomes visible atomically at
    /// [`BlobWriter::finish`] (same write-then-rename protocol as
    /// [`FileStore::put`], same single `blob_put` charge for the total
    /// bytes — a streamed put is accounting-identical to a buffered put
    /// of the concatenated chunks). Dropping the writer without
    /// finishing aborts the write and removes the temp file.
    pub fn put_writer(&self, key: &str) -> Result<BlobWriter<'_>> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // The fault verdict is drawn up front (op order must match a
        // buffered put for deterministic fault plans); damage effects
        // buffer the payload because torn/flip rewrites depend on the
        // total length.
        let effect = self.fault_gate(OpClass::BlobPut, "blob_put", 0)?;
        let tmp = tmp_path(&path)?;
        let sink = if effect == FaultEffect::Clean {
            WriterSink::File(fs::File::create(&tmp)?)
        } else {
            WriterSink::Buffer(Vec::new())
        };
        Ok(BlobWriter {
            store: self,
            key: key.to_string(),
            path,
            tmp,
            sink: Some(sink),
            effect,
            written: 0,
        })
    }

    /// Read `len` bytes of a blob starting at `offset` (a ranged read —
    /// one `blob_get` round-trip charged with only the transferred
    /// bytes). Errors if the range exceeds the blob.
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let effect = self.fault_gate(OpClass::BlobGet, "blob_get_range", len)?;
        let path = self.path_for(key)?;
        let mut file = std::fs::File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        let size = file.metadata()?.len();
        let end = offset.checked_add(len as u64).ok_or_else(|| {
            Error::invalid(format!("range {offset}+{len} overflows for blob {key:?}"))
        })?;
        if end > size {
            return Err(Error::invalid(format!(
                "range {offset}+{len} exceeds blob {key:?} of {size} bytes"
            )));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        match effect {
            FaultEffect::Clean => {}
            FaultEffect::Torn { keep } => buf.truncate(keep),
            FaultEffect::Flip { seed, flips } => flip_bits(&mut buf, seed, flips),
        }
        let cost = self.profile.blob_get.cost(buf.len() as u64);
        self.stats.record_blob_get(buf.len() as u64);
        self.stats.record_bytes_copied(buf.len() as u64);
        self.clock.charge(cost);
        self.obs.store_op("blob_get_range", buf.len() as u64, cost);
        Ok(buf)
    }

    /// Read a blob without charging latency, recording stats, or running
    /// the fault gate. Maintenance-path primitive used by the
    /// content-addressed layer for index rebuilds and audits, where the
    /// bytes read model local bookkeeping rather than simulated store
    /// round-trips.
    pub(crate) fn read_local(&self, key: &str) -> Result<Vec<u8>> {
        let path = self.path_for(key)?;
        fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })
    }

    /// Write a blob without charging latency, recording stats, or
    /// running the fault gate — the landing half of a tier migration,
    /// whose round-trip cost is charged once on the paying side. Still
    /// atomic (write-then-rename).
    pub(crate) fn put_local(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = tmp_path(&path)?;
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Remove a blob without charging latency, recording stats, or
    /// running the fault gate — the cleanup half of a tier migration.
    pub(crate) fn remove_local(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        fs::remove_file(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })
    }

    /// Whether a blob exists (not charged — local metadata check).
    pub fn exists(&self, key: &str) -> bool {
        self.path_for(key).map(|p| p.exists()).unwrap_or(false)
    }

    /// Size of a stored blob in bytes.
    pub fn size(&self, key: &str) -> Result<u64> {
        let path = self.path_for(key)?;
        Ok(fs::metadata(&path)
            .map_err(|_| Error::not_found(format!("blob {key:?}")))?
            .len())
    }

    /// Delete a blob. Charged as one delete round-trip.
    pub fn delete(&self, key: &str) -> Result<()> {
        if self.fault_gate(OpClass::BlobDelete, "blob_delete", 0)? != FaultEffect::Clean {
            // Deletes have no payload to tear or flip; any non-clean
            // verdict means the operation did not happen.
            return Err(Error::Io(std::io::Error::other(format!(
                "injected fault during delete of blob {key:?}"
            ))));
        }
        let path = self.path_for(key)?;
        fs::remove_file(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        let cost = self.profile.blob_put.cost(0);
        self.stats.record_blob_delete();
        self.clock.charge(cost);
        self.obs.store_op("blob_delete", 0, cost);
        Ok(())
    }

    /// All keys under a prefix (sorted; not charged — local listing used
    /// by maintenance tools, not by the savers).
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        let root = self.root.clone();
        let start = self.path_for(prefix).unwrap_or_else(|_| root.clone());
        let mut out = Vec::new();
        fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        walk(root, &p, out);
                    } else if is_temp(&p) {
                        // An in-flight or crash-leaked temp is not a blob.
                    } else if let Ok(rel) = p.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            }
        }
        if start.is_dir() {
            walk(&root, &start, &mut out);
        } else if start.is_file() {
            out.push(prefix.to_string());
        }
        out.sort();
        Ok(out)
    }

    /// Total bytes of all blobs under the root (ground-truth disk usage).
    pub fn disk_bytes(&self) -> u64 {
        fn walk(dir: &Path) -> u64 {
            let mut total = 0;
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        total += walk(&p);
                    } else if is_temp(&p) {
                        // Temps are transient, never part of blob usage.
                    } else if let Ok(m) = e.metadata() {
                        total += m.len();
                    }
                }
            }
            total
        }
        walk(&self.root)
    }

    /// The store's fault-injection handle.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }
}

/// Where a [`BlobWriter`]'s chunks go before the finishing rename.
#[derive(Debug)]
enum WriterSink {
    /// Clean write: chunks stream straight to the temp file, so peak
    /// memory is one chunk regardless of blob size.
    File(fs::File),
    /// A fault effect is armed: the payload is buffered because torn
    /// truncation and bit-flip positions are functions of the *total*
    /// length. Fault runs are test scenarios; the buffering is confined
    /// to them.
    Buffer(Vec<u8>),
}

/// Streaming handle from [`FileStore::put_writer`]. Write chunks, then
/// [`BlobWriter::finish`]; the blob appears atomically with the same
/// durability, fault, and accounting semantics as a buffered
/// [`FileStore::put`] of the concatenated payload.
#[derive(Debug)]
pub struct BlobWriter<'a> {
    store: &'a FileStore,
    key: String,
    path: PathBuf,
    tmp: PathBuf,
    /// `None` only after finish (disarms the Drop cleanup).
    sink: Option<WriterSink>,
    effect: FaultEffect,
    written: u64,
}

impl BlobWriter<'_> {
    /// Append one chunk of the payload.
    pub fn write(&mut self, chunk: &[u8]) -> Result<()> {
        use std::io::Write;
        match self.sink.as_mut().expect("write after finish") {
            WriterSink::File(f) => f.write_all(chunk)?,
            WriterSink::Buffer(buf) => buf.extend_from_slice(chunk),
        }
        self.written += chunk.len() as u64;
        Ok(())
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Complete the write: flush, rename into place, and charge one
    /// `blob_put` for the total payload. On a torn-write fault the temp
    /// keeps only the torn prefix and the rename never happens, exactly
    /// like the buffered path.
    pub fn finish(mut self) -> Result<()> {
        let sink = self.sink.take().expect("finish called once");
        match (self.effect, sink) {
            (FaultEffect::Clean, WriterSink::File(f)) => {
                drop(f); // flush + close before the rename
                fs::rename(&self.tmp, &self.path)?;
            }
            (FaultEffect::Torn { keep }, WriterSink::Buffer(bytes)) => {
                fs::write(&self.tmp, &bytes[..keep.min(bytes.len())])?;
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected torn write to blob {:?}",
                    self.key
                ))));
            }
            (FaultEffect::Flip { seed, flips }, WriterSink::Buffer(mut bytes)) => {
                flip_bits(&mut bytes, seed, flips);
                fs::write(&self.tmp, &bytes)?;
                fs::rename(&self.tmp, &self.path)?;
            }
            // put_writer pairs Clean with File and damage with Buffer.
            (effect, _) => {
                return Err(Error::invalid(format!(
                    "blob writer in impossible state for effect {effect:?}"
                )))
            }
        }
        let cost = self.store.profile.blob_put.cost(self.written);
        self.store.stats.record_blob_put(self.written);
        self.store.clock.charge(cost);
        self.store.obs.store_op("blob_put", self.written, cost);
        Ok(())
    }
}

impl Drop for BlobWriter<'_> {
    fn drop(&mut self) {
        if self.sink.take().is_some() {
            // Aborted mid-stream: the unacknowledged temp is garbage.
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Whether `path` names an in-flight write's temp file.
fn is_temp(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with(TMP_PREFIX))
}

/// Unique temp path next to the final blob path (same filesystem, so
/// the rename is atomic).
fn tmp_path(path: &Path) -> Result<PathBuf> {
    let parent = path
        .parent()
        .ok_or_else(|| Error::invalid(format!("blob path {path:?} has no parent")))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| Error::invalid(format!("blob path {path:?} has no file name")))?;
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    Ok(parent.join(format!("{TMP_PREFIX}{}.{seq}.{name}", std::process::id())))
}

/// Remove temp files leaked by writes that crashed before their rename.
/// Their payloads were never acknowledged, so deleting is always safe.
fn sweep_stale_temps(root: &Path) -> Result<()> {
    fn walk(dir: &Path) -> std::io::Result<()> {
        for e in fs::read_dir(dir)? {
            let p = e?.path();
            if p.is_dir() {
                walk(&p)?;
            } else if is_temp(&p) {
                fs::remove_file(&p)?;
            }
        }
        Ok(())
    }
    walk(root).map_err(Error::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    fn store(profile: LatencyProfile) -> (TempDir, FileStore) {
        let dir = TempDir::new("mmm-fs").unwrap();
        let fs = FileStore::open(dir.path(), profile, VirtualClock::new(), StoreStats::new()).unwrap();
        (dir, fs)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("a/b/c.bin", b"hello").unwrap();
        assert_eq!(fs.get("a/b/c.bin").unwrap(), b"hello");
        assert!(fs.exists("a/b/c.bin"));
        assert!(!fs.exists("a/b/d.bin"));
        assert_eq!(fs.size("a/b/c.bin").unwrap(), 5);
    }

    #[test]
    fn missing_blob_is_not_found() {
        let (_d, fs) = store(LatencyProfile::zero());
        assert!(matches!(fs.get("nope"), Err(Error::NotFound(_))));
        assert!(matches!(fs.size("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn illegal_keys_are_rejected() {
        let (_d, fs) = store(LatencyProfile::zero());
        assert!(fs.put("", b"x").is_err());
        assert!(fs.put("../escape", b"x").is_err());
        assert!(fs.put("/abs", b"x").is_err());
    }

    #[test]
    fn overwrite_replaces_content() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("k", b"one").unwrap();
        fs.put("k", b"two").unwrap();
        assert_eq!(fs.get("k").unwrap(), b"two");
    }

    #[test]
    fn stats_and_latency_are_charged() {
        let dir = TempDir::new("mmm-fs").unwrap();
        let clock = VirtualClock::new();
        let stats = StoreStats::new();
        let fs = FileStore::open(dir.path(), LatencyProfile::m1(), clock.clone(), stats.clone()).unwrap();
        fs.put("k", &[0u8; 1000]).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.blob_puts, 1);
        assert_eq!(s.bytes_written, 1000);
        assert!(clock.simulated() >= LatencyProfile::m1().blob_put.cost(1000));
        let before_get = clock.simulated();
        let _ = fs.get("k").unwrap();
        assert!(clock.simulated() > before_get);
        assert_eq!(stats.snapshot().bytes_read, 1000);
    }

    #[test]
    fn ranged_reads_return_exact_slices() {
        let (_d, fs) = store(LatencyProfile::zero());
        let data: Vec<u8> = (0..=255).collect();
        fs.put("blob", &data).unwrap();
        assert_eq!(fs.get_range("blob", 0, 4).unwrap(), &data[..4]);
        assert_eq!(fs.get_range("blob", 100, 50).unwrap(), &data[100..150]);
        assert_eq!(fs.get_range("blob", 252, 4).unwrap(), &data[252..]);
        assert_eq!(fs.get_range("blob", 10, 0).unwrap(), Vec::<u8>::new());
        // Out-of-bounds range is rejected.
        assert!(matches!(fs.get_range("blob", 250, 10), Err(Error::Invalid(_))));
        assert!(matches!(fs.get_range("missing", 0, 1), Err(Error::NotFound(_))));
    }

    #[test]
    fn ranged_reads_charge_only_transferred_bytes() {
        let dir = TempDir::new("mmm-fs").unwrap();
        let stats = StoreStats::new();
        let fs = FileStore::open(dir.path(), LatencyProfile::zero(), VirtualClock::new(), stats.clone()).unwrap();
        fs.put("blob", &[0u8; 100_000]).unwrap();
        let before = stats.snapshot();
        let _ = fs.get_range("blob", 5_000, 200).unwrap();
        let delta = stats.snapshot() - before;
        assert_eq!(delta.blob_gets, 1);
        assert_eq!(delta.bytes_read, 200);
    }

    #[test]
    fn delete_removes_blob() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("a/b", b"x").unwrap();
        fs.delete("a/b").unwrap();
        assert!(!fs.exists("a/b"));
        assert!(matches!(fs.delete("a/b"), Err(Error::NotFound(_))));
    }

    #[test]
    fn list_keys_by_prefix() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("set1/params.bin", b"1").unwrap();
        fs.put("set1/hashes.bin", b"2").unwrap();
        fs.put("set2/params.bin", b"3").unwrap();
        assert_eq!(
            fs.list_keys("set1").unwrap(),
            vec!["set1/hashes.bin".to_string(), "set1/params.bin".to_string()]
        );
        assert_eq!(fs.list_keys("").unwrap().len(), 3);
        assert_eq!(
            fs.list_keys("set1/params.bin").unwrap(),
            vec!["set1/params.bin".to_string()]
        );
        assert!(fs.list_keys("nope").unwrap().is_empty());
    }

    #[test]
    fn disk_bytes_sums_all_blobs() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("x", &[1u8; 10]).unwrap();
        fs.put("sub/y", &[2u8; 20]).unwrap();
        assert_eq!(fs.disk_bytes(), 30);
    }

    #[test]
    fn keys_differing_only_in_extension_coexist() {
        // The old temp scheme mapped `a.bin` and `a.txt` to the same
        // `a.tmp-write`; racing writers could rename each other's data.
        let (_d, fs) = store(LatencyProfile::zero());
        std::thread::scope(|s| {
            for ext in ["bin", "txt"] {
                let fs = &fs;
                s.spawn(move || {
                    for i in 0..100u32 {
                        fs.put(&format!("a.{ext}"), &i.to_le_bytes()).unwrap();
                    }
                });
            }
        });
        assert_eq!(fs.get("a.bin").unwrap(), 99u32.to_le_bytes());
        assert_eq!(fs.get("a.txt").unwrap(), 99u32.to_le_bytes());
        assert_eq!(fs.list_keys("").unwrap().len(), 2, "no stray temp files");
    }

    #[test]
    fn stale_temps_are_swept_on_open() {
        let dir = TempDir::new("mmm-fs").unwrap();
        {
            let fs = FileStore::open(dir.path(), LatencyProfile::zero(), VirtualClock::new(), StoreStats::new()).unwrap();
            fs.put("sub/real.bin", b"keep me").unwrap();
        }
        // Simulate a crash that leaked temps at two levels.
        std::fs::write(dir.path().join(".mmm-tmp.1.2.x.bin"), b"torn").unwrap();
        std::fs::write(dir.path().join("sub").join(".mmm-tmp.3.4.y.bin"), b"torn").unwrap();
        let fs = FileStore::open(dir.path(), LatencyProfile::zero(), VirtualClock::new(), StoreStats::new()).unwrap();
        assert_eq!(fs.list_keys("").unwrap(), vec!["sub/real.bin".to_string()]);
        assert_eq!(fs.get("sub/real.bin").unwrap(), b"keep me");
        assert!(!dir.path().join(".mmm-tmp.1.2.x.bin").exists());
        assert!(!dir.path().join("sub").join(".mmm-tmp.3.4.y.bin").exists());
    }

    #[test]
    fn get_range_overflow_is_invalid_not_a_panic() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("blob", &[0u8; 16]).unwrap();
        assert!(matches!(
            fs.get_range("blob", u64::MAX, 2),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            fs.get_range("blob", u64::MAX - 1, usize::MAX),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn injected_crash_fails_put_and_leaves_no_blob() {
        use crate::fault::{FaultInjector, FaultPlan, FaultTarget, OpClass};
        let dir = TempDir::new("mmm-fs").unwrap();
        let faults = FaultInjector::new();
        let fs = FileStore::open_with_faults(
            dir.path(),
            LatencyProfile::zero(),
            VirtualClock::new(),
            StoreStats::new(),
            faults.clone(),
        )
        .unwrap();
        faults.arm(FaultPlan::crash_at(FaultTarget::Class(OpClass::BlobPut), 1));
        fs.put("ok.bin", b"first").unwrap();
        assert!(fs.put("dead.bin", b"second").is_err());
        assert!(fs.exists("ok.bin"));
        assert!(!fs.exists("dead.bin"));
        assert_eq!(fs.stats.snapshot().blob_puts, 1, "failed op is not accounted");
    }

    #[test]
    fn injected_torn_write_leaks_a_temp_that_the_next_open_sweeps() {
        use crate::fault::{FaultInjector, FaultPlan, FaultTarget, OpClass};
        let dir = TempDir::new("mmm-fs").unwrap();
        let faults = FaultInjector::new();
        {
            let fs = FileStore::open_with_faults(
                dir.path(),
                LatencyProfile::zero(),
                VirtualClock::new(),
                StoreStats::new(),
                faults.clone(),
            )
            .unwrap();
            faults.arm(FaultPlan::torn_write_at(FaultTarget::Class(OpClass::BlobPut), 0, 3));
            assert!(fs.put("torn.bin", b"full payload").is_err());
            assert!(!fs.exists("torn.bin"), "the rename never happened");
            // The torn temp is on disk with exactly the kept bytes.
            let leaked: Vec<_> = std::fs::read_dir(dir.path())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(TMP_PREFIX))
                .collect();
            assert_eq!(leaked.len(), 1);
            assert_eq!(std::fs::read(leaked[0].path()).unwrap(), b"ful");
        }
        let fs = FileStore::open(dir.path(), LatencyProfile::zero(), VirtualClock::new(), StoreStats::new()).unwrap();
        assert!(fs.list_keys("").unwrap().is_empty());
        assert_eq!(fs.disk_bytes(), 0);
    }

    #[test]
    fn injected_bit_flip_corrupts_the_stored_blob_silently() {
        use crate::fault::{FaultInjector, FaultPlan, FaultTarget, OpClass};
        let dir = TempDir::new("mmm-fs").unwrap();
        let faults = FaultInjector::new();
        let fs = FileStore::open_with_faults(
            dir.path(),
            LatencyProfile::zero(),
            VirtualClock::new(),
            StoreStats::new(),
            faults.clone(),
        )
        .unwrap();
        faults.arm(FaultPlan::bit_flip_at(FaultTarget::Class(OpClass::BlobPut), 0, 1, 99));
        fs.put("rot.bin", &[0u8; 128]).unwrap();
        let stored = fs.get("rot.bin").unwrap();
        assert_ne!(stored, vec![0u8; 128], "exactly one bit differs");
        assert_eq!(stored.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn injected_transient_clears_after_n_failures() {
        use crate::fault::{FaultInjector, FaultPlan, FaultTarget, OpClass};
        let dir = TempDir::new("mmm-fs").unwrap();
        let faults = FaultInjector::new();
        let fs = FileStore::open_with_faults(
            dir.path(),
            LatencyProfile::zero(),
            VirtualClock::new(),
            StoreStats::new(),
            faults.clone(),
        )
        .unwrap();
        faults.arm(FaultPlan::transient_at(FaultTarget::Class(OpClass::BlobPut), 0, 2));
        assert!(matches!(fs.put("k", b"x"), Err(Error::Transient(_))));
        assert!(matches!(fs.put("k", b"x"), Err(Error::Transient(_))));
        fs.put("k", b"x").unwrap();
        assert_eq!(fs.get("k").unwrap(), b"x");
    }
}
