//! Key→blob file store with atomic writes, latency charging, and
//! byte accounting.

use std::fs;
use std::path::{Path, PathBuf};

use mmm_util::{Error, Result, VirtualClock};

use crate::profile::LatencyProfile;
use crate::stats::StoreStats;

/// A blob store backed by a directory tree. Keys may contain `/` to form
/// sub-namespaces (e.g. `"set-3/params.bin"`).
#[derive(Debug, Clone)]
pub struct FileStore {
    root: PathBuf,
    clock: VirtualClock,
    profile: LatencyProfile,
    stats: StoreStats,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(
        dir: impl AsRef<Path>,
        profile: LatencyProfile,
        clock: VirtualClock,
        stats: StoreStats,
    ) -> Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FileStore { root, clock, profile, stats })
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() || key.contains("..") || key.starts_with('/') {
            return Err(Error::invalid(format!("illegal blob key {key:?}")));
        }
        Ok(self.root.join(key))
    }

    /// Write a blob. Overwrites an existing blob under the same key.
    /// Charged as one `blob_put` round-trip plus transfer cost.
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename: a crash never leaves a torn blob.
        let tmp = path.with_extension("tmp-write");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        self.stats.record_blob_put(bytes.len() as u64);
        self.clock.charge(self.profile.blob_put.cost(bytes.len() as u64));
        Ok(())
    }

    /// Read a blob. Charged as one `blob_get` round-trip plus transfer.
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        let path = self.path_for(key)?;
        let bytes = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        self.stats.record_blob_get(bytes.len() as u64);
        self.clock.charge(self.profile.blob_get.cost(bytes.len() as u64));
        Ok(bytes)
    }

    /// Read `len` bytes of a blob starting at `offset` (a ranged read —
    /// one `blob_get` round-trip charged with only the transferred
    /// bytes). Errors if the range exceeds the blob.
    pub fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let path = self.path_for(key)?;
        let mut file = std::fs::File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        let size = file.metadata()?.len();
        if offset + len as u64 > size {
            return Err(Error::invalid(format!(
                "range {offset}+{len} exceeds blob {key:?} of {size} bytes"
            )));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        self.stats.record_blob_get(len as u64);
        self.clock.charge(self.profile.blob_get.cost(len as u64));
        Ok(buf)
    }

    /// Whether a blob exists (not charged — local metadata check).
    pub fn exists(&self, key: &str) -> bool {
        self.path_for(key).map(|p| p.exists()).unwrap_or(false)
    }

    /// Size of a stored blob in bytes.
    pub fn size(&self, key: &str) -> Result<u64> {
        let path = self.path_for(key)?;
        Ok(fs::metadata(&path)
            .map_err(|_| Error::not_found(format!("blob {key:?}")))?
            .len())
    }

    /// Delete a blob. Charged as one delete round-trip.
    pub fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        fs::remove_file(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::not_found(format!("blob {key:?}"))
            } else {
                Error::Io(e)
            }
        })?;
        self.stats.record_blob_delete();
        self.clock.charge(self.profile.blob_put.cost(0));
        Ok(())
    }

    /// All keys under a prefix (sorted; not charged — local listing used
    /// by maintenance tools, not by the savers).
    pub fn list_keys(&self, prefix: &str) -> Result<Vec<String>> {
        let root = self.root.clone();
        let start = self.path_for(prefix).unwrap_or_else(|_| root.clone());
        let mut out = Vec::new();
        fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        walk(root, &p, out);
                    } else if let Ok(rel) = p.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            }
        }
        if start.is_dir() {
            walk(&root, &start, &mut out);
        } else if start.is_file() {
            out.push(prefix.to_string());
        }
        out.sort();
        Ok(out)
    }

    /// Total bytes of all blobs under the root (ground-truth disk usage).
    pub fn disk_bytes(&self) -> u64 {
        fn walk(dir: &Path) -> u64 {
            let mut total = 0;
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        total += walk(&p);
                    } else if let Ok(m) = e.metadata() {
                        total += m.len();
                    }
                }
            }
            total
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_util::TempDir;

    fn store(profile: LatencyProfile) -> (TempDir, FileStore) {
        let dir = TempDir::new("mmm-fs").unwrap();
        let fs = FileStore::open(dir.path(), profile, VirtualClock::new(), StoreStats::new()).unwrap();
        (dir, fs)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("a/b/c.bin", b"hello").unwrap();
        assert_eq!(fs.get("a/b/c.bin").unwrap(), b"hello");
        assert!(fs.exists("a/b/c.bin"));
        assert!(!fs.exists("a/b/d.bin"));
        assert_eq!(fs.size("a/b/c.bin").unwrap(), 5);
    }

    #[test]
    fn missing_blob_is_not_found() {
        let (_d, fs) = store(LatencyProfile::zero());
        assert!(matches!(fs.get("nope"), Err(Error::NotFound(_))));
        assert!(matches!(fs.size("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn illegal_keys_are_rejected() {
        let (_d, fs) = store(LatencyProfile::zero());
        assert!(fs.put("", b"x").is_err());
        assert!(fs.put("../escape", b"x").is_err());
        assert!(fs.put("/abs", b"x").is_err());
    }

    #[test]
    fn overwrite_replaces_content() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("k", b"one").unwrap();
        fs.put("k", b"two").unwrap();
        assert_eq!(fs.get("k").unwrap(), b"two");
    }

    #[test]
    fn stats_and_latency_are_charged() {
        let dir = TempDir::new("mmm-fs").unwrap();
        let clock = VirtualClock::new();
        let stats = StoreStats::new();
        let fs = FileStore::open(dir.path(), LatencyProfile::m1(), clock.clone(), stats.clone()).unwrap();
        fs.put("k", &[0u8; 1000]).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.blob_puts, 1);
        assert_eq!(s.bytes_written, 1000);
        assert!(clock.simulated() >= LatencyProfile::m1().blob_put.cost(1000));
        let before_get = clock.simulated();
        let _ = fs.get("k").unwrap();
        assert!(clock.simulated() > before_get);
        assert_eq!(stats.snapshot().bytes_read, 1000);
    }

    #[test]
    fn ranged_reads_return_exact_slices() {
        let (_d, fs) = store(LatencyProfile::zero());
        let data: Vec<u8> = (0..=255).collect();
        fs.put("blob", &data).unwrap();
        assert_eq!(fs.get_range("blob", 0, 4).unwrap(), &data[..4]);
        assert_eq!(fs.get_range("blob", 100, 50).unwrap(), &data[100..150]);
        assert_eq!(fs.get_range("blob", 252, 4).unwrap(), &data[252..]);
        assert_eq!(fs.get_range("blob", 10, 0).unwrap(), Vec::<u8>::new());
        // Out-of-bounds range is rejected.
        assert!(matches!(fs.get_range("blob", 250, 10), Err(Error::Invalid(_))));
        assert!(matches!(fs.get_range("missing", 0, 1), Err(Error::NotFound(_))));
    }

    #[test]
    fn ranged_reads_charge_only_transferred_bytes() {
        let dir = TempDir::new("mmm-fs").unwrap();
        let stats = StoreStats::new();
        let fs = FileStore::open(dir.path(), LatencyProfile::zero(), VirtualClock::new(), stats.clone()).unwrap();
        fs.put("blob", &[0u8; 100_000]).unwrap();
        let before = stats.snapshot();
        let _ = fs.get_range("blob", 5_000, 200).unwrap();
        let delta = stats.snapshot() - before;
        assert_eq!(delta.blob_gets, 1);
        assert_eq!(delta.bytes_read, 200);
    }

    #[test]
    fn delete_removes_blob() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("a/b", b"x").unwrap();
        fs.delete("a/b").unwrap();
        assert!(!fs.exists("a/b"));
        assert!(matches!(fs.delete("a/b"), Err(Error::NotFound(_))));
    }

    #[test]
    fn list_keys_by_prefix() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("set1/params.bin", b"1").unwrap();
        fs.put("set1/hashes.bin", b"2").unwrap();
        fs.put("set2/params.bin", b"3").unwrap();
        assert_eq!(
            fs.list_keys("set1").unwrap(),
            vec!["set1/hashes.bin".to_string(), "set1/params.bin".to_string()]
        );
        assert_eq!(fs.list_keys("").unwrap().len(), 3);
        assert_eq!(
            fs.list_keys("set1/params.bin").unwrap(),
            vec!["set1/params.bin".to_string()]
        );
        assert!(fs.list_keys("nope").unwrap().is_empty());
    }

    #[test]
    fn disk_bytes_sums_all_blobs() {
        let (_d, fs) = store(LatencyProfile::zero());
        fs.put("x", &[1u8; 10]).unwrap();
        fs.put("sub/y", &[2u8; 20]).unwrap();
        assert_eq!(fs.disk_bytes(), 30);
    }
}
