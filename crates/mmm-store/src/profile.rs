//! Latency profiles for the two hardware setups of the paper.
//!
//! The constants below are *calibrated*, not measured: they are chosen so
//! that the op-count-exact simulation reproduces the paper's reported
//! magnitudes for 5000 FFNN-48 models (Figures 4 and 5) — MMlib-base TTS
//! of ~6.5 s (M1) / ~4.4 s (server), Baseline TTS of ~0.35 s, MMlib-base
//! TTR two orders of magnitude above Baseline, and a server setup that
//! mainly improves *document-store* round-trips. EXPERIMENTS.md records
//! the resulting paper-vs-measured comparison per figure.

use mmm_util::LatencyModel;
use std::time::Duration;

/// Per-operation latency models for one storage environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Document-store insert (one metadata write).
    pub doc_insert: LatencyModel,
    /// Document-store query (find by id or field).
    pub doc_query: LatencyModel,
    /// Blob put (per file-store write).
    pub blob_put: LatencyModel,
    /// Blob get (per file-store read).
    pub blob_get: LatencyModel,
    /// Human-readable profile name ("m1", "server", "zero").
    pub name: &'static str,
}

impl LatencyProfile {
    /// No simulated latency — unit tests and pure-storage benchmarks.
    pub const fn zero() -> Self {
        LatencyProfile {
            doc_insert: LatencyModel::zero(),
            doc_query: LatencyModel::zero(),
            blob_put: LatencyModel::zero(),
            blob_get: LatencyModel::zero(),
            name: "zero",
        }
    }

    /// The paper's **M1 setup**: Apple M1 Pro, built-in SSD, slower
    /// connection to the document store.
    pub const fn m1() -> Self {
        LatencyProfile {
            doc_insert: LatencyModel { fixed: Duration::from_micros(700), per_byte_ns: 2.0 },
            doc_query: LatencyModel { fixed: Duration::from_micros(17_000), per_byte_ns: 2.0 },
            blob_put: LatencyModel { fixed: Duration::from_micros(200), per_byte_ns: 3.0 },
            blob_get: LatencyModel { fixed: Duration::from_micros(900), per_byte_ns: 7.0 },
            name: "m1",
        }
    }

    /// The paper's **server setup**: AMD Threadripper PRO 3995WX with a
    /// fast connection to the document store. Per-op costs drop
    /// substantially (especially queries); bulk bandwidth is similar.
    pub const fn server() -> Self {
        LatencyProfile {
            doc_insert: LatencyModel { fixed: Duration::from_micros(430), per_byte_ns: 1.5 },
            doc_query: LatencyModel { fixed: Duration::from_micros(3_200), per_byte_ns: 1.5 },
            blob_put: LatencyModel { fixed: Duration::from_micros(150), per_byte_ns: 4.0 },
            blob_get: LatencyModel { fixed: Duration::from_micros(300), per_byte_ns: 5.0 },
            name: "server",
        }
    }

    /// A remote **object store** (S3-class): very high per-request
    /// latency, modest per-byte cost once a transfer is flowing, and
    /// document operations priced like cross-region API calls. This is
    /// the *cold* half of the tiered backend — old chain links that are
    /// rarely recovered can live here at a fraction of the hot tier's
    /// cost-per-byte, and the recovery-time penalty of walking a demoted
    /// chain is what the tier split makes measurable.
    pub const fn object_store() -> Self {
        LatencyProfile {
            doc_insert: LatencyModel { fixed: Duration::from_micros(25_000), per_byte_ns: 4.0 },
            doc_query: LatencyModel { fixed: Duration::from_micros(45_000), per_byte_ns: 4.0 },
            blob_put: LatencyModel { fixed: Duration::from_micros(30_000), per_byte_ns: 10.0 },
            blob_get: LatencyModel { fixed: Duration::from_micros(40_000), per_byte_ns: 12.0 },
            name: "object-store",
        }
    }

    /// Look a profile up by name (harness CLI).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "zero" => Some(Self::zero()),
            "m1" => Some(Self::m1()),
            "server" => Some(Self::server()),
            "object-store" => Some(Self::object_store()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_as_the_paper_describes() {
        let m1 = LatencyProfile::m1();
        let server = LatencyProfile::server();
        // The server setup's main advantage is document-store round-trips.
        assert!(server.doc_insert.fixed < m1.doc_insert.fixed);
        assert!(server.doc_query.fixed < m1.doc_query.fixed);
        // Query latency dominates insert latency on both (recovering via
        // per-model queries is what makes MMlib-base TTR so large).
        assert!(m1.doc_query.fixed > m1.doc_insert.fixed);
        assert!(server.doc_query.fixed > server.doc_insert.fixed);
    }

    #[test]
    fn by_name_resolves() {
        assert_eq!(LatencyProfile::by_name("m1"), Some(LatencyProfile::m1()));
        assert_eq!(LatencyProfile::by_name("server"), Some(LatencyProfile::server()));
        assert_eq!(LatencyProfile::by_name("zero"), Some(LatencyProfile::zero()));
        assert_eq!(LatencyProfile::by_name("laptop"), None);
    }

    #[test]
    fn zero_profile_charges_nothing() {
        let z = LatencyProfile::zero();
        assert_eq!(z.doc_insert.cost(1 << 20), Duration::ZERO);
        assert_eq!(z.blob_get.cost(1 << 30), Duration::ZERO);
    }
}
