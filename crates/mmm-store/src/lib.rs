#![warn(missing_docs)]

//! Storage substrate: blob file store + embedded document store.
//!
//! MMlib (which the paper extends) persists model metadata in a document
//! store (MongoDB) and binary artifacts on a filesystem. Neither is
//! available here, so this crate implements both as embedded engines with
//! real durability (files on disk) plus a **simulated connection latency**
//! charged to a shared [`mmm_util::VirtualClock`]:
//!
//! * [`file_store::FileStore`] — a key→blob store (real files, atomic
//!   write-then-rename).
//! * [`cas::CasStore`] — a content-addressed layer over the file store:
//!   chunk-level deduplication with refcount GC plus an LRU recovery
//!   cache, selected per environment through [`backend::BlobStore`].
//! * [`doc_store::DocumentStore`] — JSON documents in named collections,
//!   persisted to an append-only log per collection and replayed on open.
//! * [`profile::LatencyProfile`] — per-operation latency models. The two
//!   calibrated profiles, [`profile::LatencyProfile::m1`] and
//!   [`profile::LatencyProfile::server`], reproduce the paper's two
//!   hardware setups, whose difference the paper attributes to "faster
//!   connections to the document store on the server setup" (§4.3).
//! * [`stats::StoreStats`] — operation and byte accounting. The savers'
//!   reported storage consumption is taken from here and cross-checked
//!   against on-disk sizes in tests.
//! * [`fault::FaultInjector`] — deterministic fault injection (crashes,
//!   torn writes, bit flips, transient errors) threaded through both
//!   stores so the crash-recovery protocol is testable.
//! * [`gate::ServiceGate`] — per-request deadlines and per-backend
//!   circuit breakers, consulted on every store operation through the
//!   injector's per-op hook so a multi-tenant frontend can shed load
//!   and fail fast mid-operation.
//!
//! Every round-trip counts: saving `n` models individually costs `Θ(n)`
//! document-store writes (the paper's optimization O3), while the
//! set-oriented savers issue a constant number of operations.

pub mod backend;
pub mod cas;
pub mod doc_store;
pub mod fault;
pub mod file_store;
pub mod gate;
pub mod mmap;
pub mod profile;
pub mod stats;
pub mod tier;

pub use backend::{BlobStore, StorageBackend};
pub use cas::{CasAudit, CasConfig, CasCounters, CasStore};
pub use doc_store::{salvage, DocumentStore, SalvageReport};
pub use fault::{FaultInjector, FaultMode, FaultPlan, FaultTarget, OpClass};
pub use file_store::{BlobWriter, FileStore};
pub use gate::{Backend, BreakerConfig, BreakerState, CircuitBreaker, DeadlineGuard, ServiceGate};
pub use mmap::BlobBytes;
pub use profile::LatencyProfile;
pub use stats::{StatsLaneGuard, StatsSnapshot, StoreStats};
pub use tier::{StorageTier, TieredStore};
